//! Legacy single-type dispatcher, now a thin adapter over
//! [`crate::engine::Engine`].
//!
//! `ServerState` predates the v2 protocol: it answers every request
//! with a bare [`Response`], folding typed failures into
//! [`Response::Error`]. New code should use [`Engine`] directly; this
//! adapter keeps the seed-era API (`ServerState::handle`) compiling for
//! in-process callers, benches, and tests.

use crate::engine::Engine;
use crate::protocol::{Request, Response};

/// Thread-safe v1-style server state over the concurrent engine.
#[derive(Default)]
pub struct ServerState {
    engine: Engine,
}

impl ServerState {
    /// Fresh state with no sessions.
    pub fn new() -> ServerState {
        ServerState::default()
    }

    /// The underlying engine facade.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.engine.session_count()
    }

    /// Dispatch one request, v1 style: failures become
    /// [`Response::Error`] (which still carries the typed code).
    pub fn handle(&self, request: Request) -> Response {
        self.engine.handle(request).unwrap_or_else(Response::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UseCase;
    use whatif_core::goal::Goal;
    use whatif_core::model_backend::ModelConfig;
    use whatif_core::perturbation::Perturbation;

    fn small_deal_session(state: &ServerState) -> u64 {
        let resp = state.handle(Request::LoadUseCase {
            use_case: UseCase::DealClosing,
            n_rows: Some(220),
            seed: Some(3),
        });
        match resp {
            Response::SessionCreated {
                session,
                n_rows,
                columns,
                suggested_kpi,
            } => {
                assert_eq!(n_rows, 220);
                assert!(columns.iter().any(|c| c.name == "Open Marketing Email"));
                assert_eq!(suggested_kpi.as_deref(), Some("Deal Closed?"));
                session
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    fn fast_config() -> ModelConfig {
        ModelConfig {
            n_trees: 12,
            max_depth: 8,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn list_use_cases() {
        let state = ServerState::new();
        match state.handle(Request::ListUseCases) {
            Response::UseCases(u) => assert_eq!(u.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn full_deal_closing_flow() {
        let state = ServerState::new();
        let id = small_deal_session(&state);
        assert_eq!(state.session_count(), 1);

        // Table view (B).
        match state.handle(Request::TableView {
            session: id,
            max_rows: 5,
        }) {
            Response::Table {
                rows, total_rows, ..
            } => {
                assert_eq!(rows.len(), 5);
                assert_eq!(total_rows, 220);
            }
            other => panic!("unexpected: {other:?}"),
        }

        // KPI (C) + drivers (D).
        match state.handle(Request::SelectKpi {
            session: id,
            kpi: "Deal Closed?".into(),
        }) {
            Response::KpiSelected { kind, .. } => assert_eq!(kind, "binary"),
            other => panic!("unexpected: {other:?}"),
        }
        match state.handle(Request::SelectDrivers {
            session: id,
            drivers: None,
        }) {
            Response::Drivers { selected } => {
                assert_eq!(selected.len(), 12);
                assert!(!selected.contains(&"Account Name".to_owned()));
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Train.
        match state.handle(Request::Train {
            session: id,
            config: Some(fast_config()),
        }) {
            Response::Trained {
                kind, baseline_kpi, ..
            } => {
                assert_eq!(kind, "random_forest");
                assert!((0.0..=1.0).contains(&baseline_kpi));
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Importance (E).
        match state.handle(Request::DriverImportanceView {
            session: id,
            verify: false,
        }) {
            Response::Importance { importance, .. } => {
                assert_eq!(importance.driver_names.len(), 12)
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Sensitivity (H) + record scenario.
        match state.handle(Request::SensitivityView {
            session: id,
            perturbations: vec![Perturbation::percentage("Open Marketing Email", 40.0)],
        }) {
            Response::Sensitivity(s) => assert_eq!(s.kpi_name, "Deal Closed?"),
            other => panic!("unexpected: {other:?}"),
        }
        match state.handle(Request::RecordScenario {
            session: id,
            name: "ome +40%".into(),
        }) {
            Response::ScenarioRecorded { id: sid } => assert_eq!(sid, 0),
            other => panic!("unexpected: {other:?}"),
        }

        // Goal inversion (I) with a constraint.
        match state.handle(Request::GoalInversionView {
            session: id,
            goal: Goal::Maximize,
            constraints: vec![whatif_core::DriverConstraint::new(
                "Open Marketing Email",
                40.0,
                80.0,
            )],
            optimizer: Some(whatif_core::OptimizerChoice::RandomSearch { n_evals: 12 }),
            seed: 1,
        }) {
            Response::GoalInversion(g) => {
                let ome = g
                    .driver_percentages
                    .iter()
                    .find(|(d, _)| d == "Open Marketing Email")
                    .unwrap()
                    .1;
                assert!((40.0..=80.0).contains(&ome));
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Scenario listing.
        match state.handle(Request::ListScenarios { session: id }) {
            Response::Scenarios(s) => assert_eq!(s.len(), 1),
            other => panic!("unexpected: {other:?}"),
        }

        // Close.
        assert_eq!(
            state.handle(Request::CloseSession { session: id }),
            Response::SessionClosed
        );
        assert_eq!(state.session_count(), 0);
    }

    #[test]
    fn csv_upload_flow() {
        let state = ServerState::new();
        let csv = "spend,sales\n1,10\n2,20\n3,30\n4,41\n5,50\n6,61\n7,70\n8,80\n";
        let id = match state.handle(Request::LoadCsv { csv: csv.into() }) {
            Response::SessionCreated {
                session,
                suggested_kpi,
                ..
            } => {
                assert!(suggested_kpi.is_none());
                session
            }
            other => panic!("unexpected: {other:?}"),
        };
        state.handle(Request::SelectKpi {
            session: id,
            kpi: "sales".into(),
        });
        match state.handle(Request::Train {
            session: id,
            config: None,
        }) {
            Response::Trained { kind, .. } => assert_eq!(kind, "linear"),
            other => panic!("unexpected: {other:?}"),
        }
        // Bad CSV errors.
        assert!(state.handle(Request::LoadCsv { csv: "".into() }).is_error());
    }

    #[test]
    fn errors_are_graceful() {
        let state = ServerState::new();
        assert!(state
            .handle(Request::TableView {
                session: 99,
                max_rows: 1
            })
            .is_error());
        let id = small_deal_session(&state);
        // Analysis before training.
        assert!(state
            .handle(Request::DriverImportanceView {
                session: id,
                verify: false
            })
            .is_error());
        // Training before KPI.
        assert!(state
            .handle(Request::Train {
                session: id,
                config: None
            })
            .is_error());
        // Textual KPI.
        assert!(state
            .handle(Request::SelectKpi {
                session: id,
                kpi: "Account Name".into()
            })
            .is_error());
        // Recording with no outcome.
        assert!(state
            .handle(Request::RecordScenario {
                session: id,
                name: "x".into()
            })
            .is_error());
        // Unknown session close.
        assert!(state
            .handle(Request::CloseSession { session: 42 })
            .is_error());
    }

    #[test]
    fn retraining_invalidates_on_selection_change() {
        let state = ServerState::new();
        let id = small_deal_session(&state);
        state.handle(Request::SelectKpi {
            session: id,
            kpi: "Deal Closed?".into(),
        });
        state.handle(Request::Train {
            session: id,
            config: Some(fast_config()),
        });
        // Changing drivers drops the model.
        state.handle(Request::SelectDrivers {
            session: id,
            drivers: Some(vec!["Call".into(), "Chat".into()]),
        });
        assert!(state
            .handle(Request::DriverImportanceView {
                session: id,
                verify: false
            })
            .is_error());
    }

    #[test]
    fn shutdown_acknowledged() {
        let state = ServerState::new();
        assert_eq!(state.handle(Request::Shutdown), Response::ShuttingDown);
    }
}
