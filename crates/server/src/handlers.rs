//! The stateful request dispatcher: sessions, trained models, scenario
//! ledgers. [`ServerState::handle`] is the single entry point both the
//! in-process tests and the TCP layer use.

use crate::protocol::{ColumnInfo, Request, Response, UseCase};
use parking_lot::Mutex;
use std::collections::HashMap;
use whatif_core::goal::GoalConfig;
use whatif_core::kpi::KpiKind;
use whatif_core::model_backend::TrainedModel;
use whatif_core::perturbation::PerturbationSet;
use whatif_core::scenario::ScenarioLedger;
use whatif_core::session::Session;
use whatif_core::ModelKind;
use whatif_datagen::{deal_closing, marketing_mix, retention};
use whatif_frame::Frame;

/// Per-session backend state.
struct SessionState {
    session: Session,
    model: Option<TrainedModel>,
    ledger: ScenarioLedger,
    /// The last sensitivity / goal outcome, recordable as a scenario.
    last_outcome: Option<LastOutcome>,
}

enum LastOutcome {
    Sensitivity(whatif_core::SensitivityResult),
    Goal(whatif_core::GoalInversionResult),
}

/// Thread-safe server state: a table of sessions.
#[derive(Default)]
pub struct ServerState {
    sessions: Mutex<HashMap<u64, SessionState>>,
    next_id: Mutex<u64>,
}

impl ServerState {
    /// Fresh state with no sessions.
    pub fn new() -> ServerState {
        ServerState::default()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    fn create_session(&self, frame: Frame, suggested_kpi: Option<String>) -> Response {
        let columns: Vec<ColumnInfo> = frame
            .columns()
            .iter()
            .map(|c| ColumnInfo {
                name: c.name().to_owned(),
                dtype: c.dtype().name().to_owned(),
                null_count: c.null_count(),
            })
            .collect();
        let n_rows = frame.n_rows();
        let session = Session::new(frame);
        let id = {
            let mut next = self.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        self.sessions.lock().insert(
            id,
            SessionState {
                session,
                model: None,
                ledger: ScenarioLedger::new(),
                last_outcome: None,
            },
        );
        Response::SessionCreated {
            session: id,
            n_rows,
            columns,
            suggested_kpi,
        }
    }

    /// Run `f` against a session, mapping a missing id to an error
    /// response.
    fn with_session<F>(&self, id: u64, f: F) -> Response
    where
        F: FnOnce(&mut SessionState) -> Response,
    {
        let mut sessions = self.sessions.lock();
        match sessions.get_mut(&id) {
            Some(s) => f(s),
            None => Response::error(format!("unknown session {id}")),
        }
    }

    fn with_model<F>(&self, id: u64, f: F) -> Response
    where
        F: FnOnce(&mut SessionState, &TrainedModel) -> Response,
    {
        self.with_session(id, |state| match state.model.take() {
            Some(model) => {
                let resp = f(state, &model);
                state.model = Some(model);
                resp
            }
            None => Response::error("no model trained; send Train first"),
        })
    }

    /// Dispatch one request.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::ListUseCases => Response::UseCases(
                UseCase::all()
                    .into_iter()
                    .map(|u| (u, u.label().to_owned()))
                    .collect(),
            ),
            Request::LoadUseCase {
                use_case,
                n_rows,
                seed,
            } => {
                let seed = seed.unwrap_or(7);
                let (frame, kpi) = match use_case {
                    UseCase::MarketingMix => {
                        let d = marketing_mix(n_rows.unwrap_or(180), seed);
                        (d.frame, d.kpi)
                    }
                    UseCase::CustomerRetention => {
                        let d = retention(n_rows.unwrap_or(1200), seed);
                        (d.frame, d.kpi)
                    }
                    UseCase::DealClosing => {
                        let d = deal_closing(n_rows.unwrap_or(1480), seed);
                        (d.frame, d.kpi)
                    }
                };
                self.create_session(frame, Some(kpi))
            }
            Request::LoadCsv { csv } => match whatif_frame::csv::parse_csv(&csv) {
                Ok(frame) => self.create_session(frame, None),
                Err(e) => Response::error(e),
            },
            Request::TableView { session, max_rows } => self.with_session(session, |state| {
                let frame = state.session.frame();
                let shown = frame.n_rows().min(max_rows);
                let rows: Vec<Vec<whatif_frame::Value>> = (0..shown)
                    .map(|i| {
                        frame
                            .columns()
                            .iter()
                            .map(|c| c.get(i).expect("row in range"))
                            .collect()
                    })
                    .collect();
                Response::Table {
                    columns: frame.column_names().iter().map(|s| (*s).to_owned()).collect(),
                    rows,
                    total_rows: frame.n_rows(),
                }
            }),
            Request::SelectKpi { session, kpi } => self.with_session(session, |state| {
                match state.session.clone().with_kpi(&kpi) {
                    Ok(s) => {
                        let kind = match s.kpi_kind() {
                            Ok(KpiKind::Continuous) => "continuous",
                            Ok(KpiKind::Binary) => "binary",
                            Err(e) => return Response::error(e),
                        };
                        state.session = s;
                        state.model = None; // stale
                        Response::KpiSelected {
                            kpi,
                            kind: kind.to_owned(),
                        }
                    }
                    Err(e) => Response::error(e),
                }
            }),
            Request::SelectDrivers { session, drivers } => {
                self.with_session(session, |state| {
                    if let Some(drivers) = drivers {
                        let refs: Vec<&str> = drivers.iter().map(String::as_str).collect();
                        match state.session.clone().with_drivers(&refs) {
                            Ok(s) => {
                                state.session = s;
                                state.model = None;
                            }
                            Err(e) => return Response::error(e),
                        }
                    }
                    Response::Drivers {
                        selected: state.session.drivers().to_vec(),
                    }
                })
            }
            Request::Train { session, config } => self.with_session(session, |state| {
                let config = config.unwrap_or_default();
                match state.session.train(&config) {
                    Ok(model) => {
                        let kind = match model.kind() {
                            ModelKind::Linear => "linear",
                            ModelKind::Logistic => "logistic",
                            ModelKind::RandomForest => "random_forest",
                            ModelKind::Auto => "auto",
                        };
                        let resp = Response::Trained {
                            kind: kind.to_owned(),
                            confidence: model.confidence(),
                            baseline_kpi: model.baseline_kpi(),
                        };
                        state.model = Some(model);
                        resp
                    }
                    Err(e) => Response::error(e),
                }
            }),
            Request::DriverImportanceView { session, verify } => {
                self.with_model(session, |_, model| {
                    let importance = match model.driver_importance() {
                        Ok(i) => i,
                        Err(e) => return Response::error(e),
                    };
                    let verification = if verify {
                        match model.verify_importance(&Default::default()) {
                            Ok(v) => Some(v),
                            Err(e) => return Response::error(e),
                        }
                    } else {
                        None
                    };
                    Response::Importance {
                        importance,
                        verification,
                    }
                })
            }
            Request::SensitivityView {
                session,
                perturbations,
            } => self.with_model(session, |state, model| {
                let set = PerturbationSet::new(perturbations);
                match model.sensitivity(&set) {
                    Ok(r) => {
                        state.last_outcome = Some(LastOutcome::Sensitivity(r.clone()));
                        Response::Sensitivity(r)
                    }
                    Err(e) => Response::error(e),
                }
            }),
            Request::ComparisonView {
                session,
                percentages,
            } => self.with_model(session, |_, model| {
                match model.comparison_analysis(&percentages) {
                    Ok(c) => Response::Comparison(c),
                    Err(e) => Response::error(e),
                }
            }),
            Request::PerDataView {
                session,
                row,
                perturbations,
            } => self.with_model(session, |_, model| {
                let set = PerturbationSet::new(perturbations);
                match model.per_data_sensitivity(row, &set) {
                    Ok(p) => Response::PerData(p),
                    Err(e) => Response::error(e),
                }
            }),
            Request::GoalInversionView {
                session,
                goal,
                constraints,
                optimizer,
                seed,
            } => self.with_model(session, |state, model| {
                let mut cfg = GoalConfig::for_goal(goal).with_constraints(constraints);
                if let Some(opt) = optimizer {
                    cfg.optimizer = opt;
                }
                cfg.seed = seed;
                match model.goal_inversion(&cfg) {
                    Ok(r) => {
                        state.last_outcome = Some(LastOutcome::Goal(r.clone()));
                        Response::GoalInversion(r)
                    }
                    Err(e) => Response::error(e),
                }
            }),
            Request::RecordScenario { session, name } => {
                self.with_session(session, |state| match &state.last_outcome {
                    Some(LastOutcome::Sensitivity(r)) => Response::ScenarioRecorded {
                        id: state.ledger.record_sensitivity(name, r),
                    },
                    Some(LastOutcome::Goal(r)) => Response::ScenarioRecorded {
                        id: state.ledger.record_goal_inversion(name, r),
                    },
                    None => Response::error(
                        "no sensitivity or goal-inversion outcome to record yet",
                    ),
                })
            }
            Request::ListScenarios { session } => self.with_session(session, |state| {
                Response::Scenarios(
                    state
                        .ledger
                        .ranked_by_uplift()
                        .into_iter()
                        .cloned()
                        .collect(),
                )
            }),
            Request::CloseSession { session } => {
                if self.sessions.lock().remove(&session).is_some() {
                    Response::SessionClosed
                } else {
                    Response::error(format!("unknown session {session}"))
                }
            }
            Request::Shutdown => Response::ShuttingDown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatif_core::goal::Goal;
    use whatif_core::model_backend::ModelConfig;
    use whatif_core::perturbation::Perturbation;

    fn small_deal_session(state: &ServerState) -> u64 {
        let resp = state.handle(Request::LoadUseCase {
            use_case: UseCase::DealClosing,
            n_rows: Some(220),
            seed: Some(3),
        });
        match resp {
            Response::SessionCreated {
                session,
                n_rows,
                columns,
                suggested_kpi,
            } => {
                assert_eq!(n_rows, 220);
                assert!(columns.iter().any(|c| c.name == "Open Marketing Email"));
                assert_eq!(suggested_kpi.as_deref(), Some("Deal Closed?"));
                session
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    fn fast_config() -> ModelConfig {
        let mut cfg = ModelConfig::default();
        cfg.n_trees = 12;
        cfg.max_depth = 8;
        cfg
    }

    #[test]
    fn list_use_cases() {
        let state = ServerState::new();
        match state.handle(Request::ListUseCases) {
            Response::UseCases(u) => assert_eq!(u.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn full_deal_closing_flow() {
        let state = ServerState::new();
        let id = small_deal_session(&state);
        assert_eq!(state.session_count(), 1);

        // Table view (B).
        match state.handle(Request::TableView {
            session: id,
            max_rows: 5,
        }) {
            Response::Table {
                rows, total_rows, ..
            } => {
                assert_eq!(rows.len(), 5);
                assert_eq!(total_rows, 220);
            }
            other => panic!("unexpected: {other:?}"),
        }

        // KPI (C) + drivers (D).
        match state.handle(Request::SelectKpi {
            session: id,
            kpi: "Deal Closed?".into(),
        }) {
            Response::KpiSelected { kind, .. } => assert_eq!(kind, "binary"),
            other => panic!("unexpected: {other:?}"),
        }
        match state.handle(Request::SelectDrivers {
            session: id,
            drivers: None,
        }) {
            Response::Drivers { selected } => {
                assert_eq!(selected.len(), 12);
                assert!(!selected.contains(&"Account Name".to_owned()));
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Train.
        match state.handle(Request::Train {
            session: id,
            config: Some(fast_config()),
        }) {
            Response::Trained {
                kind,
                baseline_kpi,
                ..
            } => {
                assert_eq!(kind, "random_forest");
                assert!((0.0..=1.0).contains(&baseline_kpi));
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Importance (E).
        match state.handle(Request::DriverImportanceView {
            session: id,
            verify: false,
        }) {
            Response::Importance { importance, .. } => {
                assert_eq!(importance.driver_names.len(), 12)
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Sensitivity (H) + record scenario.
        match state.handle(Request::SensitivityView {
            session: id,
            perturbations: vec![Perturbation::percentage("Open Marketing Email", 40.0)],
        }) {
            Response::Sensitivity(s) => assert_eq!(s.kpi_name, "Deal Closed?"),
            other => panic!("unexpected: {other:?}"),
        }
        match state.handle(Request::RecordScenario {
            session: id,
            name: "ome +40%".into(),
        }) {
            Response::ScenarioRecorded { id: sid } => assert_eq!(sid, 0),
            other => panic!("unexpected: {other:?}"),
        }

        // Goal inversion (I) with a constraint.
        match state.handle(Request::GoalInversionView {
            session: id,
            goal: Goal::Maximize,
            constraints: vec![whatif_core::DriverConstraint::new(
                "Open Marketing Email",
                40.0,
                80.0,
            )],
            optimizer: Some(whatif_core::OptimizerChoice::RandomSearch { n_evals: 12 }),
            seed: 1,
        }) {
            Response::GoalInversion(g) => {
                let ome = g
                    .driver_percentages
                    .iter()
                    .find(|(d, _)| d == "Open Marketing Email")
                    .unwrap()
                    .1;
                assert!((40.0..=80.0).contains(&ome));
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Scenario listing.
        match state.handle(Request::ListScenarios { session: id }) {
            Response::Scenarios(s) => assert_eq!(s.len(), 1),
            other => panic!("unexpected: {other:?}"),
        }

        // Close.
        assert_eq!(
            state.handle(Request::CloseSession { session: id }),
            Response::SessionClosed
        );
        assert_eq!(state.session_count(), 0);
    }

    #[test]
    fn csv_upload_flow() {
        let state = ServerState::new();
        let csv = "spend,sales\n1,10\n2,20\n3,30\n4,41\n5,50\n6,61\n7,70\n8,80\n";
        let id = match state.handle(Request::LoadCsv { csv: csv.into() }) {
            Response::SessionCreated {
                session,
                suggested_kpi,
                ..
            } => {
                assert!(suggested_kpi.is_none());
                session
            }
            other => panic!("unexpected: {other:?}"),
        };
        state.handle(Request::SelectKpi {
            session: id,
            kpi: "sales".into(),
        });
        match state.handle(Request::Train {
            session: id,
            config: None,
        }) {
            Response::Trained { kind, .. } => assert_eq!(kind, "linear"),
            other => panic!("unexpected: {other:?}"),
        }
        // Bad CSV errors.
        assert!(state
            .handle(Request::LoadCsv { csv: "".into() })
            .is_error());
    }

    #[test]
    fn errors_are_graceful() {
        let state = ServerState::new();
        assert!(state
            .handle(Request::TableView {
                session: 99,
                max_rows: 1
            })
            .is_error());
        let id = small_deal_session(&state);
        // Analysis before training.
        assert!(state
            .handle(Request::DriverImportanceView {
                session: id,
                verify: false
            })
            .is_error());
        // Training before KPI.
        assert!(state
            .handle(Request::Train {
                session: id,
                config: None
            })
            .is_error());
        // Textual KPI.
        assert!(state
            .handle(Request::SelectKpi {
                session: id,
                kpi: "Account Name".into()
            })
            .is_error());
        // Recording with no outcome.
        assert!(state
            .handle(Request::RecordScenario {
                session: id,
                name: "x".into()
            })
            .is_error());
        // Unknown session close.
        assert!(state.handle(Request::CloseSession { session: 42 }).is_error());
    }

    #[test]
    fn retraining_invalidates_on_selection_change() {
        let state = ServerState::new();
        let id = small_deal_session(&state);
        state.handle(Request::SelectKpi {
            session: id,
            kpi: "Deal Closed?".into(),
        });
        state.handle(Request::Train {
            session: id,
            config: Some(fast_config()),
        });
        // Changing drivers drops the model.
        state.handle(Request::SelectDrivers {
            session: id,
            drivers: Some(vec!["Call".into(), "Chat".into()]),
        });
        assert!(state
            .handle(Request::DriverImportanceView {
                session: id,
                verify: false
            })
            .is_error());
    }

    #[test]
    fn shutdown_acknowledged() {
        let state = ServerState::new();
        assert_eq!(state.handle(Request::Shutdown), Response::ShuttingDown);
    }
}
