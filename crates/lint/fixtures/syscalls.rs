// Fixture: hidden clock/topology syscalls the no-hidden-syscalls rule
// must catch outside obs::clock and forest::hardware_parallelism.
// Never compiled.

fn seeded_instant() -> std::time::Instant {
    std::time::Instant::now()
}

fn seeded_system_time() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn seeded_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
