// Fixture: raw console writes the no-stray-io rule must catch outside
// the structured logger. Never compiled.

fn seeded_println(rows: usize) {
    println!("loaded {rows} rows");
}

fn seeded_eprintln(err: &str) {
    eprintln!("error: {err}");
}

fn seeded_dbg(x: u32) -> u32 {
    dbg!(x)
}
