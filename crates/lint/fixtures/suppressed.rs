// Fixture: one seeded violation per rule, each silenced by a justified
// `lint:allow` comment. lint_source over this file (under an in-scope
// path) must return zero violations. Never compiled.

fn suppressed_unwrap(x: Option<u32>) -> u32 {
    // lint:allow(panic-freedom): fixture proves justified allows suppress
    x.unwrap()
}

fn suppressed_narrowing(n: u32) -> usize {
    n as usize // lint:allow(no-unchecked-narrowing): fixture, same-line allow
}

fn suppressed_alloc(n_from_wire: usize) -> Vec<u8> {
    // lint:allow(capped-allocation): fixture proves justified allows suppress
    Vec::with_capacity(n_from_wire)
}

fn suppressed_syscall() -> std::time::SystemTime {
    // lint:allow(no-hidden-syscalls): fixture proves justified allows suppress
    std::time::SystemTime::now()
}

fn suppressed_io(rows: usize) {
    // lint:allow(no-stray-io): fixture proves justified allows suppress
    println!("loaded {rows} rows");
}
