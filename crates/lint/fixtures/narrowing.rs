// Fixture: raw narrowing casts the no-unchecked-narrowing rule must
// catch in wire-decode scope. Never compiled.

fn seeded_as_usize(n: u32) -> usize {
    n as usize
}

fn seeded_as_u32(n: usize) -> u32 {
    n as u32
}
