// Fixture: every panic-capable form the panic-freedom rule must catch.
// Linted under a synthetic in-scope path; never compiled.

fn seeded_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn seeded_expect(x: Option<u32>) -> u32 {
    x.expect("fixture")
}

fn seeded_panic(flag: bool) {
    if flag {
        panic!("fixture");
    }
}

fn seeded_unreachable(v: u8) -> u8 {
    match v {
        0 => 1,
        _ => unreachable!(),
    }
}

fn seeded_todo() {
    todo!()
}
