// Fixture: allocations sized straight from a wire-declared value, with
// no cap in sight — the capped-allocation rule must catch all three
// forms. Never compiled.

fn seeded_with_capacity(n_from_wire: usize) -> Vec<u8> {
    Vec::with_capacity(n_from_wire)
}

fn seeded_reserve(buf: &mut Vec<u8>, n_from_wire: usize) {
    buf.reserve(n_from_wire);
}

fn seeded_vec_macro(n_from_wire: usize) -> Vec<u8> {
    vec![0u8; n_from_wire]
}
