//! `whatif-lint`: in-tree static analysis over the workspace's own
//! sources.
//!
//! The workspace's recurring bug classes are mechanical — an unchecked
//! wire-declared length driving a huge allocation, a hidden syscall on
//! the predict hot path, a `panic!` reachable from a connection thread
//! — so they are caught by machine, every CI run, instead of by review.
//! [`lexer`] tokenizes each source file (no `syn`, no dependencies) and
//! [`rules`] runs per-rule token-stream passes over it; this module
//! owns the shared analysis: which files to scan, `#[cfg(test)]` region
//! marking, function spans, and `lint:allow` suppressions.
//!
//! # Suppressing a finding
//!
//! ```text
//! // lint:allow(panic-freedom): slot was inserted two lines up
//! let entry = map.get(&key).expect("just inserted");
//! ```
//!
//! A suppression comment applies to its own line and the line directly
//! below, must name the rule, and must carry a non-empty `: reason` —
//! a reasonless or unknown-rule `lint:allow` is itself reported.
//!
//! Run as a binary (`cargo run -p whatif-lint`) or through the tier-1
//! suite (`cargo test -q --test lint`); both call [`lint_workspace`].

pub mod lexer;
pub mod rules;

use lexer::{lex, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule names a suppression comment may reference.
pub const KNOWN_RULES: [&str; 5] = [
    "panic-freedom",
    "no-unchecked-narrowing",
    "capped-allocation",
    "no-hidden-syscalls",
    "no-stray-io",
];

/// One finding: a rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule (one of [`KNOWN_RULES`], or `lint-allow` for
    /// malformed suppression comments).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A significant (non-comment) token plus its analysis flags.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class (never a comment kind).
    pub kind: TokenKind,
    /// Verbatim text.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// Inside a `#[cfg(test)]` / `#[test]` item (tests are exempt from
    /// most rules — a test may unwrap and print freely).
    pub in_test: bool,
}

/// Token-index range of one `fn` item's body (`fn` keyword to closing
/// brace), used for enclosing-function lookups.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the `fn` keyword token.
    pub start: usize,
    /// Index of the body's closing `}` token.
    pub end: usize,
}

/// One analyzed source file, ready for rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Significant tokens (comments stripped), in source order.
    pub toks: Vec<Tok>,
    /// `lint:allow` suppressions: line → rule names allowed on that
    /// line and the next.
    pub allows: HashMap<u32, Vec<String>>,
    /// Function spans, in source order (outer before nested).
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lex and analyze one file.
    pub fn parse(rel_path: &str, source: &str) -> (SourceFile, Vec<Violation>) {
        let mut violations = Vec::new();
        let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
        let mut toks: Vec<Tok> = Vec::new();
        for token in lex(source) {
            match token.kind {
                TokenKind::LineComment | TokenKind::BlockComment => {
                    collect_allows(rel_path, &token, &mut allows, &mut violations);
                }
                kind => toks.push(Tok {
                    kind,
                    text: token.text,
                    line: token.line,
                    in_test: false,
                }),
            }
        }
        mark_test_regions(&mut toks);
        let fns = fn_spans(&toks);
        (
            SourceFile {
                rel_path: rel_path.to_owned(),
                toks,
                allows,
                fns,
            },
            violations,
        )
    }

    /// Is `rule` suppressed at `line` (by a `lint:allow` on the same
    /// line or the line above)?
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule))
        })
    }

    /// The innermost function span containing token index `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= idx && idx <= f.end)
            .max_by_key(|f| f.start)
    }
}

/// Parse a suppression — `lint:allow`, a parenthesized rule name, a
/// colon, and a non-empty reason — out of a comment token. A
/// malformed suppression (unknown rule, missing/empty reason) is
/// reported instead of registered — a silent bad suppression would
/// look exactly like a clean file.
fn collect_allows(
    rel_path: &str,
    comment: &Token,
    allows: &mut HashMap<u32, Vec<String>>,
    violations: &mut Vec<Violation>,
) {
    const MARKER: &str = "lint:allow(";
    let mut rest = comment.text.as_str();
    while let Some(at) = rest.find(MARKER) {
        rest = &rest[at + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            violations.push(Violation {
                rule: "lint-allow",
                path: rel_path.to_owned(),
                line: comment.line,
                message: "unterminated lint:allow(rule)".to_owned(),
            });
            return;
        };
        let rule = rest[..close].trim().to_owned();
        let after = &rest[close + 1..];
        let reason_ok = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !KNOWN_RULES.contains(&rule.as_str()) {
            violations.push(Violation {
                rule: "lint-allow",
                path: rel_path.to_owned(),
                line: comment.line,
                message: format!(
                    "lint:allow names unknown rule \"{rule}\" (known: {})",
                    KNOWN_RULES.join(", ")
                ),
            });
        } else if !reason_ok {
            violations.push(Violation {
                rule: "lint-allow",
                path: rel_path.to_owned(),
                line: comment.line,
                message: format!(
                    "lint:allow({rule}) requires a justification: \
                     `lint:allow({rule}): why this is sound`"
                ),
            });
        } else {
            allows.entry(comment.line).or_default().push(rule);
        }
        rest = after;
    }
}

/// Mark every token belonging to a `#[cfg(test)]`- or `#[test]`-gated
/// item (including whole `mod tests { … }` bodies) as `in_test`.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket group, collecting idents.
        let mut j = i + 2;
        let mut depth = 1u32;
        let mut is_test_attr = false;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "test" if toks[j].kind == TokenKind::Ident => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // The gated item runs from the attribute through any further
        // attributes to the end of the next item: the matching close of
        // its first top-level `{`, or a top-level `;` (no-body item).
        let mut k = j;
        let (mut parens, mut brackets, mut braces) = (0i32, 0i32, 0i32);
        let mut opened_brace = false;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" => parens += 1,
                ")" => parens -= 1,
                "[" => brackets += 1,
                "]" => brackets -= 1,
                "{" => {
                    braces += 1;
                    opened_brace = true;
                }
                "}" => {
                    braces -= 1;
                    if opened_brace && braces == 0 {
                        break;
                    }
                }
                ";" if !opened_brace && parens == 0 && brackets == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let end = k.min(toks.len().saturating_sub(1));
        for tok in &mut toks[i..=end] {
            tok.in_test = true;
        }
        i = end + 1;
    }
}

/// Find every `fn name … { … }` item's token span. Bodyless signatures
/// (trait declarations) are skipped.
fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "fn" || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(u32) -> u32` pointer type
        }
        // Find the body's `{` at zero paren/bracket depth (the
        // signature cannot contain braces before the body).
        let mut j = i + 2;
        let (mut parens, mut brackets) = (0i32, 0i32);
        let mut body_open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => parens += 1,
                ")" => parens -= 1,
                "[" => brackets += 1,
                "]" => brackets -= 1,
                "{" if parens == 0 && brackets == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if parens == 0 && brackets == 0 => break, // bodyless
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let mut depth = 0i32;
        let mut end = open;
        for (k, tok) in toks.iter().enumerate().skip(open) {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push(FnSpan {
            name: name_tok.text.clone(),
            start: i,
            end,
        });
    }
    spans
}

/// Lint one in-memory source under a workspace-relative path (rule
/// scoping keys off the path). Used by the fixture tests; the binary
/// and integration test go through [`lint_workspace`].
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let (file, mut violations) = SourceFile::parse(rel_path, source);
    rules::run_all(&file, &mut violations);
    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}

/// Crate directories under `crates/` that the scan skips entirely:
/// vendored compat shims (external idiom, not ours to lint) and the
/// bench/study tooling, whose whole purpose is printing and timing.
pub const SKIPPED_CRATES: [&str; 3] = ["compat", "bench", "study"];

/// Lint every scanned workspace source under `root`. Returns all
/// violations, deterministically ordered (path, then line).
///
/// # Errors
/// Any I/O error reading the tree (missing root, unreadable file).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && !SKIPPED_CRATES
                    .iter()
                    .any(|skip| p.file_name().is_some_and(|n| n == *skip))
        })
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    files.sort();

    let mut violations = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let (file, mut file_violations) = SourceFile::parse(&rel, &source);
        rules::run_all(&file, &mut file_violations);
        file_violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        violations.extend(file_violations);
    }
    Ok(violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_mod_tests() {
        let src = "fn real() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\n\
                   fn also_real() {}\n";
        let (file, _) = SourceFile::parse("crates/server/src/x.rs", src);
        let unwraps: Vec<bool> = file
            .toks
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let also = file.toks.iter().find(|t| t.text == "also_real").unwrap();
        assert!(!also.in_test, "marking must end at the mod's close brace");
    }

    #[test]
    fn test_attr_covers_single_fn() {
        let src = "#[test]\nfn a_test() { x.unwrap(); }\nfn real() { y.unwrap(); }\n";
        let (file, _) = SourceFile::parse("crates/server/src/x.rs", src);
        let flags: Vec<bool> = file
            .toks
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let src = "#[cfg(all(test, unix))]\nfn helper() { x.unwrap(); }\n";
        let (file, _) = SourceFile::parse("crates/server/src/x.rs", src);
        assert!(
            file.toks
                .iter()
                .find(|t| t.text == "unwrap")
                .unwrap()
                .in_test
        );
    }

    #[test]
    fn allow_requires_reason_and_known_rule() {
        let (_, v) = SourceFile::parse(
            "crates/wire/src/x.rs",
            "// lint:allow(panic-freedom)\nfn f() {}\n",
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("justification"), "{}", v[0].message);

        let (_, v) = SourceFile::parse(
            "crates/wire/src/x.rs",
            "// lint:allow(not-a-rule): because\nfn f() {}\n",
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown rule"), "{}", v[0].message);

        let (file, v) = SourceFile::parse(
            "crates/wire/src/x.rs",
            "// lint:allow(panic-freedom): slot inserted above\nfn f() {}\n",
        );
        assert!(v.is_empty());
        assert!(file.is_allowed("panic-freedom", 1));
        assert!(file.is_allowed("panic-freedom", 2), "next line covered");
        assert!(!file.is_allowed("panic-freedom", 3));
        assert!(!file.is_allowed("no-stray-io", 1), "other rules stay on");
    }

    #[test]
    fn fn_spans_nest_and_name() {
        let src = "fn outer() {\n  fn inner() { a(); }\n  b();\n}\nfn other() {}\n";
        let (file, _) = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(
            file.fns.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["outer", "inner", "other"]
        );
        let a_idx = file.toks.iter().position(|t| t.text == "a").unwrap();
        assert_eq!(file.enclosing_fn(a_idx).unwrap().name, "inner");
        let b_idx = file.toks.iter().position(|t| t.text == "b").unwrap();
        assert_eq!(file.enclosing_fn(b_idx).unwrap().name, "outer");
    }
}
