//! The rule passes. Each rule is a scoped scan over a
//! [`SourceFile`]'s token stream; every rule here is grounded in a bug
//! this workspace actually shipped or reviewed out (see
//! `docs/LINTS.md` for the catalog and history).

use crate::lexer::TokenKind;
use crate::{SourceFile, Tok, Violation};

/// Run every rule against one analyzed file.
pub fn run_all(file: &SourceFile, violations: &mut Vec<Violation>) {
    panic_freedom(file, violations);
    no_unchecked_narrowing(file, violations);
    capped_allocation(file, violations);
    no_hidden_syscalls(file, violations);
    no_stray_io(file, violations);
}

/// Paths whose non-test code must be panic-free: everything a
/// connection thread can reach.
fn panic_scope(path: &str) -> bool {
    path.starts_with("crates/server/src")
        || path.starts_with("crates/wire/src")
        || path.starts_with("crates/core/src")
}

/// Paths that decode untrusted wire bytes: narrowing casts and
/// allocations there answer to a hostile peer.
fn wire_decode_scope(path: &str) -> bool {
    path.starts_with("crates/wire/src") || path == "crates/server/src/v3.rs"
}

fn report(
    violations: &mut Vec<Violation>,
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if !file.is_allowed(rule, line) {
        violations.push(Violation {
            rule,
            path: file.rel_path.clone(),
            line,
            message,
        });
    }
}

fn ident_at(toks: &[Tok], idx: usize, text: &str) -> bool {
    toks.get(idx)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn punct_at(toks: &[Tok], idx: usize, text: &str) -> bool {
    toks.get(idx)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Token index of the delimiter closing the one at `open`, if any.
fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let (open_text, close_text) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.text == open_text {
            depth += 1;
        } else if t.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// **panic-freedom** — no `.unwrap()` / `.expect(…)` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` in non-test
/// server/wire/core code. A panic on a connection thread kills that
/// client's session at best; return a typed `ErrorCode` / `WireError`
/// instead, or justify the genuinely-infallible case with
/// `lint:allow(panic-freedom): why`.
fn panic_freedom(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !panic_scope(&file.rel_path) {
        return;
    }
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0 && punct_at(toks, i - 1, ".") && punct_at(toks, i + 1, "(") =>
            {
                report(
                    violations,
                    file,
                    "panic-freedom",
                    t.line,
                    format!(
                        ".{}() can panic on a request path — return a typed \
                         error (ErrorCode / WireError) instead",
                        t.text
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if punct_at(toks, i + 1, "!") => {
                report(
                    violations,
                    file,
                    "panic-freedom",
                    t.line,
                    format!(
                        "{}! can take down a connection thread — return a \
                         typed error instead",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// **no-unchecked-narrowing** — no `as usize` / `as u32` in wire-decode
/// scope. A wire-declared length narrowed with `as` silently truncates
/// on 32-bit targets and skips the bounds discipline entirely; use
/// `try_from` (surfacing `WireError::Corrupt`) or a capped helper.
fn no_unchecked_narrowing(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !wire_decode_scope(&file.rel_path) {
        return;
    }
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !(t.kind == TokenKind::Ident && t.text == "as") {
            continue;
        }
        for target in ["usize", "u32"] {
            if ident_at(toks, i + 1, target) {
                report(
                    violations,
                    file,
                    "no-unchecked-narrowing",
                    t.line,
                    format!(
                        "raw `as {target}` cast in wire-decode scope — use \
                         try_from (surfacing WireError::Corrupt) or a \
                         compile-time-guarded conversion"
                    ),
                );
            }
        }
    }
}

/// Does this token mark an allocation argument as bounded? Accepts
/// integer literals, SCREAMING_CASE consts (`MAX_FRAME_BYTES`,
/// `HEADER_LEN`), and `.len()`/`.min()`/`.capacity()` chains rooted in
/// existing buffers.
fn bounded_arg_token(toks: &[Tok], idx: usize) -> bool {
    let t = &toks[idx];
    match t.kind {
        TokenKind::Num => true,
        TokenKind::Ident => {
            let screaming = t.text.len() > 1 && !t.text.chars().any(|c| c.is_ascii_lowercase());
            (screaming && t.text.chars().any(|c| c.is_ascii_uppercase()))
                || (matches!(t.text.as_str(), "len" | "min" | "capacity")
                    && idx > 0
                    && punct_at(toks, idx - 1, "."))
        }
        _ => false,
    }
}

/// Does the enclosing function establish a cap before `site` — a
/// `MAX_*`-style const comparison or a `checked_len`/`checked_count`
/// call?
fn capped_earlier_in_fn(file: &SourceFile, site: usize) -> bool {
    let Some(span) = file.enclosing_fn(site) else {
        return false;
    };
    file.toks[span.start..site].iter().any(|t| {
        t.kind == TokenKind::Ident
            && (matches!(t.text.as_str(), "checked_len" | "checked_count")
                || (t.text.len() > 1
                    && !t.text.chars().any(|c| c.is_ascii_lowercase())
                    && t.text.contains("MAX")))
    })
}

/// **capped-allocation** — `with_capacity` / `reserve` / `vec![_; n]`
/// in wire-decode scope must sit under a named bound. PR 6's review
/// caught a wire-declared scenario count driving a ~200 GB
/// `Vec::with_capacity` before any validation; this rule pins that
/// class: the allocation's size must be a literal, a `MAX_*`/`*_LEN`
/// const, derived from an existing buffer's `.len()`, or preceded in
/// the same function by a cap check (`MAX_*` comparison or
/// `checked_len`/`checked_count`).
fn capped_allocation(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !wire_decode_scope(&file.rel_path) {
        return;
    }
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        // (what, arg_start..arg_end) token range of the size expression.
        let alloc = match t.text.as_str() {
            "with_capacity" | "reserve" | "reserve_exact" if punct_at(toks, i + 1, "(") => {
                matching_close(toks, i + 1).map(|close| (t.text.clone(), i + 2, close))
            }
            "vec" if punct_at(toks, i + 1, "!") && punct_at(toks, i + 2, "[") => {
                // vec![elem; n] — the size expression follows the
                // top-level `;`; a plain list vec![a, b] allocates only
                // what it holds and is exempt.
                matching_close(toks, i + 2).and_then(|close| {
                    let mut depth = 0i32;
                    (i + 3..close)
                        .find(|&k| {
                            match toks[k].text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                ";" if depth == 0 => return true,
                                _ => {}
                            }
                            false
                        })
                        .map(|semi| ("vec![_; n]".to_owned(), semi + 1, close))
                })
            }
            _ => None,
        };
        let Some((what, arg_start, arg_end)) = alloc else {
            continue;
        };
        let bounded = (arg_start..arg_end).any(|k| bounded_arg_token(toks, k))
            || capped_earlier_in_fn(file, i);
        if !bounded {
            report(
                violations,
                file,
                "capped-allocation",
                t.line,
                format!(
                    "{what} sized by an unbounded expression in wire-decode \
                     scope — cap it against a MAX_* const or derive it via \
                     checked_len/checked_count first"
                ),
            );
        }
    }
}

/// **no-hidden-syscalls** — `Instant::now` / `SystemTime::now` /
/// `available_parallelism` outside their two blessed homes:
/// `obs::clock` (the TSC-calibrated clock) and
/// `forest::hardware_parallelism` (the cached probe). PR 6 found an
/// `available_parallelism` syscall (~10µs, cgroup-aware) silently
/// taxing every predict call; this rule pins that fix forever.
fn no_hidden_syscalls(file: &SourceFile, violations: &mut Vec<Violation>) {
    if file.rel_path == "crates/obs/src/clock.rs" {
        return; // the one module allowed to touch the wall clock
    }
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "now"
            && i >= 3
            && punct_at(toks, i - 1, ":")
            && punct_at(toks, i - 2, ":")
            && toks[i - 3].kind == TokenKind::Ident
            && matches!(toks[i - 3].text.as_str(), "Instant" | "SystemTime")
        {
            report(
                violations,
                file,
                "no-hidden-syscalls",
                t.line,
                format!(
                    "{}::now() outside obs::clock — route timing through the \
                     calibrated clock (whatif_obs::clock) so hot paths never \
                     pay a hidden syscall",
                    toks[i - 3].text
                ),
            );
        }
        if t.text == "available_parallelism"
            && file
                .enclosing_fn(i)
                .is_none_or(|f| f.name != "hardware_parallelism")
        {
            report(
                violations,
                file,
                "no-hidden-syscalls",
                t.line,
                "available_parallelism() is a ~10µs cgroup-aware syscall — \
                 use whatif_learn::forest::hardware_parallelism(), which \
                 probes once per process"
                    .to_owned(),
            );
        }
    }
}

/// **no-stray-io** — no `println!` / `eprintln!` / `print!` /
/// `eprint!` / `dbg!` in library/server code. Raw writes bypass the
/// structured logger's levels, its ring buffer, and its JSON shape;
/// route output through `whatif_obs::logger()`. (The lint binary's own
/// report printer is the one exception: stdout *is* its interface.)
fn no_stray_io(file: &SourceFile, violations: &mut Vec<Violation>) {
    if file.rel_path == "crates/lint/src/main.rs" {
        return;
    }
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "println" | "eprintln" | "print" | "eprint" | "dbg"
        ) && punct_at(toks, i + 1, "!")
        {
            report(
                violations,
                file,
                "no-stray-io",
                t.line,
                format!(
                    "{}! bypasses the structured logger — emit through \
                     whatif_obs::logger() (Record::new(level, event)…) instead",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    const PANIC_FIXTURE: &str = include_str!("../fixtures/panic_freedom.rs");
    const NARROWING_FIXTURE: &str = include_str!("../fixtures/narrowing.rs");
    const ALLOC_FIXTURE: &str = include_str!("../fixtures/alloc.rs");
    const SYSCALLS_FIXTURE: &str = include_str!("../fixtures/syscalls.rs");
    const STRAY_IO_FIXTURE: &str = include_str!("../fixtures/stray_io.rs");
    const SUPPRESSED_FIXTURE: &str = include_str!("../fixtures/suppressed.rs");

    fn rules_fired(rel_path: &str, src: &str) -> Vec<&'static str> {
        lint_source(rel_path, src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn panic_freedom_fires_on_every_seeded_form() {
        let fired = rules_fired("crates/server/src/fixture.rs", PANIC_FIXTURE);
        assert_eq!(
            fired.iter().filter(|r| **r == "panic-freedom").count(),
            5,
            "unwrap, expect, panic!, unreachable!, todo! each fire: {fired:?}"
        );
    }

    #[test]
    fn panic_freedom_is_scoped_and_test_exempt() {
        // Same code outside server/wire/core: silent.
        assert!(rules_fired("crates/stats/src/fixture.rs", PANIC_FIXTURE).is_empty());
        // Inside #[cfg(test)]: silent.
        let gated = format!("#[cfg(test)]\nmod tests {{\n{PANIC_FIXTURE}\n}}\n");
        assert!(rules_fired("crates/server/src/fixture.rs", &gated).is_empty());
        // unwrap_or_else is not unwrap.
        assert!(rules_fired(
            "crates/server/src/fixture.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n"
        )
        .is_empty());
    }

    #[test]
    fn narrowing_fires_in_wire_scope_only() {
        let fired = rules_fired("crates/wire/src/fixture.rs", NARROWING_FIXTURE);
        assert_eq!(
            fired
                .iter()
                .filter(|r| **r == "no-unchecked-narrowing")
                .count(),
            2,
            "as usize and as u32 each fire: {fired:?}"
        );
        let v3 = rules_fired("crates/server/src/v3.rs", NARROWING_FIXTURE);
        assert!(!v3.is_empty(), "v3.rs is in scope");
        assert!(
            rules_fired("crates/server/src/engine.rs", NARROWING_FIXTURE).is_empty(),
            "the rest of the server is not"
        );
    }

    #[test]
    fn narrowing_ignores_widening_and_tests() {
        assert!(rules_fired(
            "crates/wire/src/fixture.rs",
            "fn f(x: u32) -> u64 { x as u64 }\n"
        )
        .is_empty());
        let gated = format!("#[cfg(test)]\nmod tests {{\n{NARROWING_FIXTURE}\n}}\n");
        assert!(rules_fired("crates/wire/src/fixture.rs", &gated).is_empty());
    }

    #[test]
    fn capped_allocation_fires_on_unbounded_sizes() {
        let fired = rules_fired("crates/wire/src/fixture.rs", ALLOC_FIXTURE);
        assert_eq!(
            fired.iter().filter(|r| **r == "capped-allocation").count(),
            3,
            "with_capacity, reserve, vec![_; n] each fire: {fired:?}"
        );
    }

    #[test]
    fn capped_allocation_accepts_bounds() {
        let ok = "const MAX_ROWS: usize = 4096;\n\
             fn a(n: usize) -> Vec<u8> { Vec::with_capacity(n.min(MAX_ROWS)) }\n\
             fn b(n: usize) -> Vec<u8> {\n\
                 if n > MAX_ROWS { return Vec::new(); }\n\
                 vec![0u8; n]\n\
             }\n\
             fn c(buf: &[u8]) -> Vec<u8> { Vec::with_capacity(buf.len()) }\n\
             fn d() -> Vec<u8> { Vec::with_capacity(64) }\n\
             fn e(r: &mut Reader) -> Vec<u8> {\n\
                 let n = r.checked_count(\"rows\", 8).unwrap_or(0);\n\
                 Vec::with_capacity(n)\n\
             }\n";
        assert!(
            rules_fired("crates/wire/src/fixture.rs", ok).is_empty(),
            "{:?}",
            lint_source("crates/wire/src/fixture.rs", ok)
        );
    }

    #[test]
    fn hidden_syscalls_fire_everywhere_but_the_blessed_homes() {
        let fired = rules_fired("crates/server/src/fixture.rs", SYSCALLS_FIXTURE);
        assert_eq!(
            fired.iter().filter(|r| **r == "no-hidden-syscalls").count(),
            3,
            "Instant::now, SystemTime::now, available_parallelism: {fired:?}"
        );
        assert!(
            rules_fired("crates/obs/src/clock.rs", SYSCALLS_FIXTURE).is_empty(),
            "obs::clock is the blessed wall-clock module"
        );
        let blessed = "pub fn hardware_parallelism() -> usize {\n\
             std::thread::available_parallelism().map_or(1, |n| n.get())\n\
             }\n";
        assert!(
            rules_fired("crates/learn/src/forest.rs", blessed).is_empty(),
            "the cached probe itself is allowed"
        );
    }

    #[test]
    fn stray_io_fires_outside_the_logger() {
        let fired = rules_fired("crates/core/src/fixture.rs", STRAY_IO_FIXTURE);
        assert_eq!(
            fired.iter().filter(|r| **r == "no-stray-io").count(),
            3,
            "println!, eprintln!, dbg! each fire: {fired:?}"
        );
        assert!(
            rules_fired("crates/lint/src/main.rs", STRAY_IO_FIXTURE).is_empty(),
            "the lint binary's report printer is exempt"
        );
    }

    #[test]
    fn suppressions_silence_with_justification() {
        // v3.rs is the one path inside every rule's scope at once.
        let violations = lint_source("crates/server/src/v3.rs", SUPPRESSED_FIXTURE);
        assert!(
            violations.is_empty(),
            "justified lint:allow comments silence every rule: {violations:?}"
        );
    }

    #[test]
    fn reasonless_suppression_is_itself_reported() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
             // lint:allow(panic-freedom)\n\
             x.unwrap()\n\
             }\n";
        let violations = lint_source("crates/server/src/fixture.rs", src);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.rule == "lint-allow"));
        assert!(
            violations.iter().any(|v| v.rule == "panic-freedom"),
            "a reasonless allow does not suppress"
        );
    }
}
