//! `whatif-lint` — run the in-tree rule passes over the workspace and
//! report every unsuppressed violation.
//!
//! ```text
//! cargo run -p whatif-lint            # lint the enclosing workspace
//! cargo run -p whatif-lint -- <root>  # lint an explicit tree
//! ```
//!
//! Exit status is 0 when clean, 1 when any violation survives
//! suppression, 2 when the tree can't be read. Output is one
//! `path:line: [rule] message` per finding, grep- and editor-friendly.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // The crate lives at <root>/crates/lint; walk up two levels.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(workspace_root);
    let violations = match whatif_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("whatif-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!(
            "whatif-lint: clean ({} rules)",
            whatif_lint::KNOWN_RULES.len()
        );
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!(
        "whatif-lint: {} violation(s) — suppress deliberate sites with \
         `// lint:allow(rule): reason` (see docs/LINTS.md)",
        violations.len()
    );
    ExitCode::FAILURE
}
