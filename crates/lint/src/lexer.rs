//! A minimal Rust tokenizer — just enough syntax to run token-stream
//! lint passes with accurate line numbers.
//!
//! The lexer understands the constructs that would otherwise corrupt a
//! naive text scan: line and (nested) block comments, string literals
//! with escapes, raw strings (`r"…"`, `r#"…"#`, any `#` depth), byte
//! strings and byte chars, char literals vs. lifetimes, raw idents
//! (`r#match`), and numeric literals (including `0x…`, `1_000`, `2.5`,
//! `1e-3`). Everything else is a single-char punctuation token.
//!
//! It does **not** build an AST: the lint rules pattern-match over the
//! token stream (`ident "unwrap"` preceded by `.` and followed by `(`,
//! `#[cfg(test)]` attribute regions, and so on), which keeps the pass
//! dependency-free and fast while staying immune to comment/string
//! false positives.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `as`, `r#match`).
    Ident,
    /// One punctuation character (`.`, `(`, `!`, …).
    Punct,
    /// Numeric literal (`42`, `0xFF`, `1e-3`, `8192u32`).
    Num,
    /// String literal of any flavor (normal/raw/byte), quotes included.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment (terminating newline excluded).
    LineComment,
    /// `/* … */` comment, possibly spanning lines (line = start line).
    BlockComment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Tokenize `source`. Never fails: unrecognized bytes become `Punct`
/// tokens, unterminated literals run to end of input.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.string_prefix().is_some() => {
                    match self.string_prefix().expect("checked") {
                        Prefix::Raw(hashes) => self.raw_string(hashes),
                        Prefix::ByteStr => self.string(),
                        Prefix::ByteChar => self.char_literal(),
                        Prefix::RawIdent => self.ident(),
                    }
                }
                '\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let start = self.pos;
                    self.pos += 1;
                    self.push(TokenKind::Punct, start, self.line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, self.line);
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => break,
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some('\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::BlockComment, start, start_line);
    }

    /// Classify an `r`/`b` run at the cursor, without consuming it.
    fn string_prefix(&self) -> Option<Prefix> {
        let mut j;
        let mut raw = false;
        match self.peek(0) {
            Some('b') => {
                j = 1;
                if self.peek(1) == Some('r') {
                    raw = true;
                    j = 2;
                }
            }
            Some('r') => {
                raw = true;
                j = 1;
            }
            _ => return None,
        }
        let mut hashes = 0usize;
        while raw && self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        match self.peek(j) {
            Some('"') if raw => Some(Prefix::Raw(hashes)),
            Some('"') => Some(Prefix::ByteStr),
            Some('\'') if !raw => Some(Prefix::ByteChar),
            Some(c) if raw && hashes == 1 && is_ident_start(c) => Some(Prefix::RawIdent),
            _ => None,
        }
    }

    /// Normal or byte string with escapes; cursor on the prefix (if
    /// any) or the opening quote.
    fn string(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while self.peek(0) != Some('"') {
            self.pos += 1; // prefix chars (`b`)
        }
        self.pos += 1;
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => self.pos += 2,
                Some('"') => {
                    self.pos += 1;
                    break;
                }
                Some('\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, start, start_line);
    }

    /// Raw (byte) string; cursor on `r`/`b`, `hashes` pound signs.
    fn raw_string(&mut self, hashes: usize) {
        let (start, start_line) = (self.pos, self.line);
        while self.peek(0) != Some('"') {
            self.pos += 1; // prefix chars (`r`, `b`, `#`s)
        }
        self.pos += 1;
        'body: loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some('#') {
                            self.pos += 1;
                            continue 'body;
                        }
                    }
                    self.pos += 1 + hashes;
                    break;
                }
                Some('\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, start, start_line);
    }

    /// Char or byte-char literal; cursor on `b` or the opening `'`.
    fn char_literal(&mut self) {
        let start = self.pos;
        while self.peek(0) != Some('\'') {
            self.pos += 1; // prefix chars (`b`)
        }
        self.pos += 1;
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => self.pos += 2,
                Some('\'') => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Char, start, self.line);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) at a `'`.
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            // `'\n'`, `'\u{7f}'` — escapes only occur in char literals.
            Some('\\') => self.char_literal(),
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // Scan the ident run after the quote: a closing quote
                // right after it means a char literal ('a', 'é'),
                // anything else a lifetime ('a, 'static).
                let mut j = 1;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.peek(j) == Some('\'') && j == 2 {
                    self.char_literal();
                } else {
                    let start = self.pos;
                    self.pos += j;
                    self.push(TokenKind::Lifetime, start, self.line);
                }
            }
            // `'('`, `'*'` and other punctuation chars.
            _ => self.char_literal(),
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.pos += 2; // raw ident prefix
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.line);
    }

    fn number(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                // Digits, `_` separators, hex digits, type suffixes,
                // exponent markers — all glued to the literal.
                self.pos += 1;
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.pos += 1; // decimal point (but not `0..n` ranges)
            } else if (c == '+' || c == '-')
                && self
                    .chars
                    .get(self.pos - 1)
                    .is_some_and(|&p| p == 'e' || p == 'E')
            {
                self.pos += 1; // exponent sign in 1e-3
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, start, self.line);
    }
}

enum Prefix {
    /// `r"…"` / `r#"…"#` / `br#"…"#` with the given `#` count.
    Raw(usize),
    /// `b"…"`.
    ByteStr,
    /// `b'…'`.
    ByteChar,
    /// `r#ident`.
    RawIdent,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = foo.unwrap(); y += 0xFF_u32;");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokenKind::Num, "0xFF_u32".into())));
        assert!(toks.contains(&(TokenKind::Punct, ".".into())));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "a.unwrap() /* x */"; s.len();"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_hash_depth() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x()"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(toks.contains(&(TokenKind::Ident, "x".into())));
        let toks = kinds("let b = br\"bytes\"; y()");
        assert!(toks.contains(&(TokenKind::Ident, "y".into())));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn comments_keep_text_and_nest() {
        let toks = kinds("a /* outer /* inner */ still */ b // tail\nc");
        assert!(toks.contains(&(TokenKind::Ident, "a".into())));
        assert!(toks.contains(&(TokenKind::Ident, "b".into())));
        assert!(toks.contains(&(TokenKind::Ident, "c".into())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("inner")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("tail")));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("a\nb\n\n  c /* x\ny */ d\ne");
        let line_of = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
        assert_eq!(line_of("d"), 5, "block comment advanced the line");
        assert_eq!(line_of("e"), 6);
    }

    #[test]
    fn raw_idents_and_ranges() {
        let toks = kinds("let r#match = 0..n; let f = 1e-3;");
        assert!(toks.contains(&(TokenKind::Ident, "r#match".into())));
        assert!(toks.contains(&(TokenKind::Num, "0".into())));
        assert!(toks.contains(&(TokenKind::Ident, "n".into())));
        assert!(toks.contains(&(TokenKind::Num, "1e-3".into())));
    }

    #[test]
    fn numeric_float_and_tuple_index() {
        let toks = kinds("let x = 2.5; let y = t.0;");
        assert!(toks.contains(&(TokenKind::Num, "2.5".into())));
        assert!(toks.contains(&(TokenKind::Num, "0".into())));
    }
}
