//! In-tree LZ4-style block compression — the v3 frame codec behind
//! [`Compression::Lz4Like`](crate::frame::Compression).
//!
//! The build environment has no registry access, so this is a
//! self-contained implementation of the classic LZ77 token scheme LZ4
//! uses: a byte stream of *sequences*, each a literal run followed by a
//! back-reference copy.
//!
//! ```text
//! sequence := token  [lit-ext ...]  literals  offset:u16le  [match-ext ...]
//! token    := (literal_len min 15) << 4  |  (match_len - 4 min 15)
//! ext      := 255* final          -- 255 bytes continue the length
//! ```
//!
//! The final sequence carries literals only (no offset/match). Matches
//! are found with a greedy hash-chain searcher: a 15-bit hash of every
//! 4-byte prefix heads a per-position chain, and the longest of the
//! first [`MAX_PROBES`] candidates within the 64 KiB offset window
//! wins. The decompressor is fully bounds-checked — corrupt input
//! yields a typed [`WireError`], never a panic or out-of-bounds copy —
//! and round-trips are byte-exact (pinned by `tests/wire_roundtrip.rs`).

use crate::codec::{len_to_u32, u32_to_usize};
use crate::{WireError, MAX_FRAME_BYTES};

/// Shortest back-reference worth encoding (the token's match nibble is
/// biased by this).
pub const MIN_MATCH: usize = 4;
/// Furthest back a match may reach (u16 offset).
pub const MAX_OFFSET: usize = 65_535;
/// The final bytes of a block are always literals, so the decompressor
/// can copy matches without overrunning its output tail.
const LAST_LITERALS: usize = 5;
const HASH_BITS: u32 = 15;
/// Hash-chain candidates examined per position; greedy, so the first
/// longest match wins.
const MAX_PROBES: usize = 16;

#[inline]
fn hash4(v: u32) -> usize {
    // Knuth multiplicative hash over the 4-byte window.
    u32_to_usize(v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS))
}

#[inline]
fn read_u32(src: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]])
}

/// Compress `src`. Always succeeds; incompressible input simply comes
/// out slightly larger (one token per 255-byte literal run), which the
/// frame writer detects and ships uncompressed instead.
#[must_use]
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    if src.len() <= MIN_MATCH + LAST_LITERALS {
        emit(&mut out, src, None);
        return out;
    }
    // Matches may extend up to here; the tail stays literal.
    let match_limit = src.len() - LAST_LITERALS;
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut chain = vec![u32::MAX; src.len()];
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= match_limit {
        let h = hash4(read_u32(src, i));
        let (mut best_len, mut best_pos) = (0usize, 0usize);
        let mut cand = head[h];
        let mut probes = 0;
        while cand != u32::MAX && probes < MAX_PROBES {
            let c = u32_to_usize(cand);
            if i - c > MAX_OFFSET {
                break; // chains are position-ordered: older is farther
            }
            let mut len = 0;
            while i + len < match_limit && src[c + len] == src[i + len] {
                len += 1;
            }
            if len > best_len {
                (best_len, best_pos) = (len, c);
            }
            cand = chain[c];
            probes += 1;
        }
        chain[i] = head[h];
        head[h] = len_to_u32(i);
        if best_len >= MIN_MATCH {
            emit(&mut out, &src[anchor..i], Some((i - best_pos, best_len)));
            let end = i + best_len;
            // Index the match interior so later data can reference it.
            // Cap the work on very long matches — by then the window is
            // saturated with this pattern anyway.
            let insert_end = end.min(i + 64);
            let mut p = i + 1;
            while p + MIN_MATCH <= match_limit && p < insert_end {
                let hp = hash4(read_u32(src, p));
                chain[p] = head[hp];
                head[hp] = len_to_u32(p);
                p += 1;
            }
            i = end;
            anchor = end;
        } else {
            i += 1;
        }
    }
    emit(&mut out, &src[anchor..], None);
    out
}

/// Append one sequence: `literals`, then (unless final) a match of
/// `len` bytes starting `offset` back.
fn emit(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_len = literals.len();
    let match_code = m.map_or(0, |(_, len)| len - MIN_MATCH);
    out.push(((lit_len.min(15) as u8) << 4) | match_code.min(15) as u8);
    if lit_len >= 15 {
        write_ext(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, _)) = m {
        debug_assert!((1..=MAX_OFFSET).contains(&offset));
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if match_code >= 15 {
            write_ext(out, match_code - 15);
        }
    }
}

fn write_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn read_ext(src: &[u8], i: &mut usize) -> Result<usize, WireError> {
    let mut total = 0usize;
    loop {
        let b = *src
            .get(*i)
            .ok_or_else(|| WireError::corrupt("length extension past end of block"))?;
        *i += 1;
        total += usize::from(b);
        if b != 255 {
            return Ok(total);
        }
    }
}

/// Decompress a block produced by [`compress`] into exactly `raw_len`
/// bytes.
///
/// # Errors
/// [`WireError::Corrupt`] on any malformed input: lengths past the end
/// of the block, offsets before the start of the output, or an output
/// that does not land on exactly `raw_len` bytes. Never panics.
pub fn decompress(src: &[u8], raw_len: usize) -> Result<Vec<u8>, WireError> {
    // Callers validate raw_len against the frame header, but this is a
    // public entry point — cap the up-front allocation regardless.
    let mut out: Vec<u8> = Vec::with_capacity(raw_len.min(MAX_FRAME_BYTES));
    let mut i = 0usize;
    if src.is_empty() && raw_len != 0 {
        return Err(WireError::corrupt("empty block for non-empty payload"));
    }
    while i < src.len() {
        let token = src[i];
        i += 1;
        // Literal run.
        let mut lit_len = usize::from(token >> 4);
        if lit_len == 15 {
            lit_len += read_ext(src, &mut i)?;
        }
        if lit_len > src.len() - i {
            return Err(WireError::corrupt("literal run past end of block"));
        }
        if out.len() + lit_len > raw_len {
            return Err(WireError::corrupt(
                "literals exceed declared payload length",
            ));
        }
        out.extend_from_slice(&src[i..i + lit_len]);
        i += lit_len;
        if i == src.len() {
            break; // final sequence: literals only
        }
        // Back-reference copy.
        if src.len() - i < 2 {
            return Err(WireError::corrupt("truncated match offset"));
        }
        let offset = usize::from(u16::from_le_bytes([src[i], src[i + 1]]));
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(WireError::corrupt("match offset outside produced output"));
        }
        let mut match_len = usize::from(token & 0x0F);
        if match_len == 15 {
            match_len += read_ext(src, &mut i)?;
        }
        match_len += MIN_MATCH;
        if out.len() + match_len > raw_len {
            return Err(WireError::corrupt("match exceeds declared payload length"));
        }
        // Byte-at-a-time because the regions may overlap (offset <
        // match_len encodes a repeating pattern).
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(WireError::corrupt(format!(
            "decompressed to {} bytes, header declared {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("valid block");
        assert_eq!(back, data);
        packed
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(roundtrip(b"").len() <= 1);
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"abcdefgh");
    }

    #[test]
    fn repetitive_input_shrinks_hard() {
        let data = b"what-if what-if what-if what-if what-if ".repeat(64);
        let packed = roundtrip(&data);
        assert!(
            packed.len() * 10 < data.len(),
            "{} vs {}",
            packed.len(),
            data.len()
        );
    }

    #[test]
    fn all_equal_bytes_use_overlapping_matches() {
        let data = vec![0x42u8; 100_000];
        let packed = roundtrip(&data);
        assert!(
            packed.len() < 512,
            "run-length case: {} bytes",
            packed.len()
        );
    }

    #[test]
    fn incompressible_input_grows_only_slightly() {
        // A xorshift stream: no 4-byte window repeats within 64 KiB.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let packed = roundtrip(&data);
        assert!(packed.len() < data.len() + data.len() / 128 + 16);
    }

    #[test]
    fn columnar_f64_grids_compress() {
        // The target workload: an f64 column with heavily repeated
        // values (a percentage lattice).
        let mut col = Vec::new();
        for i in 0..20_000 {
            let v = -50.0 + (i % 29) as f64 * 5.0;
            col.extend_from_slice(&f64::to_le_bytes(v));
        }
        let packed = roundtrip(&col);
        assert!(
            packed.len() * 4 < col.len(),
            "lattice column: {} of {}",
            packed.len(),
            col.len()
        );
    }

    #[test]
    fn long_matches_and_long_literal_runs_take_the_ext_path() {
        // >15 literal bytes then a >19-byte match forces both ext encodings.
        let mut data = Vec::new();
        data.extend_from_slice(b"0123456789abcdefghij-UNIQUE-PREFIX-");
        let pattern = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        data.extend_from_slice(&pattern.repeat(40));
        roundtrip(&data);
    }

    #[test]
    fn corrupt_blocks_error_never_panic() {
        let data = b"hello hello hello hello hello hello".repeat(10);
        let packed = compress(&data);
        // Wrong declared length, both directions.
        assert!(decompress(&packed, data.len() + 1).is_err());
        assert!(decompress(&packed, data.len().saturating_sub(1)).is_err());
        // Truncations at every boundary.
        for cut in 0..packed.len() {
            let _ = decompress(&packed[..cut], data.len());
        }
        // Single-byte corruptions.
        for flip in 0..packed.len() {
            let mut bad = packed.clone();
            bad[flip] ^= 0xFF;
            let _ = decompress(&bad, data.len());
        }
        // Hand-built: offset of zero.
        let bad = [0x04u8, b'a', b'b', b'c', b'd', 0, 0];
        assert!(decompress(&bad, 100).is_err());
        // Hand-built: offset beyond output produced so far.
        let bad = [0x14u8, b'a', 9, 0];
        assert!(decompress(&bad, 100).is_err());
    }
}
