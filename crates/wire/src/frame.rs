//! v3 framing: a fixed 24-byte header followed by the payload.
//!
//! ```text
//! offset  size  field
//!      0     4  magic        B3 57 49 52   ("³WIR"; 0xB3 is never the
//!                                           first byte of JSON, so one
//!                                           peeked byte routes a
//!                                           connection to v3 or v1/v2)
//!      4     1  version      3
//!      5     1  frame type   Request/Reply/StreamHead/StreamBlock/
//!                            StreamEnd/Error
//!      6     1  flags        reserved, 0
//!      7     1  compression  0 = None, 1 = Lz4Like
//!      8     4  payload_len  u32 LE — bytes on the wire
//!     12     4  raw_len      u32 LE — bytes after decompression
//!     16     8  checksum     u64 LE — FNV-1a 64 of the on-wire payload
//! ```
//!
//! The reader ([`read_event`]) is built to keep connections alive:
//! every malformed-frame condition (bad magic, wrong version, unknown
//! type, oversized declaration, checksum mismatch, failed
//! decompression) is reported as a [`FrameEvent::Skipped`] with the
//! stream realigned on the next frame boundary — oversized payloads are
//! discarded in bounded chunks, never buffered. Only a mid-frame EOF or
//! a transport error is fatal.

use std::io::{BufRead, Write};

use crate::codec::len_to_u32;
use crate::{fnv1a64, lz4, WireError, MAX_FRAME_BYTES};

/// The four magic bytes opening every v3 frame. `0xB3` mnemonically
/// "binary, version 3", and crucially not `{`, `[`, a digit, or
/// whitespace — no JSON line starts with it.
pub const WIRE_MAGIC: [u8; 4] = [0xB3, b'W', b'I', b'R'];

/// The protocol version this crate speaks.
pub const WIRE_VERSION: u8 = 3;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 24;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server request.
    Request = 1,
    /// Server → client complete reply.
    Reply = 2,
    /// Server → client: a streamed reply begins (totals + baseline).
    StreamHead = 3,
    /// Server → client: one bounded block of a streamed reply.
    StreamBlock = 4,
    /// Server → client: the streamed reply is complete.
    StreamEnd = 5,
    /// Server → client typed error.
    Error = 6,
}

impl FrameType {
    fn from_u8(v: u8) -> Result<FrameType, WireError> {
        Ok(match v {
            1 => FrameType::Request,
            2 => FrameType::Reply,
            3 => FrameType::StreamHead,
            4 => FrameType::StreamBlock,
            5 => FrameType::StreamEnd,
            6 => FrameType::Error,
            other => return Err(WireError::UnknownFrameType(other)),
        })
    }
}

/// Per-frame payload compression, named by the header's byte 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Compression {
    /// Payload shipped as-is.
    None = 0,
    /// Payload packed by [`crate::lz4`].
    Lz4Like = 1,
}

impl Compression {
    fn from_u8(v: u8) -> Result<Compression, WireError> {
        Ok(match v {
            0 => Compression::None,
            1 => Compression::Lz4Like,
            other => return Err(WireError::UnknownCompression(other)),
        })
    }
}

/// A decoded frame: type plus the *decompressed* payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub frame_type: FrameType,
    /// How the payload travelled (informational; it is already
    /// decompressed here).
    pub compression: Compression,
    /// The decompressed payload bytes.
    pub payload: Vec<u8>,
}

/// One read from a v3 stream.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete, checksum-verified frame.
    Frame(Frame),
    /// Clean end of stream at a frame boundary.
    Eof,
    /// A malformed frame was skipped; the stream is realigned and the
    /// connection remains usable. `skipped` counts discarded bytes.
    Skipped {
        /// Why the bytes were discarded.
        error: WireError,
        /// How many bytes were discarded.
        skipped: u64,
    },
}

/// Serialize one frame to `out`, compressing the payload when
/// `prefer` asks for it *and* compression actually wins (otherwise the
/// frame silently ships uncompressed — the compression byte records
/// what happened).
///
/// # Errors
/// [`WireError::Oversized`] if the payload exceeds [`MAX_FRAME_BYTES`].
pub fn encode_frame(
    frame_type: FrameType,
    payload: &[u8],
    prefer: Compression,
) -> Result<Vec<u8>, WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            declared: payload.len() as u64,
            limit: MAX_FRAME_BYTES,
        });
    }
    let packed;
    let (wire_payload, compression): (&[u8], Compression) = match prefer {
        Compression::None => (payload, Compression::None),
        Compression::Lz4Like => {
            packed = lz4::compress(payload);
            if packed.len() < payload.len() {
                (&packed, Compression::Lz4Like)
            } else {
                (payload, Compression::None)
            }
        }
    };
    let mut out = Vec::with_capacity(HEADER_LEN + wire_payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(frame_type as u8);
    out.push(0); // flags, reserved
    out.push(compression as u8);
    out.extend_from_slice(&len_to_u32(wire_payload.len()).to_le_bytes());
    out.extend_from_slice(&len_to_u32(payload.len()).to_le_bytes());
    out.extend_from_slice(&fnv1a64(wire_payload).to_le_bytes());
    out.extend_from_slice(wire_payload);
    Ok(out)
}

/// [`encode_frame`] straight onto a writer. Returns the number of bytes
/// put on the wire (header included) so callers can meter traffic.
///
/// # Errors
/// [`WireError::Oversized`] for a too-large payload, [`WireError::Io`]
/// if the transport fails.
pub fn write_frame(
    w: &mut impl Write,
    frame_type: FrameType,
    payload: &[u8],
    prefer: Compression,
) -> Result<usize, WireError> {
    let bytes = encode_frame(frame_type, payload, prefer)?;
    w.write_all(&bytes)?;
    Ok(bytes.len())
}

/// Read until a byte could plausibly start a frame, returning how many
/// garbage bytes were discarded (`None` means EOF before any magic).
fn resync(r: &mut impl BufRead) -> Result<Option<u64>, WireError> {
    let mut skipped = 0u64;
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Ok(if skipped == 0 { None } else { Some(skipped) });
        }
        match buf.iter().position(|&b| b == WIRE_MAGIC[0]) {
            Some(0) => return Ok(Some(skipped)),
            Some(n) => {
                r.consume(n);
                skipped += n as u64;
                return Ok(Some(skipped));
            }
            None => {
                let n = buf.len();
                r.consume(n);
                skipped += n as u64;
            }
        }
    }
}

/// Discard exactly `n` payload bytes in bounded chunks — an oversized
/// frame is skipped without ever allocating its declared size.
fn discard(r: &mut impl BufRead, mut n: u64) -> Result<(), WireError> {
    while n > 0 {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Err(WireError::Truncated {
                context: "discarding a skipped payload",
            });
        }
        // The min against buf.len() keeps the value in usize range.
        let take = buf.len().min(usize::try_from(n).unwrap_or(usize::MAX));
        r.consume(take);
        n -= take as u64;
    }
    Ok(())
}

fn read_exact_or_truncated(
    r: &mut impl BufRead,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context }
        } else {
            WireError::Io(e)
        }
    })
}

/// Read the next event from a v3 stream.
///
/// Recovery rules, in the order they are checked:
///
/// * bytes before the magic are scanned past ([`FrameEvent::Skipped`]
///   with [`WireError::BadMagic`]) — resynchronization is best-effort:
///   it keys on the first magic byte, so garbage containing `0xB3` may
///   cost one more skipped-frame round before realigning;
/// * a valid-magic header with a wrong version, unknown frame type,
///   unknown compression byte, or an oversized declared length has its
///   declared payload discarded in bounded chunks and is reported as
///   `Skipped`;
/// * a checksum mismatch or a payload that fails to decompress consumed
///   exactly its frame, so it too is `Skipped` and the stream stays
///   aligned.
///
/// # Errors
/// Only fatal conditions: [`WireError::Truncated`] when the stream ends
/// mid-frame, [`WireError::Io`] when the transport fails.
pub fn read_event(r: &mut impl BufRead) -> Result<FrameEvent, WireError> {
    // Align on a plausible frame start.
    match resync(r)? {
        None => return Ok(FrameEvent::Eof),
        Some(0) => {}
        Some(skipped) => {
            // Report the resync as its own event; the caller decides
            // whether to answer with a typed error before reading on.
            return Ok(FrameEvent::Skipped {
                error: WireError::BadMagic,
                skipped,
            });
        }
    }

    let mut header = [0u8; HEADER_LEN];
    read_exact_or_truncated(r, &mut header, "reading a frame header")?;

    if header[..4] != WIRE_MAGIC {
        // First byte matched but the rest did not: plain garbage that
        // happened to contain 0xB3. The header bytes are gone; the next
        // call resyncs on the following magic byte.
        return Ok(FrameEvent::Skipped {
            error: WireError::BadMagic,
            skipped: HEADER_LEN as u64,
        });
    }

    let payload_len = u64::from(u32::from_le_bytes([
        header[8], header[9], header[10], header[11],
    ]));
    let raw_len = u64::from(u32::from_le_bytes([
        header[12], header[13], header[14], header[15],
    ]));
    let declared_checksum = u64::from_le_bytes([
        header[16], header[17], header[18], header[19], header[20], header[21], header[22],
        header[23],
    ]);

    // Header-level rejections: the magic was real, so trust payload_len
    // enough to discard exactly that many bytes and stay aligned.
    let validated = if header[4] != WIRE_VERSION {
        Err(WireError::BadVersion(header[4]))
    } else if payload_len > MAX_FRAME_BYTES as u64 || raw_len > MAX_FRAME_BYTES as u64 {
        Err(WireError::Oversized {
            declared: payload_len.max(raw_len),
            limit: MAX_FRAME_BYTES,
        })
    } else {
        match (
            FrameType::from_u8(header[5]),
            Compression::from_u8(header[7]),
        ) {
            (Ok(frame_type), Ok(compression)) => Ok((frame_type, compression)),
            (Err(e), _) | (_, Err(e)) => Err(e),
        }
    };
    let (frame_type, compression) = match validated {
        Ok(parsed) => parsed,
        Err(error) => {
            discard(r, payload_len)?;
            return Ok(FrameEvent::Skipped {
                error,
                skipped: HEADER_LEN as u64 + payload_len,
            });
        }
    };

    // payload_len was bounded by MAX_FRAME_BYTES above, so the widening
    // fallback is unreachable and the allocation is capped.
    let mut wire_payload = vec![0u8; usize::try_from(payload_len).unwrap_or(MAX_FRAME_BYTES)];
    read_exact_or_truncated(r, &mut wire_payload, "reading a frame payload")?;

    // From here on the frame is fully consumed: every failure is
    // recoverable and costs exactly this frame.
    let skipped = HEADER_LEN as u64 + payload_len;
    if fnv1a64(&wire_payload) != declared_checksum {
        return Ok(FrameEvent::Skipped {
            error: WireError::BadChecksum,
            skipped,
        });
    }
    let payload = match compression {
        Compression::None => {
            if raw_len != payload_len {
                return Ok(FrameEvent::Skipped {
                    error: WireError::corrupt(format!(
                        "uncompressed frame declares raw_len {raw_len} != payload_len {payload_len}"
                    )),
                    skipped,
                });
            }
            wire_payload
        }
        Compression::Lz4Like => match lz4::decompress(
            &wire_payload,
            usize::try_from(raw_len).unwrap_or(MAX_FRAME_BYTES),
        ) {
            Ok(raw) => raw,
            Err(error) => return Ok(FrameEvent::Skipped { error, skipped }),
        },
    };

    Ok(FrameEvent::Frame(Frame {
        frame_type,
        compression,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(bytes: &[u8]) -> Vec<FrameEvent> {
        let mut r = Cursor::new(bytes);
        let mut events = Vec::new();
        loop {
            match read_event(&mut r).expect("no fatal error expected") {
                FrameEvent::Eof => return events,
                ev => events.push(ev),
            }
        }
    }

    fn expect_frame(ev: &FrameEvent) -> &Frame {
        match ev {
            FrameEvent::Frame(f) => f,
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_all_types() {
        for ft in [
            FrameType::Request,
            FrameType::Reply,
            FrameType::StreamHead,
            FrameType::StreamBlock,
            FrameType::StreamEnd,
            FrameType::Error,
        ] {
            let payload = format!("payload for {ft:?}").into_bytes();
            let bytes = encode_frame(ft, &payload, Compression::None).unwrap();
            let events = read_all(&bytes);
            assert_eq!(events.len(), 1);
            let f = expect_frame(&events[0]);
            assert_eq!(f.frame_type, ft);
            assert_eq!(f.payload, payload);
        }
    }

    #[test]
    fn compression_engages_only_when_it_wins() {
        let compressible = b"scenario scenario scenario scenario ".repeat(100);
        let bytes = encode_frame(FrameType::Reply, &compressible, Compression::Lz4Like).unwrap();
        assert!(bytes.len() < compressible.len() / 2);
        let events = read_all(&bytes);
        let f = expect_frame(&events[0]);
        assert_eq!(f.compression, Compression::Lz4Like);
        assert_eq!(f.payload, compressible);

        // 9 bytes cannot shrink: ships as None even though we asked.
        let tiny = b"tiny data";
        let bytes = encode_frame(FrameType::Reply, tiny, Compression::Lz4Like).unwrap();
        let events = read_all(&bytes);
        let f = expect_frame(&events[0]);
        assert_eq!(f.compression, Compression::None);
        assert_eq!(f.payload, tiny);
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_frame(FrameType::StreamEnd, b"", Compression::Lz4Like).unwrap();
        let events = read_all(&bytes);
        assert!(expect_frame(&events[0]).payload.is_empty());
    }

    #[test]
    fn leading_garbage_is_skipped_then_the_frame_parses() {
        let mut bytes = b"this is not a frame at all\n".to_vec();
        let frame = encode_frame(FrameType::Request, b"hello", Compression::None).unwrap();
        bytes.extend_from_slice(&frame);
        let events = read_all(&bytes);
        assert_eq!(events.len(), 2);
        match &events[0] {
            FrameEvent::Skipped {
                error: WireError::BadMagic,
                skipped,
            } => assert_eq!(*skipped, 27),
            other => panic!("expected a BadMagic skip, got {other:?}"),
        }
        assert_eq!(expect_frame(&events[1]).payload, b"hello");
    }

    #[test]
    fn corrupted_checksum_skips_exactly_one_frame() {
        let mut bytes = encode_frame(FrameType::Request, b"first", Compression::None).unwrap();
        let flip_at = bytes.len() - 3; // inside the first payload
        bytes[flip_at] ^= 0xFF;
        bytes.extend(encode_frame(FrameType::Request, b"second", Compression::None).unwrap());
        let events = read_all(&bytes);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            FrameEvent::Skipped {
                error: WireError::BadChecksum,
                ..
            }
        ));
        assert_eq!(expect_frame(&events[1]).payload, b"second");
    }

    #[test]
    fn wrong_version_discards_its_payload_and_stays_aligned() {
        let mut bad = encode_frame(FrameType::Request, b"future stuff", Compression::None).unwrap();
        bad[4] = 9; // version
                    // checksum still matches the payload, but version gates first
        let mut bytes = bad;
        bytes.extend(encode_frame(FrameType::Request, b"present", Compression::None).unwrap());
        let events = read_all(&bytes);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            FrameEvent::Skipped {
                error: WireError::BadVersion(9),
                ..
            }
        ));
        assert_eq!(expect_frame(&events[1]).payload, b"present");
    }

    #[test]
    fn oversized_declaration_is_rejected_on_write_and_skipped_on_read() {
        let too_big = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(
            encode_frame(FrameType::Reply, &too_big, Compression::None),
            Err(WireError::Oversized { .. })
        ));

        // Hand-forge a header claiming 1 GiB, with only a small real
        // payload behind it followed by a good frame. The reader must
        // discard exactly the declared length... which is absent, so it
        // truncates. Instead: declare oversized but follow with that
        // many bytes is impractical — use a small declared-oversized
        // frame whose payload we can actually supply: declare raw_len
        // huge with a small payload_len.
        let payload = b"x".repeat(100);
        let mut frame = encode_frame(FrameType::Reply, &payload, Compression::None).unwrap();
        frame[12..16].copy_from_slice(&u32::MAX.to_le_bytes()); // raw_len = 4 GiB - 1
        let mut bytes = frame;
        bytes.extend(encode_frame(FrameType::Request, b"after", Compression::None).unwrap());
        let events = read_all(&bytes);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            FrameEvent::Skipped {
                error: WireError::Oversized { .. },
                ..
            }
        ));
        assert_eq!(expect_frame(&events[1]).payload, b"after");
    }

    #[test]
    fn unknown_frame_type_and_compression_are_skipped() {
        for (byte_index, value) in [(5usize, 0x7Fu8), (7usize, 0x42u8)] {
            let mut bad = encode_frame(FrameType::Reply, b"payload", Compression::None).unwrap();
            bad[byte_index] = value;
            let mut bytes = bad;
            bytes.extend(encode_frame(FrameType::Request, b"ok", Compression::None).unwrap());
            let events = read_all(&bytes);
            assert_eq!(events.len(), 2);
            assert!(matches!(events[0], FrameEvent::Skipped { .. }));
            assert_eq!(expect_frame(&events[1]).payload, b"ok");
        }
    }

    #[test]
    fn truncation_is_fatal() {
        let frame = encode_frame(FrameType::Request, b"some payload", Compression::None).unwrap();
        // Mid-header.
        let mut r = Cursor::new(&frame[..HEADER_LEN - 4]);
        assert!(matches!(
            read_event(&mut r),
            Err(WireError::Truncated { .. })
        ));
        // Mid-payload.
        let mut r = Cursor::new(&frame[..frame.len() - 2]);
        assert!(matches!(
            read_event(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn compressed_frame_with_mangled_body_is_skipped_not_fatal() {
        let data = b"abcabcabcabcabcabcabcabcabcabc".repeat(20);
        let mut frame = encode_frame(FrameType::Reply, &data, Compression::Lz4Like).unwrap();
        assert_eq!(frame[7], Compression::Lz4Like as u8);
        // Mangle the compressed body and re-stamp the checksum so the
        // failure happens at decompression, not checksum.
        let body_start = HEADER_LEN;
        frame[body_start] ^= 0xFF;
        let new_sum = fnv1a64(&frame[body_start..]);
        frame[16..24].copy_from_slice(&new_sum.to_le_bytes());
        let mut bytes = frame;
        bytes.extend(encode_frame(FrameType::Request, b"alive", Compression::None).unwrap());
        let events = read_all(&bytes);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            FrameEvent::Skipped {
                error: WireError::Corrupt(_),
                ..
            }
        ));
        assert_eq!(expect_frame(&events[1]).payload, b"alive");
    }

    #[test]
    fn first_magic_byte_is_not_valid_json_start() {
        assert_eq!(WIRE_MAGIC[0], 0xB3);
        for json_start in [
            b'{', b'[', b'"', b' ', b'\t', b'\n', b'-', b'0', b'9', b't', b'f',
        ] {
            assert_ne!(WIRE_MAGIC[0], json_start);
        }
    }
}
