//! # whatif-wire
//!
//! Protocol **v3**: the binary columnar wire format (see
//! `docs/PROTOCOL.md`). The v1/v2 protocols ship line-delimited JSON,
//! which makes serialization the dominant cost of bulk paths — a
//! 100k-scenario `EvaluateScenarios` grid spends more time rendering
//! and parsing little JSON objects than scoring scenarios. v3 replaces
//! the text framing with:
//!
//! * **length-prefixed frames** ([`frame`]) — a fixed 24-byte header
//!   (magic, version, frame type, flags, compression byte, payload
//!   lengths, checksum) followed by the payload, so readers never scan
//!   for delimiters and a corrupt frame is detected before decoding;
//! * **columnar blocks** ([`block`]) — scenario inputs and outputs
//!   travel as one contiguous `f64` column per driver / per KPI output
//!   with `u32` name-table indices, not N little JSON objects;
//! * **an in-tree LZ4-style block compressor** ([`lz4`]) — greedy
//!   hash-chain match finding, byte-exact round trip, no external
//!   dependencies — selected per frame by the header's compression
//!   byte;
//! * **chunked streaming** — a large scenario grid streams back as
//!   bounded `StreamBlock` frames instead of one giant reply line.
//!
//! This crate is protocol-*mechanics* only: frames, compression, and
//! block layouts over plain types (`u64`/`f64`/`String`). Mapping wire
//! messages onto engine [`Request`]s lives in `whatif-server`'s `v3`
//! module, so the dependency arrow stays wire ← server and the engine
//! facade remains transport-agnostic.

pub mod block;
pub mod codec;
pub mod frame;
pub mod lz4;

pub use block::{
    ComparisonReply, ComparisonRequest, DriverColumn, ErrorReply, OutcomeBlock, OutcomeStreamHead,
    PerturbKind, ReplyBody, RequestBody, ScenarioGridRequest, StreamEnd, WireReply, WireRequest,
};
pub use frame::{
    read_event, write_frame, Compression, Frame, FrameEvent, FrameType, WIRE_MAGIC, WIRE_VERSION,
};

/// Hard ceiling on a single frame's payload (compressed *and*
/// decompressed side), shared with the JSON transports as the maximum
/// request-line length: 64 MiB. A peer declaring more is answered with
/// a typed error and the oversized bytes are discarded without
/// buffering.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Rows per streamed outcome block: bounded so a million-row scenario
/// grid never materializes one giant reply frame (8192 × 8 B = 64 KiB
/// of KPI column per block).
pub const DEFAULT_BLOCK_ROWS: usize = 8192;

/// Hard ceiling on the scenario count a single grid request may
/// declare: [`MAX_FRAME_BYTES`] / 8, the most rows one frame could
/// corroborate with even a single `f64` column. `n_scenarios` is
/// otherwise uncorroborated when a grid ships no names and no columns
/// (all-baseline rows), and row counts drive server-side allocation —
/// without this cap a ~40-byte frame could declare `u32::MAX` rows and
/// force a multi-hundred-GiB allocation before session validation.
// lint:allow(no-unchecked-narrowing): const context (try_from is not const); the assert below proves the value fits
pub const MAX_GRID_SCENARIOS: u32 = (MAX_FRAME_BYTES / 8) as u32;
const _: () = assert!(MAX_FRAME_BYTES / 8 <= 0xFFFF_FFFF);

/// Everything that can go wrong reading or decoding v3 traffic.
///
/// Every variant except [`WireError::Truncated`] and [`WireError::Io`]
/// leaves the stream positioned at the next frame boundary, so a server
/// can answer with a typed error and keep the connection.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended mid-frame; the connection is unusable.
    Truncated {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The four magic bytes did not match.
    BadMagic,
    /// The header named a protocol version this build does not speak.
    BadVersion(u8),
    /// The header named an unknown frame type.
    UnknownFrameType(u8),
    /// The header named an unknown compression byte.
    UnknownCompression(u8),
    /// A declared length exceeded the frame budget.
    Oversized {
        /// Declared length.
        declared: u64,
        /// The budget it exceeded.
        limit: usize,
    },
    /// The payload checksum did not match the header.
    BadChecksum,
    /// The payload failed to decompress or decode.
    Corrupt(String),
    /// Underlying transport failure.
    Io(std::io::Error),
}

impl WireError {
    /// Whether the stream is still aligned on a frame boundary after
    /// this error — i.e. the server can reply with a typed error and
    /// keep serving the connection.
    pub fn is_recoverable(&self) -> bool {
        !matches!(self, WireError::Truncated { .. } | WireError::Io(_))
    }

    pub(crate) fn corrupt(message: impl Into<String>) -> WireError {
        WireError::Corrupt(message.into())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { context } => write!(f, "stream truncated while {context}"),
            WireError::BadMagic => f.write_str("bad frame magic"),
            WireError::BadVersion(v) => write!(
                f,
                "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
            ),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            WireError::UnknownCompression(c) => write!(f, "unknown compression byte {c:#04x}"),
            WireError::Oversized { declared, limit } => {
                write!(
                    f,
                    "declared length {declared} exceeds the {limit}-byte limit"
                )
            }
            WireError::BadChecksum => f.write_str("payload checksum mismatch"),
            WireError::Corrupt(m) => write!(f, "corrupt payload: {m}"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the frame checksum. Strong enough to
/// catch truncation, bit rot, and desynchronized reads; cheap enough to
/// run on every frame.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_published_vectors() {
        // The canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn recoverability_classification() {
        assert!(WireError::BadChecksum.is_recoverable());
        assert!(WireError::BadMagic.is_recoverable());
        assert!(WireError::Oversized {
            declared: 1,
            limit: 0
        }
        .is_recoverable());
        assert!(!WireError::Truncated { context: "x" }.is_recoverable());
        assert!(!WireError::Io(std::io::Error::other("x")).is_recoverable());
    }
}
