//! Bounds-checked little-endian primitives shared by the frame header
//! and block encodings. Writers append to a `Vec<u8>`; the [`Reader`]
//! never panics on short or malformed input — every overrun is a typed
//! [`WireError::Corrupt`].

use crate::WireError;

// The decode paths widen u32 → usize without a runtime check; make the
// platform assumption a compile error instead of a silent truncation.
const _: () = assert!(usize::BITS >= 32, "whatif-wire requires usize >= 32 bits");

/// Widen a wire-declared `u32` to `usize` with no `as` cast. Infallible
/// on every supported target (see the compile-time guard above), so the
/// fallback arm is unreachable rather than a panic path.
#[inline]
pub fn u32_to_usize(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Narrow an in-memory length to the wire's `u32`, saturating instead
/// of wrapping. Payloads large enough to saturate are rejected by the
/// frame layer's `MAX_FRAME_BYTES` check before any saturated length
/// could reach a peer.
#[inline]
pub fn len_to_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bits, little-endian — NaN payloads,
/// signed zeros, and infinities survive bit-exactly (unlike JSON, which
/// collapses them all to `null`).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string (`u32` length + bytes).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, len_to_u32(s.len()));
    out.extend_from_slice(s.as_bytes());
}

/// Append a contiguous `f64` column (count + raw bits).
pub fn put_f64_column(out: &mut Vec<u8>, column: &[f64]) {
    put_u32(out, len_to_u32(column.len()));
    out.reserve(column.len() * 8);
    for &v in column {
        put_f64(out, v);
    }
}

/// A cursor over a decoded payload. All reads are bounds-checked; a
/// short buffer yields [`WireError::Corrupt`], never a panic.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fail unless the payload was consumed exactly — trailing garbage
    /// in a frame is corruption, not slack.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::corrupt(format!(
                "need {n} bytes for {what}, have {}",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.checked_len(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::corrupt(format!("{what} is not valid UTF-8")))
    }

    /// Read a contiguous `f64` column (count + raw bits).
    pub fn f64_column(&mut self, what: &str) -> Result<Vec<f64>, WireError> {
        let n = self.checked_count(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }

    /// Read a `u32` length and sanity-check it against the bytes that
    /// are actually left, so a corrupt length can never trigger a huge
    /// allocation.
    pub fn checked_len(&mut self, what: &str) -> Result<usize, WireError> {
        let len = u32_to_usize(self.u32(what)?);
        if len > self.remaining() {
            return Err(WireError::corrupt(format!(
                "{what} declares {len} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Read a `u32` element count for elements of `elem_size` bytes,
    /// checked against the remaining payload.
    pub fn checked_count(&mut self, elem_size: usize, what: &str) -> Result<usize, WireError> {
        let n = u32_to_usize(self.u32(what)?);
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(WireError::corrupt(format!(
                "{what} declares {n} elements ({elem_size} B each) but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_str(&mut buf, "héllo");
        put_f64_column(&mut buf, &[1.5, f64::NAN, f64::INFINITY]);

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str("e").unwrap(), "héllo");
        let col = r.f64_column("f").unwrap();
        assert_eq!(col[0], 1.5);
        assert!(col[1].is_nan());
        assert_eq!(col[2], f64::INFINITY);
        r.expect_end().unwrap();
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32("x").is_err());
        let mut r = Reader::new(&[]);
        assert!(r.u8("x").is_err());
        assert!(Reader::new(&[0xFF; 4]).expect_end().is_err());
    }

    #[test]
    fn huge_declared_lengths_are_rejected_before_allocating() {
        // A string claiming 4 GiB with 0 bytes behind it.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Reader::new(&buf).str("s").is_err());
        // A column claiming u32::MAX elements.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Reader::new(&buf).f64_column("c").is_err());
    }

    #[test]
    fn invalid_utf8_is_corrupt_not_a_panic() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&buf).str("s").is_err());
    }
}
