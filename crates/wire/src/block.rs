//! Columnar v3 payloads: what travels inside the frames.
//!
//! The v2 JSON encoding of a 100k-scenario grid repeats every driver
//! name and field label 100k times. Here the same grid is a handful of
//! *columns*: a name table holding each driver string once, and one
//! contiguous `f64` column per perturbed driver (`u32` name-table
//! index + kind byte + values). A `NaN` cell means "this driver is not
//! perturbed in this scenario" — the natural sentinel, since a real
//! perturbation magnitude is always finite.
//!
//! Outcomes stream back the same way: an [`OutcomeStreamHead`]
//! announcing totals, then bounded [`OutcomeBlock`]s each carrying a
//! contiguous KPI column (and ledger-id column when recording), then a
//! [`StreamEnd`]. All `f64`s travel as raw IEEE-754 bits, so NaN
//! payloads, signed zeros, and infinities round-trip bit-exactly —
//! unlike JSON, which collapses them to `null`.
//!
//! Every `decode` here is bounds-checked and cross-validated (column
//! lengths against the declared scenario count, name indices against
//! the table); malformed payloads yield [`WireError::Corrupt`], never a
//! panic.

use crate::codec::{
    len_to_u32, put_f64_column, put_str, put_u32, put_u64, put_u8, u32_to_usize, Reader,
};
use crate::{WireError, MAX_GRID_SCENARIOS};

/// Opcode for a request/reply carrying an embedded JSON body — the
/// universal fallback that lets every v1/v2 request type ride v3
/// framing and compression.
pub const OP_JSON: u8 = 1;
/// Opcode for a columnar scenario grid (`EvaluateScenarios`).
pub const OP_SCENARIOS: u8 = 2;
/// Opcode for a CSV dataset load.
pub const OP_LOAD_CSV: u8 = 3;
/// Opcode for a sensitivity-grid comparison.
pub const OP_COMPARISON: u8 = 4;

/// How a driver column perturbs its driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PerturbKind {
    /// Scale by `1 + value/100`.
    Percentage = 0,
    /// Add `value`.
    Absolute = 1,
}

impl PerturbKind {
    fn from_u8(v: u8) -> Result<PerturbKind, WireError> {
        match v {
            0 => Ok(PerturbKind::Percentage),
            1 => Ok(PerturbKind::Absolute),
            other => Err(WireError::corrupt(format!(
                "unknown perturbation kind byte {other:#04x}"
            ))),
        }
    }
}

/// One perturbed driver across every scenario in a grid: a name, a
/// kind, and one `f64` per scenario (`NaN` = untouched in that
/// scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct DriverColumn {
    /// Driver name (stored once in the grid's name table).
    pub name: String,
    /// How the values apply.
    pub kind: PerturbKind,
    /// One magnitude per scenario; `NaN` cells leave the driver alone.
    pub values: Vec<f64>,
}

/// A columnar `EvaluateScenarios` request: `n_scenarios` rows described
/// by driver columns instead of N per-scenario objects.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGridRequest {
    /// Session id.
    pub session: u64,
    /// Number of scenarios (rows) in the grid.
    pub n_scenarios: u32,
    /// Record outcomes in the scenario ledger.
    pub record: bool,
    /// Worker threads; 0 = server default.
    pub n_threads: u32,
    /// Per-scenario names. Empty = server auto-names rows `s0..sN`;
    /// otherwise must hold exactly `n_scenarios` entries.
    pub names: Vec<String>,
    /// The perturbed drivers. The same driver may appear twice with
    /// different kinds.
    pub columns: Vec<DriverColumn>,
}

/// A columnar `ComparisonView` request (sensitivity grid).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRequest {
    /// Session id.
    pub session: u64,
    /// Percentage sweep applied to every driver.
    pub percentages: Vec<f64>,
}

/// Body of a v3 request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// An embedded v2 JSON request body — the fallback opcode.
    Json(String),
    /// Columnar scenario grid.
    Scenarios(ScenarioGridRequest),
    /// CSV dataset load (big payloads benefit most from frame
    /// compression).
    LoadCsv {
        /// CSV content with a header row.
        csv: String,
    },
    /// Sensitivity-grid comparison.
    Comparison(ComparisonRequest),
}

/// A v3 request: correlation id + body.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen id echoed on every frame of the reply.
    pub id: u64,
    /// The request itself.
    pub body: RequestBody,
    /// Server-side deadline budget in milliseconds; 0 means none.
    ///
    /// Encoded as an optional trailing field: omitted when 0, so
    /// deadline-free frames stay byte-identical to the pre-deadline
    /// format and old decoders (which reject trailing bytes) only
    /// break on frames that actually carry a deadline.
    pub deadline_ms: u64,
}

impl WireRequest {
    /// Serialize to a request-frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        match &self.body {
            RequestBody::Json(json) => {
                put_u8(&mut out, OP_JSON);
                put_str(&mut out, json);
            }
            RequestBody::Scenarios(grid) => {
                put_u8(&mut out, OP_SCENARIOS);
                put_u64(&mut out, grid.session);
                put_u8(&mut out, u8::from(grid.record));
                put_u32(&mut out, grid.n_threads);
                put_u32(&mut out, grid.n_scenarios);
                put_u32(&mut out, len_to_u32(grid.names.len()));
                for name in &grid.names {
                    put_str(&mut out, name);
                }
                // Name table: each driver string once, columns point at
                // it by index. Interning and index lookup happen in one
                // pass, so there is no "name missing from the table"
                // state to defend against.
                let mut table: Vec<&str> = Vec::new();
                let mut indices = Vec::with_capacity(grid.columns.len());
                for col in &grid.columns {
                    let idx = table
                        .iter()
                        .position(|n| *n == col.name)
                        .unwrap_or_else(|| {
                            table.push(&col.name);
                            table.len() - 1
                        });
                    indices.push(idx);
                }
                put_u32(&mut out, len_to_u32(table.len()));
                for name in &table {
                    put_str(&mut out, name);
                }
                put_u32(&mut out, len_to_u32(grid.columns.len()));
                for (col, &idx) in grid.columns.iter().zip(&indices) {
                    put_u32(&mut out, len_to_u32(idx));
                    put_u8(&mut out, col.kind as u8);
                    put_f64_column(&mut out, &col.values);
                }
            }
            RequestBody::LoadCsv { csv } => {
                put_u8(&mut out, OP_LOAD_CSV);
                put_str(&mut out, csv);
            }
            RequestBody::Comparison(cmp) => {
                put_u8(&mut out, OP_COMPARISON);
                put_u64(&mut out, cmp.session);
                put_f64_column(&mut out, &cmp.percentages);
            }
        }
        if self.deadline_ms != 0 {
            put_u64(&mut out, self.deadline_ms);
        }
        out
    }

    /// Parse a request-frame payload.
    ///
    /// # Errors
    /// [`WireError::Corrupt`] on any malformed payload: unknown opcode,
    /// short reads, column lengths that contradict the declared
    /// scenario count, or name-table indices out of range.
    pub fn decode(payload: &[u8]) -> Result<WireRequest, WireError> {
        let mut r = Reader::new(payload);
        let id = r.u64("request id")?;
        let opcode = r.u8("request opcode")?;
        let body = match opcode {
            OP_JSON => RequestBody::Json(r.str("embedded json request")?),
            OP_SCENARIOS => {
                let session = r.u64("session id")?;
                let record = r.u8("record flag")? != 0;
                let n_threads = r.u32("thread count")?;
                let n_scenarios = r.u32("scenario count")?;
                // A grid with no names and no columns corroborates its
                // row count with nothing else in the payload, and the
                // count drives downstream allocation — cap it here so a
                // tiny frame cannot declare billions of rows.
                if n_scenarios > MAX_GRID_SCENARIOS {
                    return Err(WireError::corrupt(format!(
                        "grid declares {n_scenarios} scenarios, limit is {MAX_GRID_SCENARIOS}"
                    )));
                }
                let n_names = r.checked_count(5, "scenario name count")?;
                if n_names != 0 && n_names != u32_to_usize(n_scenarios) {
                    return Err(WireError::corrupt(format!(
                        "{n_names} scenario names for {n_scenarios} scenarios"
                    )));
                }
                let mut names = Vec::with_capacity(n_names);
                for _ in 0..n_names {
                    names.push(r.str("scenario name")?);
                }
                let n_table = r.checked_count(5, "name table size")?;
                let mut table = Vec::with_capacity(n_table);
                for _ in 0..n_table {
                    table.push(r.str("name table entry")?);
                }
                let n_cols = r.checked_count(13, "driver column count")?;
                let mut columns = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    let idx = u32_to_usize(r.u32("driver name index")?);
                    let name = table
                        .get(idx)
                        .ok_or_else(|| {
                            WireError::corrupt(format!(
                                "driver name index {idx} outside table of {n_table}"
                            ))
                        })?
                        .clone();
                    let kind = PerturbKind::from_u8(r.u8("perturbation kind")?)?;
                    let values = r.f64_column("driver column")?;
                    if values.len() != u32_to_usize(n_scenarios) {
                        return Err(WireError::corrupt(format!(
                            "driver column '{name}' has {} values for {n_scenarios} scenarios",
                            values.len()
                        )));
                    }
                    columns.push(DriverColumn { name, kind, values });
                }
                RequestBody::Scenarios(ScenarioGridRequest {
                    session,
                    n_scenarios,
                    record,
                    n_threads,
                    names,
                    columns,
                })
            }
            OP_LOAD_CSV => RequestBody::LoadCsv {
                csv: r.str("csv body")?,
            },
            OP_COMPARISON => {
                let session = r.u64("session id")?;
                let percentages = r.f64_column("percentage sweep")?;
                RequestBody::Comparison(ComparisonRequest {
                    session,
                    percentages,
                })
            }
            other => {
                return Err(WireError::corrupt(format!(
                    "unknown request opcode {other:#04x}"
                )))
            }
        };
        let deadline_ms = if r.remaining() > 0 {
            r.u64("request deadline")?
        } else {
            0
        };
        r.expect_end()?;
        Ok(WireRequest {
            id,
            body,
            deadline_ms,
        })
    }
}

/// A columnar comparison reply: one shared percentage column plus one
/// KPI column per driver.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReply {
    /// The sweep every curve was evaluated on.
    pub percentages: Vec<f64>,
    /// Driver names, aligned with `kpi_columns`.
    pub drivers: Vec<String>,
    /// One KPI column per driver, each `percentages.len()` long.
    pub kpi_columns: Vec<Vec<f64>>,
}

/// Body of a v3 reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// An embedded v2 JSON reply — the fallback opcode.
    Json(String),
    /// Columnar comparison curves.
    Comparison(ComparisonReply),
}

/// A v3 non-streamed reply: correlation id + body.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReply {
    /// The request's id, echoed.
    pub id: u64,
    /// The reply itself.
    pub body: ReplyBody,
}

impl WireReply {
    /// Serialize to a reply-frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        match &self.body {
            ReplyBody::Json(json) => {
                put_u8(&mut out, OP_JSON);
                put_str(&mut out, json);
            }
            ReplyBody::Comparison(cmp) => {
                put_u8(&mut out, OP_COMPARISON);
                put_f64_column(&mut out, &cmp.percentages);
                put_u32(&mut out, len_to_u32(cmp.drivers.len()));
                for (driver, column) in cmp.drivers.iter().zip(&cmp.kpi_columns) {
                    put_str(&mut out, driver);
                    put_f64_column(&mut out, column);
                }
            }
        }
        out
    }

    /// Parse a reply-frame payload.
    ///
    /// # Errors
    /// [`WireError::Corrupt`] on malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<WireReply, WireError> {
        let mut r = Reader::new(payload);
        let id = r.u64("reply id")?;
        let opcode = r.u8("reply opcode")?;
        let body = match opcode {
            OP_JSON => ReplyBody::Json(r.str("embedded json reply")?),
            OP_COMPARISON => {
                let percentages = r.f64_column("percentage sweep")?;
                let n = r.checked_count(9, "curve count")?;
                let mut drivers = Vec::with_capacity(n);
                let mut kpi_columns = Vec::with_capacity(n);
                for _ in 0..n {
                    drivers.push(r.str("driver name")?);
                    let column = r.f64_column("kpi column")?;
                    if column.len() != percentages.len() {
                        return Err(WireError::corrupt(format!(
                            "kpi column has {} values for {} percentages",
                            column.len(),
                            percentages.len()
                        )));
                    }
                    kpi_columns.push(column);
                }
                ReplyBody::Comparison(ComparisonReply {
                    percentages,
                    drivers,
                    kpi_columns,
                })
            }
            other => {
                return Err(WireError::corrupt(format!(
                    "unknown reply opcode {other:#04x}"
                )))
            }
        };
        r.expect_end()?;
        Ok(WireReply { id, body })
    }
}

/// A typed error reply (payload of a `FrameType::Error` frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// The request's id, echoed; 0 when the failure predates decoding
    /// an id (e.g. a skipped malformed frame).
    pub id: u64,
    /// The stable `ErrorCode` wire form (e.g. `"BadRequest"`).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl ErrorReply {
    /// Serialize to an error-frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        put_str(&mut out, &self.code);
        put_str(&mut out, &self.message);
        out
    }

    /// Parse an error-frame payload.
    ///
    /// # Errors
    /// [`WireError::Corrupt`] on malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<ErrorReply, WireError> {
        let mut r = Reader::new(payload);
        let reply = ErrorReply {
            id: r.u64("error id")?,
            code: r.str("error code")?,
            message: r.str("error message")?,
        };
        r.expect_end()?;
        Ok(reply)
    }
}

/// Opens a streamed scenario reply (payload of a `StreamHead` frame).
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeStreamHead {
    /// The request's id, echoed on every frame of this stream.
    pub id: u64,
    /// Total outcome rows the stream will deliver.
    pub total: u64,
    /// KPI on the unperturbed data (shared by every row).
    pub baseline_kpi: f64,
    /// Whether blocks carry a ledger-id column.
    pub recorded: bool,
}

impl OutcomeStreamHead {
    /// Serialize to a stream-head payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        put_u64(&mut out, self.total);
        crate::codec::put_f64(&mut out, self.baseline_kpi);
        put_u8(&mut out, u8::from(self.recorded));
        out
    }

    /// Parse a stream-head payload.
    ///
    /// # Errors
    /// [`WireError::Corrupt`] on malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<OutcomeStreamHead, WireError> {
        let mut r = Reader::new(payload);
        let head = OutcomeStreamHead {
            id: r.u64("stream id")?,
            total: r.u64("stream total")?,
            baseline_kpi: r.f64("baseline kpi")?,
            recorded: r.u8("recorded flag")? != 0,
        };
        r.expect_end()?;
        Ok(head)
    }
}

/// One bounded block of a streamed reply: a contiguous KPI column for
/// rows `start .. start + kpi.len()`, plus the matching ledger-id
/// column when the request recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeBlock {
    /// The request's id, echoed.
    pub id: u64,
    /// Row offset of this block within the stream.
    pub start: u64,
    /// KPI per scenario row, in input order.
    pub kpi: Vec<f64>,
    /// Ledger ids aligned with `kpi`; empty unless the stream head said
    /// `recorded`.
    pub recorded_ids: Vec<u64>,
}

impl OutcomeBlock {
    /// Serialize to a stream-block payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        put_u64(&mut out, self.start);
        put_u8(&mut out, u8::from(!self.recorded_ids.is_empty()));
        put_f64_column(&mut out, &self.kpi);
        if !self.recorded_ids.is_empty() {
            put_u32(&mut out, len_to_u32(self.recorded_ids.len()));
            for &rid in &self.recorded_ids {
                put_u64(&mut out, rid);
            }
        }
        out
    }

    /// Parse a stream-block payload.
    ///
    /// # Errors
    /// [`WireError::Corrupt`] on malformed payloads, including a
    /// ledger-id column whose length contradicts the KPI column.
    pub fn decode(payload: &[u8]) -> Result<OutcomeBlock, WireError> {
        let mut r = Reader::new(payload);
        let id = r.u64("block id")?;
        let start = r.u64("block start")?;
        let has_ids = r.u8("ledger-id flag")? != 0;
        let kpi = r.f64_column("kpi column")?;
        let recorded_ids = if has_ids {
            let n = r.checked_count(8, "ledger-id column")?;
            if n != kpi.len() {
                return Err(WireError::corrupt(format!(
                    "{n} ledger ids for {} kpi values",
                    kpi.len()
                )));
            }
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.u64("ledger id")?);
            }
            ids
        } else {
            Vec::new()
        };
        r.expect_end()?;
        Ok(OutcomeBlock {
            id,
            start,
            kpi,
            recorded_ids,
        })
    }
}

/// Closes a streamed reply (payload of a `StreamEnd` frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEnd {
    /// The request's id, echoed.
    pub id: u64,
    /// How many `StreamBlock` frames preceded this end marker, so
    /// clients can detect a dropped block.
    pub blocks: u32,
}

impl StreamEnd {
    /// Serialize to a stream-end payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        put_u32(&mut out, self.blocks);
        out
    }

    /// Parse a stream-end payload.
    ///
    /// # Errors
    /// [`WireError::Corrupt`] on malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<StreamEnd, WireError> {
        let mut r = Reader::new(payload);
        let end = StreamEnd {
            id: r.u64("stream-end id")?,
            blocks: r.u32("stream-end block count")?,
        };
        r.expect_end()?;
        Ok(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> ScenarioGridRequest {
        ScenarioGridRequest {
            session: 7,
            n_scenarios: 4,
            record: true,
            n_threads: 8,
            names: vec![],
            columns: vec![
                DriverColumn {
                    name: "Open Marketing Email".into(),
                    kind: PerturbKind::Percentage,
                    values: vec![10.0, f64::NAN, -5.0, 0.0],
                },
                DriverColumn {
                    name: "Call".into(),
                    kind: PerturbKind::Absolute,
                    values: vec![f64::NAN, 2.5, f64::NAN, -0.0],
                },
                // Same driver, different kind: legal.
                DriverColumn {
                    name: "Call".into(),
                    kind: PerturbKind::Percentage,
                    values: vec![f64::NAN, f64::NAN, 12.0, f64::NAN],
                },
            ],
        }
    }

    #[test]
    fn scenario_grid_round_trips_with_nan_and_signed_zero() {
        let req = WireRequest {
            id: 99,
            deadline_ms: 0,
            body: RequestBody::Scenarios(sample_grid()),
        };
        let back = WireRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.id, 99);
        let RequestBody::Scenarios(grid) = back.body else {
            panic!("wrong body");
        };
        let orig = sample_grid();
        assert_eq!(grid.session, orig.session);
        assert_eq!(grid.record, orig.record);
        assert_eq!(grid.columns.len(), orig.columns.len());
        for (a, b) in grid.columns.iter().zip(&orig.columns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            let a_bits: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "column {} must be bit-exact", a.name);
        }
    }

    #[test]
    fn name_table_stores_each_driver_once() {
        let req = WireRequest {
            id: 1,
            deadline_ms: 0,
            body: RequestBody::Scenarios(sample_grid()),
        };
        let bytes = req.encode();
        // "Call" appears in two columns but must be encoded once.
        let needle = b"Call";
        let count = bytes.windows(needle.len()).filter(|w| w == needle).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn json_loadcsv_and_comparison_bodies_round_trip() {
        for body in [
            RequestBody::Json(r#"{"ListUseCases":null}"#.into()),
            RequestBody::LoadCsv {
                csv: "a,b\n1,2\n".into(),
            },
            RequestBody::Comparison(ComparisonRequest {
                session: 3,
                percentages: vec![-50.0, 0.0, 50.0],
            }),
        ] {
            let req = WireRequest {
                id: 5,
                body,
                deadline_ms: 0,
            };
            assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn deadlines_are_an_optional_trailing_field() {
        let plain = WireRequest {
            id: 7,
            body: RequestBody::Json("{}".into()),
            deadline_ms: 0,
        };
        let with_deadline = WireRequest {
            deadline_ms: 250,
            ..plain.clone()
        };
        let plain_bytes = plain.encode();
        let deadline_bytes = with_deadline.encode();
        // Zero deadline stays byte-identical to the pre-deadline
        // format; a real deadline appends exactly one trailing u64.
        assert_eq!(deadline_bytes.len(), plain_bytes.len() + 8);
        assert_eq!(&deadline_bytes[..plain_bytes.len()], &plain_bytes[..]);
        // Old frames (no trailing field) decode as deadline 0.
        assert_eq!(WireRequest::decode(&plain_bytes).unwrap(), plain);
        assert_eq!(WireRequest::decode(&deadline_bytes).unwrap(), with_deadline);
        // A truncated deadline is corrupt, not silently dropped.
        assert!(WireRequest::decode(&deadline_bytes[..deadline_bytes.len() - 3]).is_err());
        // Every body opcode round-trips its deadline.
        for body in [
            RequestBody::Json("{}".into()),
            RequestBody::LoadCsv {
                csv: "a\n1\n".into(),
            },
            RequestBody::Comparison(ComparisonRequest {
                session: 3,
                percentages: vec![0.0],
            }),
            RequestBody::Scenarios(sample_grid()),
        ] {
            let req = WireRequest {
                id: 5,
                body,
                deadline_ms: 1_500,
            };
            let back = WireRequest::decode(&req.encode()).unwrap();
            assert_eq!(back.deadline_ms, 1_500);
        }
    }

    #[test]
    fn replies_round_trip() {
        let reply = WireReply {
            id: 11,
            body: ReplyBody::Comparison(ComparisonReply {
                percentages: vec![-10.0, 0.0, 10.0],
                drivers: vec!["Call".into(), "Email".into()],
                kpi_columns: vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]],
            }),
        };
        assert_eq!(WireReply::decode(&reply.encode()).unwrap(), reply);
        let reply = WireReply {
            id: 12,
            body: ReplyBody::Json("{\"ok\":true}".into()),
        };
        assert_eq!(WireReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn stream_frames_round_trip() {
        let head = OutcomeStreamHead {
            id: 4,
            total: 100_000,
            baseline_kpi: 0.4231,
            recorded: true,
        };
        assert_eq!(OutcomeStreamHead::decode(&head.encode()).unwrap(), head);

        let block = OutcomeBlock {
            id: 4,
            start: 8192,
            kpi: vec![0.1, f64::NEG_INFINITY, f64::NAN],
            recorded_ids: vec![100, 101, 102],
        };
        let back = OutcomeBlock::decode(&block.encode()).unwrap();
        assert_eq!(back.id, 4);
        assert_eq!(back.start, 8192);
        assert_eq!(back.recorded_ids, block.recorded_ids);
        let bits: Vec<u64> = back.kpi.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = block.kpi.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want);

        let end = StreamEnd { id: 4, blocks: 13 };
        assert_eq!(StreamEnd::decode(&end.encode()).unwrap(), end);
    }

    #[test]
    fn errors_round_trip() {
        let err = ErrorReply {
            id: 9,
            code: "BadRequest".into(),
            message: "no such session".into(),
        };
        assert_eq!(ErrorReply::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn uncorroborated_scenario_counts_are_capped() {
        // With no names and no columns, nothing else in the payload
        // corroborates n_scenarios — a tiny frame declaring u32::MAX
        // rows must be rejected at decode, before anything allocates.
        let grid = |n_scenarios| ScenarioGridRequest {
            session: 1,
            n_scenarios,
            record: false,
            n_threads: 0,
            names: vec![],
            columns: vec![],
        };
        let bytes = WireRequest {
            id: 1,
            deadline_ms: 0,
            body: RequestBody::Scenarios(grid(u32::MAX)),
        }
        .encode();
        assert!(bytes.len() < 64, "the hostile frame is cheap to send");
        assert!(WireRequest::decode(&bytes).is_err());

        // The boundary itself stays legal.
        let bytes = WireRequest {
            id: 1,
            deadline_ms: 0,
            body: RequestBody::Scenarios(grid(MAX_GRID_SCENARIOS)),
        }
        .encode();
        assert!(WireRequest::decode(&bytes).is_ok());
    }

    #[test]
    fn cross_field_contradictions_are_corrupt() {
        // Column length != scenario count.
        let mut grid = sample_grid();
        grid.columns[0].values.pop();
        let bytes = WireRequest {
            id: 1,
            deadline_ms: 0,
            body: RequestBody::Scenarios(grid),
        }
        .encode();
        assert!(WireRequest::decode(&bytes).is_err());

        // Name count != scenario count.
        let mut grid = sample_grid();
        grid.names = vec!["only-one".into()];
        let bytes = WireRequest {
            id: 1,
            deadline_ms: 0,
            body: RequestBody::Scenarios(grid),
        }
        .encode();
        assert!(WireRequest::decode(&bytes).is_err());

        // Ledger ids != kpi length.
        let block = OutcomeBlock {
            id: 1,
            start: 0,
            kpi: vec![1.0, 2.0],
            recorded_ids: vec![7],
        };
        assert!(OutcomeBlock::decode(&block.encode()).is_err());

        // Unknown opcode.
        let mut bytes = WireRequest {
            id: 1,
            deadline_ms: 0,
            body: RequestBody::Json("{}".into()),
        }
        .encode();
        bytes[8] = 0xEE;
        assert!(WireRequest::decode(&bytes).is_err());

        // Trailing garbage.
        let mut bytes = WireRequest {
            id: 1,
            deadline_ms: 0,
            body: RequestBody::Json("{}".into()),
        }
        .encode();
        bytes.push(0);
        assert!(WireRequest::decode(&bytes).is_err());
    }

    #[test]
    fn truncations_never_panic() {
        let req = WireRequest {
            id: 2,
            deadline_ms: 0,
            body: RequestBody::Scenarios(sample_grid()),
        };
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            assert!(WireRequest::decode(&bytes[..cut]).is_err());
        }
    }
}
