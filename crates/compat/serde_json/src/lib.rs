//! Offline `serde_json` shim: JSON text over the vendored serde facade's
//! [`Value`] data model.
//!
//! Matches the serde_json conventions the workspace relies on:
//!
//! * floats always render with a fraction or exponent (`3.0`, not `3`),
//!   via Rust's shortest-roundtrip `{:?}` formatting,
//! * non-finite floats render as `null` (JSON has no NaN/inf),
//! * `from_str` requires the whole input to be one JSON document,
//! * errors carry a byte offset for malformed documents.

pub use serde::Value;

/// Encode or decode failure.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }

    fn at(message: impl std::fmt::Display, pos: usize) -> Error {
        Error::new(format!("{message} at byte {pos}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON.
///
/// # Errors
/// Never fails for tree-shaped data; the `Result` mirrors serde_json's
/// signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
///
/// # Errors
/// Never fails for tree-shaped data.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Convert a value into the facade's [`Value`] tree.
///
/// # Errors
/// Never fails; mirrors serde_json's signature.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuild a typed value from a [`Value`] tree.
///
/// # Errors
/// Propagates facade deserialization errors.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value).map_err(|e| Error::new(e.to_string()))
}

/// Parse one JSON document into a typed value.
///
/// # Errors
/// Malformed JSON, trailing garbage, or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    from_value(&value)
}

/// Parse one JSON document into a raw [`Value`].
///
/// # Errors
/// Malformed JSON or trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(v)
}

// ----------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest roundtrip form and always keeps a
    // fraction or exponent for floats (`3.0`, `1e300`), like serde_json.
    out.push_str(&format!("{x:?}"));
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::at(
                format!("unexpected character `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a clean UTF-8 run without escapes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::at("invalid UTF-8", start))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(Error::at("control character in string", self.pos)),
                None => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error::at("unterminated escape", self.pos))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect a low surrogate escape next.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(Error::at("invalid low surrogate", self.pos));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(Error::at("unpaired surrogate", self.pos));
                    }
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::at("invalid unicode escape", self.pos))?,
                );
            }
            other => {
                return Err(Error::at(
                    format!("invalid escape `\\{}`", other as char),
                    self.pos,
                ))
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(Error::at("invalid hex digit", self.pos)),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in [
            "null", "true", "false", "3", "-41", "3.5", "1e300", "\"hi\"",
        ] {
            let v = parse(json).unwrap();
            let back = parse(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn floats_keep_their_dot() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Value::F64(3.0));
        assert_eq!(parse("3").unwrap(), Value::I64(3));
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a": [1, 2.5, "x"], "b": {"c": null}, "d": true}"#;
        let v = parse(json).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\"backslash\\tab\tüñî";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str(r#""😀""#).unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }

    #[test]
    fn malformed_documents_error() {
        for bad in ["", "{", "[1,", "tru", "\"open", "{\"a\":}", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn typed_entry_points() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("[1,-2]").is_err());
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
    }
}
