//! Offline `proptest` shim: deterministic random-input testing with
//! proptest's macro surface, minus shrinking.
//!
//! Each `proptest!`-generated test runs its body for
//! [`ProptestConfig::cases`] deterministic cases; the per-case RNG is
//! derived from the test's module path and case index, so failures are
//! reproducible run over run.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-loop configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategies!(f64, i64, u64, i32, u32, usize);

/// A fixed value as a degenerate strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// `Vec` strategy: length drawn from `size`, elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Derive the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case));
    // Decorrelate neighboring cases.
    let _ = rng.next_u64();
    rng
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) #[test] fn $name:ident $args:tt $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__prop_bind!{ __rng $args }
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident ()) => {};
    ($rng:ident ($arg:ident in $strat:expr)) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident ($arg:ident in $strat:expr, $($rest:tt)*)) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__prop_bind!{ $rng ($($rest)*) }
    };
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, u64)> {
        (-1.0f64..1.0, 0u64..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_hold(x in -5.0f64..5.0, n in 1usize..8) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..8).contains(&n));
        }

        #[test]
        fn vecs_have_sized_lengths(
            v in prop::collection::vec(0i64..100, 2..9),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn tuples_compose(p in pair()) {
            let (x, n) = p;
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::RngCore;
        let mut a = crate::case_rng("t", 0);
        let mut b = crate::case_rng("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::case_rng("t", 1);
        assert_ne!(crate::case_rng("t", 0).next_u64(), c.next_u64());
    }
}
