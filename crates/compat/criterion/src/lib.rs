//! Offline `criterion` shim: a small wall-clock benchmark harness with
//! criterion's macro/group API surface.
//!
//! Behavior depends on how the binary is invoked:
//!
//! * `cargo bench` passes `--bench`, which enables real measurement
//!   (warm-up, then timed samples, mean/min/max report);
//! * `cargo test` runs each benchmark closure once as a smoke test, so
//!   the bench targets stay compiled and exercised without slowing the
//!   test suite.

use std::time::{Duration, Instant};

/// Opaque value sink, preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run every closure once (used under `cargo test`).
    Smoke,
    /// Warm up and measure (used under `cargo bench`).
    Measure,
}

/// Top-level benchmark context.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let mode = self.mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            mode,
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(700),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.run(id.into(), &mut f);
        group.finish();
        self
    }
}

/// A benchmark identifier: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    mode: Mode,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (report already streamed per benchmark).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure a closure. In smoke mode it runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.mode == Mode::Smoke {
            println!("bench {id:<44} ok (smoke)");
            return;
        }
        if self.samples_ns.is_empty() {
            println!("bench {id:<44} (no samples)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "bench {id:<44} time: [{} {} {}] ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| {
                total = total.wrapping_add(n);
            })
        });
        group.finish();
        assert!(total > 0);
    }
}
