//! Offline derive-macro shim for the vendored `serde` facade.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal serde-compatible facade (`crates/compat/serde`) whose data
//! model is a JSON `Value` tree. This crate provides the matching
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros, hand-rolled
//! on the bare `proc_macro` API (no `syn`/`quote`).
//!
//! Supported shapes — exactly what the workspace uses:
//!
//! * structs with named fields (plus unit and tuple structs),
//! * enums with unit / tuple / struct variants, externally tagged like
//!   real serde (`"Variant"`, `{"Variant": content}`),
//! * `#[serde(untagged)]` on enums,
//! * `#[serde(default)]` and `#[serde(default = "path")]` on fields.
//!
//! Anything else (generics, lifetimes, other serde attributes) produces
//! a `compile_error!` so misuse is loud rather than silently wrong.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Field-level serde metadata.
#[derive(Default, Clone)]
struct AttrInfo {
    untagged: bool,
    /// `None` = no default; `Some(None)` = `Default::default()`;
    /// `Some(Some(path))` = call `path()`.
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    default: Option<Option<String>>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Data {
    Struct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    untagged: bool,
    data: Data,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut item_attr = AttrInfo::default();
    parse_attrs(&toks, &mut i, &mut item_attr)?;
    skip_visibility(&toks, &mut i);
    let kw = expect_ident(toks.get(i), "`struct` or `enum`")?;
    i += 1;
    let name = expect_ident(toks.get(i), "type name")?;
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim: generic type `{name}` is not supported"
            ));
        }
    }
    let data = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(parse_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Vec::new()),
            _ => return Err(format!("serde shim: malformed struct `{name}`")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("serde shim: malformed enum `{name}`")),
        },
        other => return Err(format!("serde shim: cannot derive for item kind `{other}`")),
    };
    Ok(Item {
        name,
        untagged: item_attr.untagged,
        data,
    })
}

fn parse_attrs(toks: &[TokenTree], i: &mut usize, out: &mut AttrInfo) -> Result<(), String> {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                match toks.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        scan_attr_group(g, out)?;
                        *i += 1;
                    }
                    _ => return Err("serde shim: malformed attribute".into()),
                }
            }
            _ => return Ok(()),
        }
    }
}

fn scan_attr_group(g: &Group, out: &mut AttrInfo) -> Result<(), String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) = (toks.first(), toks.get(1))
    else {
        return Ok(()); // doc comments, other attrs: ignore
    };
    if id.to_string() != "serde" || args.delimiter() != Delimiter::Parenthesis {
        return Ok(());
    }
    for entry in split_top_level(args.stream()) {
        if entry.is_empty() {
            continue;
        }
        let key = match &entry[0] {
            TokenTree::Ident(k) => k.to_string(),
            other => {
                return Err(format!(
                    "serde shim: unexpected token `{other}` in #[serde(...)]"
                ))
            }
        };
        match key.as_str() {
            "untagged" => out.untagged = true,
            "default" => {
                if entry.len() == 1 {
                    out.default = Some(None);
                } else if entry.len() == 3 {
                    let lit = entry[2].to_string();
                    let path = lit.trim_matches('"').to_string();
                    out.default = Some(Some(path));
                } else {
                    return Err("serde shim: malformed #[serde(default ...)]".into());
                }
            }
            other => return Err(format!("serde shim: unsupported serde attribute `{other}`")),
        }
    }
    Ok(())
}

fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => out.push(Vec::new()),
            _ => out.last_mut().unwrap().push(t),
        }
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(t: Option<&TokenTree>, what: &str) -> Result<String, String> {
    match t {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("serde shim: expected {what}, found {other:?}")),
    }
}

/// Parse `name: Type, ...` (named fields of a struct or struct variant).
fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut attr = AttrInfo::default();
        parse_attrs(&toks, &mut i, &mut attr)?;
        skip_visibility(&toks, &mut i);
        let name = expect_ident(toks.get(i), "field name")?;
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde shim: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&toks, &mut i);
        if i < toks.len() {
            i += 1; // the separating comma
        }
        fields.push(Field {
            name,
            default: attr.default,
        });
    }
    Ok(fields)
}

/// Advance past one type, stopping at a top-level `,` (angle-bracket aware;
/// parenthesized/bracketed sub-trees are single opaque tokens already).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i64;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let parts = split_type_list(stream);
    parts.len()
}

fn split_type_list(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i64;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(t);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out.retain(|p| !p.is_empty());
    out
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let mut attr = AttrInfo::default();
        parse_attrs(&toks, &mut i, &mut attr)?;
        let name = expect_ident(toks.get(i), "variant name")?;
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(parse_fields(g.stream())?);
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(fields) => ser_named_fields_expr(fields, "self."),
        Data::TupleStruct(n) => ser_tuple_expr(*n, "self."),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&ser_variant_arm(name, v, item.untagged));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `{prefix}{field}` access for each named field, packed into an Object.
fn ser_named_fields_expr(fields: &[Field], prefix: &str) -> String {
    let mut pushes = String::new();
    for f in fields {
        let fname = &f.name;
        pushes.push_str(&format!(
            "__fields.push((\"{fname}\".to_string(), \
             ::serde::Serialize::serialize(&{prefix}{fname})));\n"
        ));
    }
    format!(
        "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields) }}"
    )
}

fn ser_tuple_expr(n: usize, prefix: &str) -> String {
    if n == 1 {
        return format!("::serde::Serialize::serialize(&{prefix}0)");
    }
    let items: Vec<String> = (0..n)
        .map(|k| format!("::serde::Serialize::serialize(&{prefix}{k})"))
        .collect();
    format!("::serde::Value::Array(vec![{}])", items.join(", "))
}

fn ser_variant_arm(ty: &str, v: &Variant, untagged: bool) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            let val = if untagged {
                "::serde::Value::Null".to_string()
            } else {
                format!("::serde::Value::String(\"{vn}\".to_string())")
            };
            format!("{ty}::{vn} => {val},\n")
        }
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let content = if *n == 1 {
                "::serde::Serialize::serialize(__f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            let val = if untagged {
                content
            } else {
                format!("::serde::Value::Object(vec![(\"{vn}\".to_string(), {content})])")
            };
            format!("{ty}::{vn}({}) => {val},\n", binds.join(", "))
        }
        VariantKind::Struct(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let content = ser_named_fields_expr(fields, "*");
            let val = if untagged {
                content
            } else {
                format!("::serde::Value::Object(vec![(\"{vn}\".to_string(), {content})])")
            };
            format!("{ty}::{vn} {{ {} }} => {val},\n", binds.join(", "))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(fields) => {
            let ctor = de_named_fields_ctor(name, fields, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"a map for struct {name}\", __v))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Data::TupleStruct(n) => de_tuple_struct_body(name, *n),
        Data::Enum(variants) => {
            if item.untagged {
                de_untagged_enum_body(name, variants)
            } else {
                de_tagged_enum_body(name, variants)
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Constructor expression `Ty { f: <lookup>, ... }` reading from `obj_var`.
fn de_named_fields_ctor(ctor_path: &str, fields: &[Field], obj_var: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        let missing = match &f.default {
            None => format!(
                "::serde::Deserialize::deserialize(&::serde::Value::Null)\
                 .map_err(|_| ::serde::DeError::missing_field(\"{fname}\", \"{ctor_path}\"))?"
            ),
            Some(None) => "::std::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
        };
        inits.push_str(&format!(
            "{fname}: match ::serde::find_field({obj_var}, \"{fname}\") {{\n\
                 ::std::option::Option::Some(__x) => \
                 ::serde::Deserialize::deserialize(__x)\
                 .map_err(|__e| __e.in_field(\"{fname}\"))?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    format!("{ctor_path} {{ {inits} }}")
}

fn de_tuple_struct_body(name: &str, n: usize) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
        );
    }
    let items: Vec<String> = (0..n)
        .map(|k| format!("::serde::Deserialize::deserialize(&__arr[{k}])?"))
        .collect();
    format!(
        "let __arr = __v.as_array().ok_or_else(|| \
         ::serde::DeError::expected(\"an array for tuple struct {name}\", __v))?;\n\
         if __arr.len() != {n} {{ return ::std::result::Result::Err(\
         ::serde::DeError::new(format!(\"expected {n} elements for {name}, got {{}}\", __arr.len()))); }}\n\
         ::std::result::Result::Ok({name}({}))",
        items.join(", ")
    )
}

fn de_tagged_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut str_arms = String::new();
    for v in variants {
        if matches!(v.kind, VariantKind::Unit) {
            let vn = &v.name;
            str_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            ));
        }
    }
    let mut tag_arms = String::new();
    for v in variants {
        let vn = &v.name;
        let arm = match &v.kind {
            VariantKind::Unit => format!("::std::result::Result::Ok({name}::{vn})"),
            VariantKind::Tuple(1) => format!(
                "::std::result::Result::Ok({name}::{vn}(\
                 ::serde::Deserialize::deserialize(__content)\
                 .map_err(|__e| __e.in_field(\"{vn}\"))?))"
            ),
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::deserialize(&__arr[{k}])?"))
                    .collect();
                format!(
                    "{{ let __arr = __content.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"an array for variant {name}::{vn}\", __content))?;\n\
                     if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::new(format!(\"expected {n} elements for {name}::{vn}, got {{}}\", __arr.len()))); }}\n\
                     ::std::result::Result::Ok({name}::{vn}({})) }}",
                    items.join(", ")
                )
            }
            VariantKind::Struct(fields) => {
                let ctor = de_named_fields_ctor(&format!("{name}::{vn}"), fields, "__o");
                format!(
                    "{{ let __o = __content.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"a map for variant {name}::{vn}\", __content))?;\n\
                     ::std::result::Result::Ok({ctor}) }}"
                )
            }
        };
        tag_arms.push_str(&format!("\"{vn}\" => return {arm},\n"));
    }
    // Forward compatibility: rather than demanding exactly one key, scan
    // the object for the key naming a known variant and ignore any
    // sibling keys — a newer peer can annotate `{"Variant": ...}` with
    // extra metadata without breaking older builds. Two known-variant
    // keys in one map are ambiguous (which did the peer mean?) and are
    // rejected rather than resolved by iteration order. Only when *no*
    // key matches is the first key reported as the unknown variant.
    let known_pat = variants
        .iter()
        .map(|v| format!("\"{}\"", v.name))
        .collect::<Vec<_>>()
        .join(" | ");
    let ambiguity_guard = if variants.is_empty() {
        String::new()
    } else {
        format!(
            "let mut __known = 0usize;\n\
             for (__tag, _) in __obj.iter() {{\n\
                 match __tag.as_str() {{\n\
                     {known_pat} => {{ __known += 1; }}\n\
                     _ => {{}}\n\
                 }}\n\
             }}\n\
             if __known > 1 {{\n\
                 return ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"ambiguous map for enum {name}: {{__known}} variant keys present\")));\n\
             }}\n"
        )
    };
    format!(
        "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
             return match __s {{\n{str_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
             }};\n\
         }}\n\
         if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
             {ambiguity_guard}\
             for (__tag, __content) in __obj.iter() {{\n\
                 let _ = __content;\n\
                 match __tag.as_str() {{\n{tag_arms}\
                     _ => {{}}\n\
                 }}\n\
             }}\n\
             if let ::std::option::Option::Some((__tag, _)) = __obj.first() {{\n\
                 return ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__tag, \"{name}\"));\n\
             }}\n\
         }}\n\
         ::std::result::Result::Err(::serde::DeError::expected(\
         \"a string or tagged map for enum {name}\", __v))"
    )
}

fn de_untagged_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut attempts = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => attempts.push_str(&format!(
                "if __v.is_null() {{ return ::std::result::Result::Ok({name}::{vn}); }}\n"
            )),
            VariantKind::Tuple(1) => attempts.push_str(&format!(
                "if let ::std::result::Result::Ok(__x) = \
                 ::serde::Deserialize::deserialize(__v) \
                 {{ return ::std::result::Result::Ok({name}::{vn}(__x)); }}\n"
            )),
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::deserialize(&__arr[{k}])?"))
                    .collect();
                attempts.push_str(&format!(
                    "if let ::std::result::Result::Ok(__x) = \
                     (|| -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::DeError::new(\"not an array\".to_string()))?;\n\
                         if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::new(\"wrong arity\".to_string())); }}\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n\
                     }})() {{ return ::std::result::Result::Ok(__x); }}\n",
                    items.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let ctor = de_named_fields_ctor(&format!("{name}::{vn}"), fields, "__o");
                attempts.push_str(&format!(
                    "if let ::std::result::Result::Ok(__x) = \
                     (|| -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         let __o = __v.as_object().ok_or_else(|| \
                         ::serde::DeError::new(\"not a map\".to_string()))?;\n\
                         ::std::result::Result::Ok({ctor})\n\
                     }})() {{ return ::std::result::Result::Ok(__x); }}\n"
                ));
            }
        }
    }
    format!(
        "{attempts}\
         ::std::result::Result::Err(::serde::DeError::expected(\
         \"a value matching some variant of untagged enum {name}\", __v))"
    )
}
