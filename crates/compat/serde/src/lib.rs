//! Offline `serde` facade.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal serde replacement. Instead of real serde's
//! serializer/deserializer visitor architecture, this facade round-trips
//! every type through a JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`],
//! * [`Deserialize`] rebuilds a type from a [`Value`],
//! * the sibling `serde_json` shim turns [`Value`] into JSON text and back.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) come from the
//! vendored `serde_derive` proc-macro crate and follow real serde's wire
//! conventions: structs are maps, enums are externally tagged
//! (`"Variant"` / `{"Variant": content}`), `#[serde(untagged)]` and
//! `#[serde(default)]` behave as in serde proper.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the facade's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered (stable output, linear lookup).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Any-number view, coerced to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view (floats are rejected, matching serde_json).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::I64(_) | Value::U64(_) => "an integer",
            Value::F64(_) => "a float",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "a map",
        }
    }
}

/// Ordered-object field lookup used by generated `Deserialize` impls.
pub fn find_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a message plus a reverse field path.
#[derive(Clone, Debug)]
pub struct DeError {
    message: String,
    path: Vec<String>,
}

impl DeError {
    /// A bare error message.
    pub fn new(message: String) -> DeError {
        DeError {
            message,
            path: Vec::new(),
        }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError::new(format!("expected {what}, found {}", got.type_name()))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError::new(format!("missing field `{field}` for {ty}"))
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> DeError {
        DeError::new(format!("unknown variant `{variant}` of {ty}"))
    }

    /// Push a field onto the error path (innermost first).
    pub fn in_field(mut self, field: &str) -> DeError {
        self.path.push(field.to_string());
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            return f.write_str(&self.message);
        }
        let mut path: Vec<&str> = self.path.iter().map(String::as_str).collect();
        path.reverse();
        write!(f, "{}: {}", path.join("."), self.message)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the facade's [`Value`] data model.
pub trait Serialize {
    /// Produce the value tree.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from the facade's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------ primitives

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("a boolean", v))
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let x = v.as_i64().ok_or_else(|| DeError::expected("an integer", v))?;
                <$t>::try_from(x).map_err(|_| {
                    DeError::new(format!("integer {x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let x = v.as_u64().ok_or_else(|| {
                    DeError::expected("a non-negative integer", v)
                })?;
                <$t>::try_from(x).map_err(|_| {
                    DeError::new(format!("integer {x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        // `null` maps to NaN: non-finite floats serialize as null (JSON
        // has no NaN/inf literals), so this keeps such payloads readable.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        // Intentionally leaks the parsed string: this impl exists only
        // for `&'static str` fields in static instrument tables (study
        // questionnaires), which deserialize a handful of times per
        // process at most.
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("a string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected one character, got {s:?}"))),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected a {N}-element array, got {got}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::expected("an array", v))?;
        arr.iter().map(Deserialize::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            return Ok(None);
        }
        T::deserialize(v).map(Some)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
                let n = [$($idx),+].len();
                if arr.len() != n {
                    return Err(DeError::new(format!(
                        "expected a {n}-element array, got {}", arr.len()
                    )));
                }
                Ok(($($t::deserialize(&arr[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: std::fmt::Display,
    V: Serialize,
{
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("a map", v))?;
        obj.iter()
            .map(|(k, x)| Ok((k.clone(), V::deserialize(x)?)))
            .collect()
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: std::fmt::Display + Ord,
    V: Serialize,
{
    fn serialize(&self) -> Value {
        // Sort keys so hash-map iteration order can't leak into payloads.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("a map", v))?;
        obj.iter()
            .map(|(k, x)| Ok((k.clone(), V::deserialize(x)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(u64::deserialize(&7u64.serialize()).unwrap(), 7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
    }

    #[test]
    fn integer_cross_width() {
        // u64 payloads feed i64 fields and vice versa when in range.
        assert_eq!(i64::deserialize(&Value::U64(5)).unwrap(), 5);
        assert_eq!(u64::deserialize(&Value::I64(5)).unwrap(), 5);
        assert!(u64::deserialize(&Value::I64(-1)).is_err());
        assert!(
            i64::deserialize(&Value::F64(5.0)).is_err(),
            "no float truncation"
        );
    }

    #[test]
    fn float_accepts_integers_and_null() {
        assert_eq!(f64::deserialize(&Value::I64(3)).unwrap(), 3.0);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
        assert!(f64::deserialize(&Value::Bool(true)).is_err());
    }

    #[test]
    fn options_and_vecs() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize(&Value::I64(4)).unwrap(), Some(4));
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
    }

    #[test]
    fn tuples() {
        let t = ("a".to_string(), 2u64);
        assert_eq!(<(String, u64)>::deserialize(&t.serialize()).unwrap(), t);
        assert!(<(String, u64)>::deserialize(&Value::Array(vec![])).is_err());
    }

    #[test]
    fn error_paths_render() {
        let e = DeError::expected("a map", &Value::I64(1))
            .in_field("inner")
            .in_field("outer");
        assert_eq!(
            e.to_string(),
            "outer.inner: expected a map, found an integer"
        );
    }
}
