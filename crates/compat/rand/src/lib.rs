//! Offline `rand` shim: the subset of the rand 0.8 API the workspace
//! uses, backed by a deterministic xoshiro256++ generator.
//!
//! Everything is seeded explicitly (`SeedableRng::seed_from_u64`); there
//! is deliberately no entropy source, so runs are reproducible by
//! construction.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the "standard" distribution of `T` (uniform `[0, 1)`
    /// for floats, uniform over all values for integers/bools).
    fn gen<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range. Panics on an empty range, like rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Explicit deterministic seeding.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the standard distribution.
pub trait StandardDist: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDist for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardDist for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardDist for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value; panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Lemire-style unbiased-enough draw in `[0, span)`; modulo bias is
/// negligible for the spans this workspace uses but we reject anyway.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width range: any word is uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_impls!(usize, u64, u32, i64, i32, i16, u16, i8, u8);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice shuffling and choosing.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// rand's `SliceRandom`, reduced to what the workspace calls.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
        use super::RngCore;
        let _ = &mut a as &mut dyn RngCore;
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(0u64..=0);
            assert_eq!(z, 0);
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
