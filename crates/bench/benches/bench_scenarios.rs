//! Bulk scenario pricing: clone-per-scenario vs copy-on-write overlay
//! at 10 / 100 / 1000 scenarios on the marketing dataset.
//!
//! The clone path is the seed-era design: every scenario copies the
//! whole training matrix and predicts row by row. The overlay path is
//! the columnar engine: perturbations compiled once per scenario, only
//! the perturbed columns materialized, predictions batched, scenarios
//! scored in parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{
    eval_scenarios_clone_path, eval_scenarios_overlay_path, scenario_grid, train_marketing_model,
    Scale,
};

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let (dataset, model) = train_marketing_model(Scale::Full, 7);
    for n in [10usize, 100, 1000] {
        let specs = scenario_grid(&dataset.drivers, n, 7);
        group.bench_with_input(BenchmarkId::new("clone_path", n), &specs, |b, specs| {
            b.iter(|| eval_scenarios_clone_path(&model, specs))
        });
        group.bench_with_input(
            BenchmarkId::new("overlay_path_1thread", n),
            &specs,
            |b, specs| b.iter(|| eval_scenarios_overlay_path(&model, specs, 1)),
        );
        group.bench_with_input(
            BenchmarkId::new("overlay_path_4threads", n),
            &specs,
            |b, specs| b.iter(|| eval_scenarios_overlay_path(&model, specs, 4)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
