//! Gaussian-process posterior cost vs observation count — why the
//! Bayesian optimizer's call budgets stay small (fit is O(n³),
//! prediction O(n²)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use whatif_optim::gp::{GaussianProcess, Kernel};

fn observations(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>().sin()).collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let kernel = Kernel::Matern52 { length_scale: 0.25 };
    for &n in &[16usize, 64, 128] {
        let (xs, ys) = observations(n, 6, 3);
        group.bench_with_input(
            BenchmarkId::new("fit", n),
            &(xs.clone(), ys.clone()),
            |b, (xs, ys)| b.iter(|| GaussianProcess::fit(kernel, 1e-6, xs, ys).expect("fit")),
        );
        let gp = GaussianProcess::fit(kernel, 1e-6, &xs, &ys).expect("fit");
        let query = vec![0.5; 6];
        group.bench_with_input(BenchmarkId::new("predict", n), &gp, |b, gp| {
            b.iter(|| gp.predict(&query).expect("predict"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gp);
criterion_main!(benches);
