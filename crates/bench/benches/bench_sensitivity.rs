//! Full sensitivity-analysis latency vs dataset size: perturb + rescore
//! + compare, and the per-driver comparison sweep (Figure 2 H).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{train_deal_model, Scale};
use whatif_core::perturbation::{Perturbation, PerturbationSet};

fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (label, scale) in [("quick_320", Scale::Quick), ("full_1480", Scale::Full)] {
        let (_, model) = train_deal_model(scale, 7);
        let set =
            PerturbationSet::new(vec![Perturbation::percentage("Open Marketing Email", 40.0)]);
        group.bench_with_input(BenchmarkId::new("single", label), &model, |b, m| {
            b.iter(|| m.sensitivity(&set).expect("sensitivity"))
        });
        group.bench_with_input(BenchmarkId::new("per_data", label), &model, |b, m| {
            b.iter(|| m.per_data_sensitivity(0, &set).expect("per data"))
        });
        group.bench_with_input(BenchmarkId::new("comparison_5pt", label), &model, |b, m| {
            b.iter(|| {
                m.comparison_analysis(&[-40.0, -20.0, 0.0, 20.0, 40.0])
                    .expect("sweep")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
