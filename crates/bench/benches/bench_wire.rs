//! The wire-protocol workloads. The headline numbers are whole
//! exchanges over real loopback TCP — v2 JSON lines vs v3 columnar
//! frames, plain and compressed — so this bench first runs
//! `experiments::wire_bench` and emits the machine-readable
//! `BENCH_wire.json`, then measures the v3 building blocks under
//! criterion: columnar grid encode/decode and the in-tree LZ4-style
//! compressor on a realistic KPI column.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{wire_bench, write_wire_bench_json, Scale};
use whatif_wire::{
    lz4, Compression, DriverColumn, FrameType, PerturbKind, RequestBody, ScenarioGridRequest,
    WireRequest,
};

/// A 10k-scenario columnar request over four drivers — the bench's
/// mid-size grid, built without a server.
fn sample_grid(n: usize) -> WireRequest {
    let drivers = ["Open Marketing Email", "Renewal", "Call", "Chat"];
    let columns = drivers
        .iter()
        .enumerate()
        .map(|(d, name)| DriverColumn {
            name: (*name).to_string(),
            kind: PerturbKind::Percentage,
            values: (0..n)
                .map(|i| {
                    if i % drivers.len() == d {
                        ((i * 37) % 151) as f64 - 50.0
                    } else {
                        f64::NAN
                    }
                })
                .collect(),
        })
        .collect();
    WireRequest {
        id: 1,
        body: RequestBody::Scenarios(ScenarioGridRequest {
            session: 1,
            n_scenarios: n as u32,
            record: false,
            n_threads: 0,
            names: Vec::new(),
            columns,
        }),
        deadline_ms: 0,
    }
}

fn bench_wire(c: &mut Criterion) {
    // Emit the report first: `cargo bench -p whatif-bench --bench
    // bench_wire` always leaves BENCH_wire.json behind.
    let report = wire_bench(Scale::Quick, 7);
    write_wire_bench_json("BENCH_wire.json", &report).expect("write BENCH_wire.json");
    for g in &report.grids {
        println!(
            "BENCH_wire.json: {} scenarios — v2 {:.1} ms / {} B, v3 plain {:.1} ms / {} B, \
             v3 lz4 {:.1} ms / {} B ({:.1}x wall, {:.1}x bytes)",
            g.n_scenarios,
            g.v2_json_ms,
            g.v2_json_bytes,
            g.v3_plain_ms,
            g.v3_plain_bytes,
            g.v3_lz4_ms,
            g.v3_lz4_bytes,
            g.wall_speedup,
            g.bytes_reduction,
        );
    }

    let mut group = c.benchmark_group("wire");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    const N: usize = 10_000;
    let request = sample_grid(N);
    let payload = request.encode();

    group.bench_function("grid_10k_encode", |b| b.iter(|| request.encode()));
    group.bench_function("grid_10k_decode", |b| {
        b.iter(|| WireRequest::decode(&payload).expect("round trip"))
    });
    group.bench_function("grid_10k_frame_plain", |b| {
        b.iter(|| {
            whatif_wire::frame::encode_frame(FrameType::Request, &payload, Compression::None)
                .expect("fits")
        })
    });
    group.bench_function("grid_10k_frame_lz4", |b| {
        b.iter(|| {
            whatif_wire::frame::encode_frame(FrameType::Request, &payload, Compression::Lz4Like)
                .expect("fits")
        })
    });

    // A realistic KPI column: smooth probabilities quantized by a small
    // forest, i.e. few distinct values — the compressor's bread and
    // butter on the reply path.
    let kpi: Vec<u8> = (0..N)
        .flat_map(|i| (((i * 13) % 32) as f64 / 32.0).to_bits().to_le_bytes())
        .collect();
    let packed = lz4::compress(&kpi);
    println!(
        "kpi column 10k: {} B -> {} B ({:.1}x)",
        kpi.len(),
        packed.len(),
        kpi.len() as f64 / packed.len() as f64
    );
    group.bench_function("kpi_10k_compress", |b| b.iter(|| lz4::compress(&kpi)));
    group.bench_function("kpi_10k_decompress", |b| {
        b.iter(|| lz4::decompress(&packed, kpi.len()).expect("round trip"))
    });

    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
