//! Model-fit latency: interpretable linear/logistic models vs random
//! forests — the cost side of the paper's §5 interpretability-vs-
//! accuracy trade-off — plus the old-vs-new forest-trainer comparison
//! (seed gather-and-sort vs presorted split finding), whose
//! machine-readable report lands in `BENCH_train.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{train_bench, write_train_bench_json, Scale};
use whatif_core::model_backend::{ModelConfig, ModelKind};
use whatif_core::session::Session;
use whatif_datagen::{deal_closing, make_classification, make_regression};
use whatif_learn::forest::ForestConfig;
use whatif_learn::tree::TreeConfig;
use whatif_learn::{Classifier as _, RandomForestClassifier, Trainer};

fn config(kind: ModelKind, n_trees: usize) -> ModelConfig {
    ModelConfig {
        kind,
        n_trees,
        holdout_fraction: 0.0, // isolate the fit cost
        ..ModelConfig::default()
    }
}

/// Old-vs-new forest trainer on the deal-closing data: the seed per-node
/// gather-and-sort path against the presorted path, which must be
/// bit-identical (pinned by `tests/forest_equivalence.rs`) and faster.
fn bench_trainer_paths(c: &mut Criterion) {
    // Emit the report first: `cargo bench -p whatif-bench --bench
    // bench_train` always leaves BENCH_train.json behind.
    let report = train_bench(Scale::Quick, 7);
    write_train_bench_json("BENCH_train.json", &report).expect("write BENCH_train.json");
    println!(
        "BENCH_train.json: classifier {:.2}x ({:.1} ms -> {:.1} ms), \
         regressor {:.2}x ({:.1} ms -> {:.1} ms)",
        report.classifier_speedup,
        report.classifier_reference_ms,
        report.classifier_presorted_ms,
        report.regressor_speedup,
        report.regressor_reference_ms,
        report.regressor_presorted_ms,
    );
    for row in &report.binned {
        println!(
            "  binned {}x{}: {:.2}x ({:.1} ms presorted -> {:.1} ms binned, {} trees)",
            row.n_rows, row.n_features, row.speedup, row.presorted_ms, row.binned_ms, row.n_trees,
        );
    }

    let dataset = deal_closing(600, 7);
    let session = Session::new(dataset.frame.clone())
        .with_kpi(&dataset.kpi)
        .expect("kpi");
    let model = session
        .train(&ModelConfig {
            kind: ModelKind::RandomForest,
            n_trees: 1, // only the matrix/labels are needed here
            holdout_fraction: 0.0,
            ..ModelConfig::default()
        })
        .expect("fit");
    let x = model.matrix().clone();
    let labels: Vec<u8> = model
        .targets()
        .iter()
        .map(|&v| u8::from(v >= 0.5))
        .collect();
    let config = ForestConfig {
        n_trees: 24,
        tree: TreeConfig {
            max_depth: 8,
            ..TreeConfig::default()
        },
        seed: 7,
        n_threads: 4,
        ..ForestConfig::default()
    };

    let mut group = c.benchmark_group("train_forest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("reference_sort", |b| {
        b.iter(|| {
            let mut f = RandomForestClassifier::new(config.clone());
            f.fit_reference(&x, &labels).expect("fit");
            f
        })
    });
    group.bench_function("presorted", |b| {
        b.iter(|| {
            let mut f = RandomForestClassifier::new(config.clone());
            f.fit(&x, &labels).expect("fit");
            f
        })
    });
    group.bench_function("binned", |b| {
        let config = ForestConfig {
            trainer: Trainer::Binned,
            ..config.clone()
        };
        b.iter(|| {
            let mut f = RandomForestClassifier::new(config.clone());
            f.fit(&x, &labels).expect("fit");
            f
        })
    });
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[500usize, 2_000] {
        let reg = make_regression(n, 12, 6, 0.5, 3);
        let reg_session = Session::new(reg.frame.clone())
            .with_kpi(&reg.kpi)
            .expect("kpi");
        group.bench_with_input(BenchmarkId::new("linear", n), &reg_session, |b, s| {
            let cfg = config(ModelKind::Linear, 0);
            b.iter(|| s.train(&cfg).expect("fit"))
        });
        group.bench_with_input(
            BenchmarkId::new("forest_regressor_40", n),
            &reg_session,
            |b, s| {
                let cfg = config(ModelKind::RandomForest, 40);
                b.iter(|| s.train(&cfg).expect("fit"))
            },
        );
        group.bench_with_input(BenchmarkId::new("gbdt_40", n), &reg_session, |b, s| {
            let cfg = config(ModelKind::Gbdt, 40);
            b.iter(|| s.train(&cfg).expect("fit"))
        });

        let clf = make_classification(n, 12, 6, 0.5, 3);
        let clf_session = Session::new(clf.frame.clone())
            .with_kpi(&clf.kpi)
            .expect("kpi");
        group.bench_with_input(BenchmarkId::new("logistic", n), &clf_session, |b, s| {
            let cfg = config(ModelKind::Logistic, 0);
            b.iter(|| s.train(&cfg).expect("fit"))
        });
        group.bench_with_input(
            BenchmarkId::new("forest_classifier_40", n),
            &clf_session,
            |b, s| {
                let cfg = config(ModelKind::RandomForest, 40);
                b.iter(|| s.train(&cfg).expect("fit"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trainer_paths, bench_train);
criterion_main!(benches);
