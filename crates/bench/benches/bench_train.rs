//! Model-fit latency: interpretable linear/logistic models vs random
//! forests — the cost side of the paper's §5 interpretability-vs-
//! accuracy trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_core::model_backend::{ModelConfig, ModelKind};
use whatif_core::session::Session;
use whatif_datagen::{make_classification, make_regression};

fn config(kind: ModelKind, n_trees: usize) -> ModelConfig {
    ModelConfig {
        kind,
        n_trees,
        holdout_fraction: 0.0, // isolate the fit cost
        ..ModelConfig::default()
    }
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[500usize, 2_000] {
        let reg = make_regression(n, 12, 6, 0.5, 3);
        let reg_session = Session::new(reg.frame.clone())
            .with_kpi(&reg.kpi)
            .expect("kpi");
        group.bench_with_input(BenchmarkId::new("linear", n), &reg_session, |b, s| {
            let cfg = config(ModelKind::Linear, 0);
            b.iter(|| s.train(&cfg).expect("fit"))
        });
        group.bench_with_input(
            BenchmarkId::new("forest_regressor_40", n),
            &reg_session,
            |b, s| {
                let cfg = config(ModelKind::RandomForest, 40);
                b.iter(|| s.train(&cfg).expect("fit"))
            },
        );

        let clf = make_classification(n, 12, 6, 0.5, 3);
        let clf_session = Session::new(clf.frame.clone())
            .with_kpi(&clf.kpi)
            .expect("kpi");
        group.bench_with_input(BenchmarkId::new("logistic", n), &clf_session, |b, s| {
            let cfg = config(ModelKind::Logistic, 0);
            b.iter(|| s.train(&cfg).expect("fit"))
        });
        group.bench_with_input(
            BenchmarkId::new("forest_classifier_40", n),
            &clf_session,
            |b, s| {
                let cfg = config(ModelKind::RandomForest, 40);
                b.iter(|| s.train(&cfg).expect("fit"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
