//! The interactive slider loop, cache-off vs cache-on: repeated
//! sensitivity sweeps plus goal seeks on the marketing dataset (see
//! `experiments::slider_loop`). Real what-if sessions revisit the same
//! slider stops constantly; with the content-addressed cache warm,
//! each revisit is a fingerprint hash plus one sharded-map lookup
//! instead of a full batched prediction pass — the acceptance bar for
//! this workload is a ≥ 5× speedup, and in practice it is orders of
//! magnitude.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{slider_loop, train_deal_model, train_marketing_model, Scale};
use whatif_core::model_backend::TrainedModel;
use whatif_core::EvalCache;

fn bench_model(c: &mut Criterion, label: &str, model: &TrainedModel) {
    let mut group = c.benchmark_group(format!("cache/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Cache disabled: every lap pays full evaluation.
    group.bench_function("slider_lap_uncached", |b| {
        b.iter(|| slider_loop(model, None, 1))
    });

    // Cache enabled, steady state: the cache persists across
    // iterations, so after the warm-up lap every evaluation hits.
    let cache = EvalCache::default();
    slider_loop(model, Some(&cache), 1); // warm explicitly
    group.bench_function("slider_lap_cached_warm", |b| {
        b.iter(|| slider_loop(model, Some(&cache), 1))
    });

    // Cold start each iteration: fingerprint + insert overhead on top
    // of full evaluation — the worst case stays close to uncached.
    group.bench_function("slider_lap_cached_cold", |b| {
        b.iter(|| {
            let cold = EvalCache::default();
            slider_loop(model, Some(&cold), 1)
        })
    });

    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    // The paper's Figure 2 workload: the deal-closing random forest —
    // the model family where an uncached slider stop costs a full
    // forest × dataset batch pass. Quick scale keeps the bench (and its
    // smoke run under `cargo test`) snappy; the cache-on/cache-off gap
    // only widens at Full scale.
    let (_, deal) = train_deal_model(Scale::Quick, 7);
    bench_model(c, "deal_forest", &deal);

    // The cheapest model in the system: even a 360-row linear predict
    // loses to a hash + lookup.
    let (_, marketing) = train_marketing_model(Scale::Full, 7);
    bench_model(c, "marketing_linear", &marketing);
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
