//! Cost of the robustness machinery: retraining under a new seed and
//! verifying importances (the §5 "multiplicity of models" concern turned
//! into a measurable loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{train_deal_model, Scale};
use whatif_core::model_backend::ModelConfig;
use whatif_core::session::Session;
use whatif_datagen::deal_closing;
use whatif_learn::shapley::ShapleyConfig;

fn bench_robustness(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let dataset = deal_closing(320, 7);
    let refs = dataset.driver_refs();
    let session = Session::new(dataset.frame.clone())
        .with_kpi(&dataset.kpi)
        .expect("kpi")
        .with_drivers(&refs)
        .expect("drivers");
    let cfg = ModelConfig {
        n_trees: 24,
        max_depth: 8,
        ..ModelConfig::default()
    };

    group.bench_function("retrain_and_rank", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut c = cfg.clone();
            c.seed = seed;
            let model = session.train(&c).expect("fit");
            model.driver_importance().expect("importance")
        })
    });

    let (_, model) = train_deal_model(Scale::Quick, 7);
    group.bench_function("verify_importance", |b| {
        let shap = ShapleyConfig {
            n_permutations: 8,
            n_rows: 16,
            seed: 1,
        };
        b.iter(|| model.verify_importance(&shap).expect("verify"))
    });
    group.finish();
}

criterion_group!(benches, bench_robustness);
criterion_main!(benches);
