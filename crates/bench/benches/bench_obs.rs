//! Observability overhead. The headline number is
//! `experiments::obs_bench` — instrumented-vs-uninstrumented dispatch
//! on the cached slider-loop workload, flipped via the `whatif_obs`
//! kill switch on one binary — emitted as the machine-readable
//! `BENCH_obs.json`. Criterion then measures the building blocks in
//! isolation: a counter bump, a histogram record, a full span with
//! stage guards, and a structured log record into the ring.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{obs_bench, write_obs_bench_json, Scale};
use whatif_obs::{Histogram, Level, MetricsRegistry, Record, Stage};

fn bench_obs(c: &mut Criterion) {
    // Emit the report first: `cargo bench -p whatif-bench --bench
    // bench_obs` always leaves BENCH_obs.json behind.
    let report = obs_bench(Scale::Quick, 7);
    write_obs_bench_json("BENCH_obs.json", &report).expect("write BENCH_obs.json");
    println!(
        "BENCH_obs.json: {} reqs x {} reps, hit rate {:.3} — envelope {:.2} -> {:.2} us/req \
         ({:+.2}%), json line {:.2} -> {:.2} us/req ({:+.2}%)",
        report.requests,
        report.reps,
        report.cache_hit_rate,
        report.engine_off_us_per_req,
        report.engine_on_us_per_req,
        report.engine_overhead_pct,
        report.json_off_us_per_req,
        report.json_on_us_per_req,
        report.json_overhead_pct,
    );

    let mut group = c.benchmark_group("obs");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench.count");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let hist = Histogram::new();
    let mut us = 1u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            us = us.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record_us(us % 1_000_000);
        })
    });

    group.bench_function("span_with_stages", |b| {
        b.iter(|| {
            whatif_obs::span::begin(None);
            whatif_obs::span::set_kind(3);
            {
                let _g = whatif_obs::span::stage(Stage::Decode);
            }
            {
                let _g = whatif_obs::span::stage(Stage::Predict);
            }
            {
                let _g = whatif_obs::span::stage(Stage::Encode);
            }
            criterion::black_box(whatif_obs::span::finish())
        })
    });

    group.bench_function("log_record_to_ring", |b| {
        let logger = whatif_obs::logger();
        b.iter(|| {
            logger.emit(
                Record::new(Level::Debug, "bench_event")
                    .str("request", "sensitivity_view")
                    .u64("total_us", 1234)
                    .f64("ratio", 0.5),
            )
        })
    });
    logger_cleanup();

    group.finish();
}

/// Empty the global ring so the bench leaves no residue for anything
/// else running in this process.
fn logger_cleanup() {
    whatif_obs::logger().clear_ring();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
