//! End-to-end view-request latency through the JSON dispatcher — the
//! "fast real-time response" budget the paper's §5 worries about.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use whatif_core::model_backend::ModelConfig;
use whatif_core::perturbation::Perturbation;
use whatif_server::{Envelope, Request, Response, ServerState, UseCase};

fn prepared_state() -> (ServerState, u64) {
    let state = ServerState::new();
    let session = match state.handle(Request::LoadUseCase {
        use_case: UseCase::DealClosing,
        n_rows: Some(320),
        seed: Some(7),
    }) {
        Response::SessionCreated { session, .. } => session,
        other => panic!("unexpected: {other:?}"),
    };
    state.handle(Request::SelectKpi {
        session,
        kpi: "Deal Closed?".into(),
    });
    let cfg = ModelConfig {
        n_trees: 24,
        max_depth: 8,
        ..ModelConfig::default()
    };
    assert!(!state
        .handle(Request::Train {
            session,
            config: Some(cfg),
        })
        .is_error());
    (state, session)
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (state, session) = prepared_state();

    group.bench_function("table_view_50", |b| {
        b.iter(|| {
            state.handle(Request::TableView {
                session,
                max_rows: 50,
            })
        })
    });
    group.bench_function("importance_view", |b| {
        b.iter(|| {
            state.handle(Request::DriverImportanceView {
                session,
                verify: false,
            })
        })
    });
    group.bench_function("sensitivity_view", |b| {
        b.iter(|| {
            state.handle(Request::SensitivityView {
                session,
                perturbations: vec![Perturbation::percentage("Open Marketing Email", 40.0)],
            })
        })
    });
    group.bench_function("sensitivity_json_roundtrip", |b| {
        // Include the JSON encode/decode the wire adds.
        b.iter(|| {
            let resp = state.handle(Request::SensitivityView {
                session,
                perturbations: vec![Perturbation::percentage("Open Marketing Email", 40.0)],
            });
            let json = serde_json::to_string(&resp).expect("encode");
            serde_json::from_str::<Response>(&json).expect("decode")
        })
    });

    // v1 vs v2 pipelining: eight sensitivity views dispatched as eight
    // wire lines versus one Batch envelope, both through the full
    // parse → dispatch → encode path the TCP layer uses.
    const PIPELINE_DEPTH: usize = 8;
    let sensitivity = |session| Request::SensitivityView {
        session,
        perturbations: vec![Perturbation::percentage("Open Marketing Email", 40.0)],
    };
    let v1_lines: Vec<String> = (0..PIPELINE_DEPTH)
        .map(|_| serde_json::to_string(&sensitivity(session)).expect("encode"))
        .collect();
    let v2_line = serde_json::to_string(&Envelope::new(
        1,
        Request::Batch((0..PIPELINE_DEPTH).map(|_| sensitivity(session)).collect()),
    ))
    .expect("encode");
    group.bench_function("sensitivity_x8_v1_lines", |b| {
        b.iter(|| {
            for line in &v1_lines {
                let (reply, _) = state.engine().dispatch_line(line);
                assert!(!reply.is_empty());
            }
        })
    });
    group.bench_function("sensitivity_x8_v2_batch", |b| {
        b.iter(|| {
            let (reply, _) = state.engine().dispatch_line(&v2_line);
            assert!(!reply.is_empty());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
