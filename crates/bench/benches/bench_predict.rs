//! Prediction latency: the sensitivity-slider hot path. Every slider
//! move re-scores the whole dataset, so full-matrix prediction cost is
//! the interactive budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_core::model_backend::{ModelConfig, ModelKind};
use whatif_core::session::Session;
use whatif_datagen::make_classification;

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &n in &[500usize, 2_000] {
        let data = make_classification(n, 12, 6, 0.5, 3);
        let session = Session::new(data.frame.clone())
            .with_kpi(&data.kpi)
            .expect("kpi");
        let cfg = ModelConfig {
            kind: ModelKind::RandomForest,
            n_trees: 40,
            holdout_fraction: 0.0,
            ..ModelConfig::default()
        };
        let forest = session.train(&cfg).expect("fit");
        let cfg = ModelConfig {
            kind: ModelKind::Logistic,
            ..cfg
        };
        let logistic = session.train(&cfg).expect("fit");

        let row: Vec<f64> = forest.matrix().row(0).to_vec();
        group.bench_with_input(BenchmarkId::new("forest_row", n), &forest, |b, m| {
            b.iter(|| m.predict_row(&row).expect("predict"))
        });
        group.bench_with_input(BenchmarkId::new("forest_full_kpi", n), &forest, |b, m| {
            b.iter(|| m.kpi_for_matrix(m.matrix()).expect("predict"))
        });
        group.bench_with_input(
            BenchmarkId::new("logistic_full_kpi", n),
            &logistic,
            |b, m| b.iter(|| m.kpi_for_matrix(m.matrix()).expect("predict")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
