//! Prediction latency: the sensitivity-slider hot path. Every slider
//! move re-scores the whole dataset, so full-matrix prediction cost is
//! the interactive budget. Also compares the seed row-major batch path
//! against the tree-major flattened path (bit-identical, pinned by
//! `tests/forest_equivalence.rs`) and emits `BENCH_predict.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{predict_bench, write_predict_bench_json, Scale};
use whatif_core::model_backend::{ModelConfig, ModelKind};
use whatif_core::session::Session;
use whatif_datagen::make_classification;
use whatif_learn::forest::ForestConfig;
use whatif_learn::{Classifier as _, MatrixView, Predictor as _, RandomForestClassifier};

/// Old-vs-new batched forest prediction: row-major per-row tree loops
/// (per-row shape checks) vs tree-major blocked flattened traversal.
fn bench_predict_paths(c: &mut Criterion) {
    // Emit the report first: `cargo bench -p whatif-bench --bench
    // bench_predict` always leaves BENCH_predict.json behind.
    let report = predict_bench(Scale::Quick, 7);
    write_predict_bench_json("BENCH_predict.json", &report).expect("write BENCH_predict.json");
    println!(
        "BENCH_predict.json: dense {:.2}x ({:.2} ms -> {:.2} ms), \
         overlay {:.2}x ({:.2} ms -> {:.2} ms)",
        report.dense_speedup,
        report.dense_rowmajor_ms,
        report.dense_treemajor_ms,
        report.overlay_speedup,
        report.overlay_rowmajor_ms,
        report.overlay_treemajor_ms,
    );

    let data = make_classification(2_000, 12, 6, 0.5, 3);
    let session = Session::new(data.frame.clone())
        .with_kpi(&data.kpi)
        .expect("kpi");
    let cfg = ModelConfig {
        kind: ModelKind::RandomForest,
        n_trees: 1, // only the matrix/labels are needed here
        holdout_fraction: 0.0,
        ..ModelConfig::default()
    };
    let model = session.train(&cfg).expect("fit");
    let x = model.matrix().clone();
    let labels: Vec<u8> = model
        .targets()
        .iter()
        .map(|&v| u8::from(v >= 0.5))
        .collect();
    let mut forest = RandomForestClassifier::new(ForestConfig {
        n_trees: 40,
        seed: 7,
        n_threads: 1,
        ..ForestConfig::default()
    });
    forest.fit(&x, &labels).expect("fit");
    let mut out = vec![0.0; x.n_rows()];

    let mut group = c.benchmark_group("predict_forest");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("rowmajor_seed", |b| {
        b.iter(|| {
            forest
                .predict_batch_rowmajor(MatrixView::Dense(&x), &mut out)
                .expect("predict")
        })
    });
    group.bench_function("treemajor_flat", |b| {
        b.iter(|| {
            forest
                .predict_batch(MatrixView::Dense(&x), &mut out)
                .expect("predict")
        })
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &n in &[500usize, 2_000] {
        let data = make_classification(n, 12, 6, 0.5, 3);
        let session = Session::new(data.frame.clone())
            .with_kpi(&data.kpi)
            .expect("kpi");
        let cfg = ModelConfig {
            kind: ModelKind::RandomForest,
            n_trees: 40,
            holdout_fraction: 0.0,
            ..ModelConfig::default()
        };
        let forest = session.train(&cfg).expect("fit");
        let cfg = ModelConfig {
            kind: ModelKind::Logistic,
            ..cfg
        };
        let logistic = session.train(&cfg).expect("fit");

        let row: Vec<f64> = forest.matrix().row(0).to_vec();
        group.bench_with_input(BenchmarkId::new("forest_row", n), &forest, |b, m| {
            b.iter(|| m.predict_row(&row).expect("predict"))
        });
        group.bench_with_input(BenchmarkId::new("forest_full_kpi", n), &forest, |b, m| {
            b.iter(|| m.kpi_for_matrix(m.matrix()).expect("predict"))
        });
        group.bench_with_input(
            BenchmarkId::new("logistic_full_kpi", n),
            &logistic,
            |b, m| b.iter(|| m.kpi_for_matrix(m.matrix()).expect("predict")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_predict_paths, bench_predict);
criterion_main!(benches);
