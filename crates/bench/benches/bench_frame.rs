//! Frame-op throughput: filter / group-by / derive on the deal-closing
//! table (the slicing/dicing path under every interactive view).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_datagen::deal_closing;
use whatif_frame::expr::Expr;
use whatif_frame::{AggSpec, Aggregation};

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &n in &[1_000usize, 10_000] {
        let frame = deal_closing(n, 7).frame;
        group.bench_with_input(BenchmarkId::new("filter_expr", n), &frame, |b, f| {
            let predicate = Expr::col("Call").gt(Expr::lit_f64(4.0));
            b.iter(|| f.filter_expr(&predicate).expect("valid predicate"))
        });
        group.bench_with_input(BenchmarkId::new("group_by", n), &frame, |b, f| {
            b.iter(|| {
                f.group_by(
                    &["Account Industry"],
                    &[AggSpec::new("Call", Aggregation::Mean)],
                )
                .expect("valid group by")
            })
        });
        group.bench_with_input(BenchmarkId::new("derive", n), &frame, |b, f| {
            let expr = Expr::col("Call")
                .add(Expr::col("Chat"))
                .gt(Expr::lit_f64(10.0));
            b.iter(|| {
                let mut f2 = f.clone();
                f2.derive("engaged", &expr).expect("valid expr");
                f2
            })
        });
        group.bench_with_input(BenchmarkId::new("numeric_matrix", n), &frame, |b, f| {
            b.iter(|| {
                f.numeric_matrix(&["Call", "Chat", "Demo", "Renewal"])
                    .expect("numeric columns")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frame);
criterion_main!(benches);
