//! The model-store workloads: train-once dedup and lock-free analysis
//! dispatch. The interesting numbers are wall-clock ratios, so this
//! bench first runs `experiments::store_bench` and emits the
//! machine-readable `BENCH_store.json` (train-dedup speedup, concurrent
//! slider-loop latency with dispatch serialized vs lock-free), then
//! measures the store's per-operation costs under criterion: a share is
//! a fingerprint hash plus one sharded-map lookup, so it must sit
//! orders of magnitude below a real training.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{store_bench, write_store_bench_json, Scale};
use whatif_core::model_backend::ModelConfig;
use whatif_core::store::ModelStore;
use whatif_core::Session;
use whatif_datagen::deal_closing;

fn bench_store(c: &mut Criterion) {
    // Emit the report first: `cargo bench -p whatif-bench --bench
    // bench_store` always leaves BENCH_store.json behind.
    let report = store_bench(Scale::Quick, 7);
    write_store_bench_json("BENCH_store.json", &report).expect("write BENCH_store.json");
    println!(
        "BENCH_store.json: train dedup {:.1}x ({:.1} ms -> {:.3} ms/share), \
         dispatch {:.2}x ({:.1} ms locked -> {:.1} ms lock-free)",
        report.train_dedup_speedup,
        report.per_session_train_ms,
        report.share_ms,
        report.dispatch_speedup,
        report.locked_dispatch_ms,
        report.lock_free_dispatch_ms,
    );

    let dataset = deal_closing(600, 7);
    let config = ModelConfig {
        n_trees: 24,
        max_depth: 8,
        ..ModelConfig::default()
    };
    let session = || {
        Session::new(dataset.frame.clone())
            .with_kpi(&dataset.kpi)
            .expect("KPI exists")
    };

    let mut group = c.benchmark_group("store");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // The pre-store cost: every session trains its own forest.
    group.bench_function("train_per_session", |b| {
        b.iter(|| session().train(&config).expect("trains"))
    });

    // The store hit: fingerprint the training request, share the Arc.
    let store = ModelStore::default();
    store.train_or_share(&session(), &config).expect("trains");
    group.bench_function("share_from_store", |b| {
        b.iter(|| {
            let (model, shared) = store.train_or_share(&session(), &config).expect("shares");
            assert!(shared);
            model
        })
    });

    // The key alone: what the dedup decision costs.
    let s = session();
    group.bench_function("train_fingerprint", |b| {
        b.iter(|| s.train_fingerprint(&config).expect("valid"))
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
