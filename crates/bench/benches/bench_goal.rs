//! Goal-inversion wall time per engine at a fixed evaluation budget —
//! the time side of the optimizer comparison (the quality side is
//! `repro opt-compare`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{train_deal_model, Scale};
use whatif_core::goal::{Goal, GoalConfig, OptimizerChoice};

fn bench_goal(c: &mut Criterion) {
    let mut group = c.benchmark_group("goal_inversion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let (_, model) = train_deal_model(Scale::Quick, 7);
    let budget = 32usize;
    let engines = [
        ("bayesian", OptimizerChoice::Bayesian { n_calls: budget }),
        ("random", OptimizerChoice::RandomSearch { n_evals: budget }),
        (
            "nelder_mead",
            OptimizerChoice::NelderMead { max_evals: budget },
        ),
    ];
    for (name, optimizer) in engines {
        group.bench_with_input(BenchmarkId::new(name, budget), &model, |b, m| {
            let mut cfg = GoalConfig::for_goal(Goal::Maximize);
            cfg.optimizer = optimizer;
            b.iter(|| m.goal_inversion(&cfg).expect("inversion"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_goal);
criterion_main!(benches);
