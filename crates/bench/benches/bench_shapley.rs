//! Shapley verification cost vs sample count — the price of the paper's
//! "ensure the model coefficients are not misleading" check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use whatif_bench::experiments::{train_deal_model, Scale};
use whatif_learn::shapley::{global_shapley_importance, shapley_row, ShapleyConfig};

fn bench_shapley(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let (_, model) = train_deal_model(Scale::Quick, 7);
    for &n_perm in &[8usize, 32] {
        let cfg = ShapleyConfig {
            n_permutations: n_perm,
            n_rows: 16,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::new("single_row", n_perm), &model, |b, m| {
            let row = m.matrix().row(0).to_vec();
            b.iter(|| shapley_row(m.predictor(), m.matrix(), &row, &cfg).expect("shapley"))
        });
        group.bench_with_input(
            BenchmarkId::new("global_16_rows", n_perm),
            &model,
            |b, m| {
                b.iter(|| {
                    global_shapley_importance(m.predictor(), m.matrix(), &cfg).expect("shapley")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shapley);
criterion_main!(benches);
