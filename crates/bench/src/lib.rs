//! # whatif-bench
//!
//! The experiment harness of the SystemD reproduction: every table and
//! figure of the paper's evaluation maps to a function in
//! [`experiments`], runnable via the `repro` binary
//! (`cargo run -p whatif-bench --bin repro --release -- all`), plus
//! criterion micro-benchmarks under `benches/`.

pub mod experiments;

pub use experiments::Scale;
