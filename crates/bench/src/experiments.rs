//! One function per paper artifact (see DESIGN.md §4 for the index).
//!
//! Every function returns a structured result whose fields carry both
//! the paper's reported numbers and the reproduction's measured ones, so
//! the `repro` binary, EXPERIMENTS.md, and the integration tests all
//! read from the same source of truth.

use whatif_core::bulk::{ScenarioOutcome, ScenarioSet, ScenarioSpec};
use whatif_core::goal::{Goal, GoalConfig, GoalInversionResult, OptimizerChoice};
use whatif_core::importance::{DriverImportance, VerificationReport};
use whatif_core::model_backend::ModelConfig;
use whatif_core::perturbation::{Perturbation, PerturbationSet};
use whatif_core::sensitivity::{ComparisonCurve, SensitivityResult};
use whatif_core::session::Session;
use whatif_core::{DriverConstraint, TrainedModel};
use whatif_datagen::{deal_closing, marketing_mix, retention, Dataset};
use whatif_learn::shapley::ShapleyConfig;
use whatif_study::simulate::{simulate_rankings, RankingSummary, StudyConfig};
use whatif_study::{figure3, simulate::LikertSummary};

/// Paper constants from the Figure 2 walkthrough (§2).
pub mod paper {
    /// Deal-closing rate on the original data implied by §2 H/I
    /// (43.24 − 1.35 and 90.54 − 48.65 both give 41.89).
    pub const BASE_CLOSE_RATE: f64 = 0.4189;
    /// KPI after the +40 % Open Marketing Email perturbation.
    pub const SENSITIVITY_KPI: f64 = 0.4324;
    /// Uplift of that perturbation.
    pub const SENSITIVITY_UPLIFT: f64 = 0.0135;
    /// Constrained goal inversion optimum (OME ∈ [+40 %, +80 %]).
    pub const CONSTRAINED_KPI: f64 = 0.9054;
    /// Uplift of the constrained optimum.
    pub const CONSTRAINED_UPLIFT: f64 = 0.4865;
    /// Top-3 drivers from §2 E.
    pub const TOP3: [&str; 3] = ["Open Marketing Email", "Renewal", "Call"];
    /// Bottom-3 drivers from §2 E (least important last).
    pub const BOTTOM3: [&str; 3] = ["Meeting", "Initiate New Contact", "LinkedIn Contact"];
}

/// Experiment scale: `Full` reproduces the paper-sized configuration,
/// `Quick` shrinks everything for fast CI/tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized (2000 prospects, 120 trees, 96 optimizer calls).
    Full,
    /// Test-sized (320 prospects, 24 trees, 32 optimizer calls).
    Quick,
}

impl Scale {
    fn deal_rows(self) -> usize {
        match self {
            Scale::Full => 2000,
            Scale::Quick => 600,
        }
    }

    fn retention_rows(self) -> usize {
        match self {
            Scale::Full => 1200,
            Scale::Quick => 320,
        }
    }

    fn model_config(self) -> ModelConfig {
        let mut cfg = ModelConfig::default();
        match self {
            Scale::Full => {
                cfg.n_trees = 120;
                cfg.max_depth = 16;
                cfg.max_features = Some(6);
            }
            Scale::Quick => {
                cfg.n_trees = 24;
                cfg.max_depth = 8;
            }
        }
        cfg
    }

    fn optimizer_calls(self) -> usize {
        match self {
            Scale::Full => 96,
            Scale::Quick => 32,
        }
    }

    fn study_config(self) -> StudyConfig {
        StudyConfig {
            n_replications: match self {
                Scale::Full => 2000,
                Scale::Quick => 200,
            },
            ..Default::default()
        }
    }
}

/// Train the deal-closing model used by the Figure 2 experiments.
///
/// # Panics
/// Panics on internal errors — experiments are top-level binaries and a
/// failure should abort loudly.
pub fn train_deal_model(scale: Scale, seed: u64) -> (Dataset, TrainedModel) {
    let dataset = deal_closing(scale.deal_rows(), seed);
    let refs = dataset.driver_refs();
    let session = Session::new(dataset.frame.clone())
        .with_kpi(&dataset.kpi)
        .expect("KPI exists")
        .with_drivers(&refs)
        .expect("drivers exist");
    let model = session
        .train(&scale.model_config())
        .expect("training succeeds");
    (dataset, model)
}

/// Figure 2 E: driver importance + verification vs ground truth.
#[derive(Debug, Clone)]
pub struct ImportanceExperiment {
    /// Model importances.
    pub importance: DriverImportance,
    /// Shapley/Pearson/Spearman verification.
    pub verification: VerificationReport,
    /// Ground-truth ranking from the generator.
    pub truth_ranking: Vec<String>,
    /// Paper's published top-3.
    pub paper_top3: [&'static str; 3],
    /// Paper's published bottom-3.
    pub paper_bottom3: [&'static str; 3],
    /// Model top-3 ∩ paper top-3 (0..=3).
    pub top3_matches: usize,
    /// Model bottom-3 ∩ paper bottom-3 (0..=3).
    pub bottom3_matches: usize,
}

/// Run the Figure 2 E experiment.
pub fn fig2_importance(scale: Scale, seed: u64) -> ImportanceExperiment {
    let (dataset, model) = train_deal_model(scale, seed);
    let importance = model.driver_importance().expect("model fitted");
    let shapley = ShapleyConfig {
        n_permutations: match scale {
            Scale::Full => 24,
            Scale::Quick => 10,
        },
        n_rows: match scale {
            Scale::Full => 64,
            Scale::Quick => 24,
        },
        seed,
    };
    let verification = model
        .verify_importance(&shapley)
        .expect("verification runs");
    let ranked = importance.ranked_names();
    let top3_matches = ranked[..3]
        .iter()
        .filter(|d| paper::TOP3.contains(d))
        .count();
    let bottom3_matches = ranked[ranked.len() - 3..]
        .iter()
        .filter(|d| paper::BOTTOM3.contains(d))
        .count();
    ImportanceExperiment {
        importance,
        verification,
        truth_ranking: dataset
            .truth
            .ranked_names()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        paper_top3: paper::TOP3,
        paper_bottom3: paper::BOTTOM3,
        top3_matches,
        bottom3_matches,
    }
}

/// Figure 2 H: the +40 % Open Marketing Email sensitivity run.
#[derive(Debug, Clone)]
pub struct SensitivityExperiment {
    /// Measured result.
    pub result: SensitivityResult,
    /// Paper baseline KPI.
    pub paper_baseline: f64,
    /// Paper perturbed KPI.
    pub paper_kpi: f64,
    /// Paper uplift.
    pub paper_uplift: f64,
}

/// Run the Figure 2 H experiment.
pub fn fig2_sensitivity(scale: Scale, seed: u64) -> SensitivityExperiment {
    let (_, model) = train_deal_model(scale, seed);
    let set = PerturbationSet::new(vec![Perturbation::percentage("Open Marketing Email", 40.0)]);
    SensitivityExperiment {
        result: model.sensitivity(&set).expect("valid perturbation"),
        paper_baseline: paper::BASE_CLOSE_RATE,
        paper_kpi: paper::SENSITIVITY_KPI,
        paper_uplift: paper::SENSITIVITY_UPLIFT,
    }
}

/// Figure 2 I: free + constrained goal inversion.
#[derive(Debug, Clone)]
pub struct GoalExperiment {
    /// Free maximization over default bounds.
    pub free: GoalInversionResult,
    /// Constrained run (OME ∈ [+40 %, +80 %]).
    pub constrained: GoalInversionResult,
    /// Paper's constrained optimum KPI.
    pub paper_kpi: f64,
    /// Paper's constrained uplift.
    pub paper_uplift: f64,
}

/// Run the Figure 2 I experiment.
pub fn fig2_goal_inversion(scale: Scale, seed: u64) -> GoalExperiment {
    let (_, model) = train_deal_model(scale, seed);
    let mut free_cfg = GoalConfig::for_goal(Goal::Maximize);
    free_cfg.optimizer = OptimizerChoice::Bayesian {
        n_calls: scale.optimizer_calls(),
    };
    free_cfg.seed = seed;
    let free = model.goal_inversion(&free_cfg).expect("free inversion");

    let mut con_cfg =
        GoalConfig::for_goal(Goal::Maximize).with_constraints(vec![DriverConstraint::new(
            "Open Marketing Email",
            40.0,
            80.0,
        )]);
    con_cfg.optimizer = OptimizerChoice::Bayesian {
        n_calls: scale.optimizer_calls(),
    };
    con_cfg.seed = seed;
    let constrained = model
        .goal_inversion(&con_cfg)
        .expect("constrained inversion");

    GoalExperiment {
        free,
        constrained,
        paper_kpi: paper::CONSTRAINED_KPI,
        paper_uplift: paper::CONSTRAINED_UPLIFT,
    }
}

/// Figure 3: paper-vs-simulated Likert bars.
pub fn fig3(scale: Scale) -> Vec<LikertSummary> {
    figure3(&scale.study_config())
}

/// §4 rankings: simulated first/last-choice distribution.
pub fn sec4_rankings(scale: Scale) -> RankingSummary {
    simulate_rankings(&scale.study_config())
}

/// Train the marketing-mix sales model used by the U1 experiment and
/// the bulk-scenario benchmarks.
///
/// # Panics
/// Panics on internal errors — experiments are top-level binaries and a
/// failure should abort loudly.
pub fn train_marketing_model(scale: Scale, seed: u64) -> (Dataset, TrainedModel) {
    let days = match scale {
        Scale::Full => 360,
        Scale::Quick => 180,
    };
    let dataset = marketing_mix(days, seed);
    let refs = dataset.driver_refs();
    let session = Session::new(dataset.frame.clone())
        .with_kpi(&dataset.kpi)
        .expect("KPI exists")
        .with_drivers(&refs)
        .expect("drivers exist");
    let model = session
        .train(&scale.model_config())
        .expect("training succeeds");
    (dataset, model)
}

/// A deterministic grid of `n` heterogeneous scenarios over the given
/// drivers: alternating single- and two-driver perturbations, mixed
/// percentage/absolute kinds — the workload shape of the
/// `bench_scenarios` clone-vs-overlay comparison.
pub fn scenario_grid(drivers: &[String], n: usize, seed: u64) -> Vec<ScenarioSpec> {
    (0..n)
        .map(|i| {
            let k = (seed as usize).wrapping_add(i * 7919);
            let d0 = &drivers[k % drivers.len()];
            let pct = -50.0 + (k % 29) as f64 * 5.0;
            let mut perturbations = vec![Perturbation::percentage(d0.clone(), pct)];
            if i % 2 == 1 {
                let d1 = &drivers[(k / drivers.len() + 1) % drivers.len()];
                if d1 != d0 {
                    perturbations.push(Perturbation::absolute(d1.clone(), (k % 11) as f64 - 5.0));
                }
            }
            ScenarioSpec::new(format!("grid-{i}"), PerturbationSet::new(perturbations))
        })
        .collect()
}

/// The legacy scenario-evaluation path: clone the full training matrix
/// per scenario, predict row by row. Kept as the baseline side of the
/// `bench_scenarios` comparison and the reference the equivalence tests
/// pin the overlay path against.
///
/// # Panics
/// Panics on invalid scenarios — benchmark inputs are trusted.
pub fn eval_scenarios_clone_path(model: &TrainedModel, specs: &[ScenarioSpec]) -> Vec<f64> {
    specs
        .iter()
        .map(|s| {
            let cloned = s
                .perturbations
                .apply_to_matrix(model.matrix(), model.driver_names())
                .expect("valid scenario");
            let preds: Vec<f64> = (0..cloned.n_rows())
                .map(|i| model.predict_row(cloned.row(i)).expect("prediction"))
                .collect();
            preds.iter().sum::<f64>() / preds.len() as f64
        })
        .collect()
}

/// The overlay path for the same workload: one `ScenarioSet` call.
///
/// # Panics
/// Panics on invalid scenarios — benchmark inputs are trusted.
pub fn eval_scenarios_overlay_path(
    model: &TrainedModel,
    specs: &[ScenarioSpec],
    n_threads: usize,
) -> Vec<ScenarioOutcome> {
    model
        .evaluate_scenarios(&ScenarioSet::new(specs.to_vec()).with_threads(n_threads))
        .expect("valid scenarios")
}

/// One simulated slider lap: what a single analyst pass over the
/// sensitivity view costs. For every driver the lap sweeps the slider
/// across [`SLIDER_POSITIONS`] percentage stops (one sensitivity
/// evaluation each), then runs one Excel-style goal seek on the first
/// driver — the mixed re-evaluation workload the paper's interactive
/// loop produces, where real sessions revisit the same stops
/// constantly.
pub const SLIDER_POSITIONS: [f64; 12] = [
    -50.0, -40.0, -30.0, -20.0, -10.0, 0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 120.0,
];

/// Outcome of a slider-loop run (see [`slider_loop`]).
#[derive(Debug, Clone)]
pub struct SliderLoopReport {
    /// Total KPI evaluations requested across all laps.
    pub evaluations: usize,
    /// Fraction of evaluations served from the cache (0 when uncached).
    pub hit_rate: f64,
    /// Order-stable sum of every KPI produced — the cached and uncached
    /// paths must agree on this bit for bit.
    pub checksum: f64,
}

/// Run `laps` identical slider laps, through the result cache when one
/// is given. The first lap is all misses; every later lap replays the
/// same questions, which is exactly the repetition profile the cache
/// is built for (`bench_cache` measures the speedup, the unit test
/// pins bit-identity).
///
/// # Panics
/// Panics on evaluation errors — benchmark inputs are trusted.
pub fn slider_loop(
    model: &TrainedModel,
    cache: Option<&whatif_core::EvalCache>,
    laps: usize,
) -> SliderLoopReport {
    let drivers: Vec<String> = model.driver_names().to_vec();
    let mut evaluations = 0usize;
    let mut hits = 0usize;
    let mut checksum = 0.0f64;
    for _ in 0..laps {
        for driver in &drivers {
            for &pct in &SLIDER_POSITIONS {
                let set = PerturbationSet::new(vec![Perturbation::percentage(driver.clone(), pct)]);
                evaluations += 1;
                let kpi = match cache {
                    Some(cache) => {
                        let (s, hit) = model.sensitivity_cached(&set, cache).expect("valid driver");
                        hits += usize::from(hit);
                        s.perturbed_kpi
                    }
                    None => model.sensitivity(&set).expect("valid driver").perturbed_kpi,
                };
                checksum += kpi;
            }
        }
        let target = model.baseline_kpi() * 1.02;
        evaluations += 1;
        let seek_kpi = match cache {
            Some(cache) => {
                let (r, hit) = model
                    .goal_seek_driver_cached(&drivers[0], target, -50.0, 120.0, 1e-9, cache)
                    .expect("valid seek");
                hits += usize::from(hit);
                r.achieved_kpi
            }
            None => {
                model
                    .goal_seek_driver(&drivers[0], target, -50.0, 120.0, 1e-9)
                    .expect("valid seek")
                    .achieved_kpi
            }
        };
        checksum += seek_kpi;
    }
    SliderLoopReport {
        evaluations,
        hit_rate: if evaluations == 0 {
            0.0
        } else {
            hits as f64 / evaluations as f64
        },
        checksum,
    }
}

/// Machine-readable report of the model-store benchmarks, written to
/// `BENCH_store.json` by `benches/bench_store.rs` (and the `repro`
/// binary's `store` experiment) so the ROADMAP's perf trajectory has
/// data points instead of terminal scrollback.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StoreBenchReport {
    /// Sessions simulated against one shared training request.
    pub n_sessions: usize,
    /// Wall ms for the one real training (the store's first miss).
    pub train_once_ms: f64,
    /// Mean wall ms for each later session's store *share*.
    pub share_ms: f64,
    /// Mean wall ms to train per-session (the pre-store behavior).
    pub per_session_train_ms: f64,
    /// N per-session trainings over (1 training + N−1 shares).
    pub train_dedup_speedup: f64,
    /// Concurrent workers in the slider-dispatch measurement.
    pub dispatch_workers: usize,
    /// Distinct sensitivity evaluations per worker.
    pub evals_per_worker: usize,
    /// Wall ms with analyses serialized under one per-session lock —
    /// the pre-lock-free dispatch, emulated by wrapping each
    /// evaluation in a shared mutex.
    pub locked_dispatch_ms: f64,
    /// Wall ms with today's dispatch: clone the `Arc`, release the
    /// lock, compute in parallel.
    pub lock_free_dispatch_ms: f64,
    /// `locked_dispatch_ms / lock_free_dispatch_ms`.
    pub dispatch_speedup: f64,
}

/// Run both model-store benchmarks: train-once dedup speedup across
/// `n_sessions` identical sessions, and the concurrent slider-loop
/// wall-clock with dispatch serialized (the old per-session lock held
/// across evaluation) vs lock-free (today's clone-the-`Arc` dispatch).
///
/// # Panics
/// Panics on internal errors — experiments are top-level binaries and a
/// failure should abort loudly.
pub fn store_bench(scale: Scale, seed: u64) -> StoreBenchReport {
    use std::sync::{Arc, Mutex};
    use std::time::Instant;
    use whatif_core::store::ModelStore;

    let n_sessions = 4usize;
    let dataset = deal_closing(scale.deal_rows(), seed);
    let config = scale.model_config();
    let session = || {
        Session::new(dataset.frame.clone())
            .with_kpi(&dataset.kpi)
            .expect("KPI exists")
    };

    // Pre-store behavior: every session trains its own copy.
    let t = Instant::now();
    for _ in 0..n_sessions {
        session().train(&config).expect("training succeeds");
    }
    let per_session_train_ms = ms(t.elapsed()) / n_sessions as f64;

    // Store behavior: one training, N−1 shares.
    let store = ModelStore::default();
    let t = Instant::now();
    let (_, shared) = store.train_or_share(&session(), &config).expect("trains");
    let train_once_ms = ms(t.elapsed());
    assert!(!shared, "first request trains");
    let t = Instant::now();
    for _ in 1..n_sessions {
        let (_, shared) = store.train_or_share(&session(), &config).expect("shares");
        assert!(shared, "later requests share");
    }
    let share_ms = ms(t.elapsed()) / (n_sessions - 1) as f64;
    let train_dedup_speedup = (per_session_train_ms * n_sessions as f64)
        / (train_once_ms + share_ms * (n_sessions - 1) as f64);

    // Concurrent dispatch: W workers sweep disjoint slider stops on the
    // *same* shared model. `locked` emulates the old engine, which held
    // the session's lock for the whole evaluation. The model predicts
    // single-threaded (`n_threads: 1`) so the measurement isolates
    // dispatch-level parallelism — a many-session server keeps exactly
    // one level of fan-out, and with the per-model thread pool also
    // running, the locked path would hide its serialization behind the
    // model's own workers.
    let model = session()
        .train(&ModelConfig {
            n_threads: 1,
            ..config.clone()
        })
        .expect("training succeeds");
    let dispatch_workers = 4usize;
    let evals_per_worker = 6usize;
    let dispatch_ms = |locked: bool| -> f64 {
        let gate = Arc::new(Mutex::new(()));
        let t = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..dispatch_workers {
                let model = &model;
                let gate = gate.clone();
                scope.spawn(move || {
                    for e in 0..evals_per_worker {
                        let pct = 1.0 + (w * evals_per_worker + e) as f64;
                        let set = PerturbationSet::new(vec![Perturbation::percentage(
                            model.driver_names()[0].clone(),
                            pct,
                        )]);
                        let guard = locked.then(|| gate.lock().unwrap());
                        model.sensitivity(&set).expect("valid driver");
                        drop(guard);
                    }
                });
            }
        });
        ms(t.elapsed())
    };
    let locked_dispatch_ms = dispatch_ms(true);
    let lock_free_dispatch_ms = dispatch_ms(false);

    StoreBenchReport {
        n_sessions,
        train_once_ms,
        share_ms,
        per_session_train_ms,
        train_dedup_speedup,
        dispatch_workers,
        evals_per_worker,
        locked_dispatch_ms,
        lock_free_dispatch_ms,
        dispatch_speedup: locked_dispatch_ms / lock_free_dispatch_ms,
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn write_json<T: serde::Serialize>(path: &str, report: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

/// Serialize a [`StoreBenchReport`] to `path` as JSON (the
/// `BENCH_store.json` emitter).
///
/// # Errors
/// Propagated I/O errors from writing the file.
pub fn write_store_bench_json(path: &str, report: &StoreBenchReport) -> std::io::Result<()> {
    write_json(path, report)
}

/// The forest configuration the what-if model backend would use at this
/// scale, reconstructed for direct `whatif_learn` benchmarking.
fn forest_config(scale: Scale, seed: u64, n_threads: usize) -> whatif_learn::forest::ForestConfig {
    let mcfg = scale.model_config();
    whatif_learn::forest::ForestConfig {
        n_trees: mcfg.n_trees,
        tree: whatif_learn::tree::TreeConfig {
            max_depth: mcfg.max_depth,
            max_features: mcfg.max_features,
            ..whatif_learn::tree::TreeConfig::default()
        },
        seed,
        n_threads,
        ..whatif_learn::forest::ForestConfig::default()
    }
}

/// The deal-closing training set as raw learn-level inputs: the feature
/// matrix, binary labels for the classifier family, and a deterministic
/// continuous mixture of the drivers for the regressor family (the
/// forest benches care about cost, not fit quality).
fn forest_bench_data(scale: Scale, seed: u64) -> (whatif_learn::Matrix, Vec<u8>, Vec<f64>) {
    let (_, model) = train_deal_model(scale, seed);
    let x = model.matrix().clone();
    let labels: Vec<u8> = model
        .targets()
        .iter()
        .map(|&v| u8::from(v >= 0.5))
        .collect();
    let y_reg: Vec<f64> = (0..x.n_rows())
        .map(|i| {
            x.row(i)
                .iter()
                .enumerate()
                .map(|(j, &v)| v * (1.0 + j as f64 * 0.37))
                .sum::<f64>()
        })
        .collect();
    (x, labels, y_reg)
}

/// Machine-readable report of the old-vs-new forest *training* benchmark,
/// written to `BENCH_train.json`: wall clock of the seed gather-and-sort
/// trainer vs the presorted trainer at bench scale, for both forest
/// families. The two trainers produce bit-identical forests (pinned by
/// `tests/forest_equivalence.rs`), so the ratio is pure hot-path win.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainBenchReport {
    /// Training rows.
    pub n_rows: usize,
    /// Feature columns.
    pub n_features: usize,
    /// Trees per forest.
    pub n_trees: usize,
    /// Timed repetitions per measurement (means reported).
    pub reps: usize,
    /// Mean wall ms: seed trainer, classification forest.
    pub classifier_reference_ms: f64,
    /// Mean wall ms: presorted trainer, classification forest.
    pub classifier_presorted_ms: f64,
    /// `classifier_reference_ms / classifier_presorted_ms`.
    pub classifier_speedup: f64,
    /// Mean wall ms: seed trainer, regression forest.
    pub regressor_reference_ms: f64,
    /// Mean wall ms: presorted trainer, regression forest.
    pub regressor_presorted_ms: f64,
    /// `regressor_reference_ms / regressor_presorted_ms`.
    pub regressor_speedup: f64,
    /// Presorted-vs-binned rows at interactive-loop scales (20k and
    /// 200k rows × 24 features; tree counts scaled down with size).
    /// The binned tier is approximate — these rows measure the O(bins)
    /// split-scan win, not bit-identical output.
    #[serde(default)]
    pub binned: Vec<BinnedTrainRow>,
}

/// One presorted-vs-binned training measurement at a fixed scale.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BinnedTrainRow {
    /// Training rows.
    pub n_rows: usize,
    /// Feature columns.
    pub n_features: usize,
    /// Trees per forest.
    pub n_trees: usize,
    /// Tree depth cap.
    pub max_depth: usize,
    /// Timed repetitions per measurement (minimum reported).
    pub reps: usize,
    /// Min wall ms: exact presorted trainer.
    pub presorted_ms: f64,
    /// Min wall ms: histogram-binned trainer (256 bins).
    pub binned_ms: f64,
    /// `presorted_ms / binned_ms`.
    pub speedup: f64,
}

/// Synthetic dense regression data for the binned-tier scaling rows:
/// xorshift features in `[0, 1)` and a smooth nonlinear target, so
/// split finding sees many distinct cut candidates per feature (the
/// regime where exact scans pay per-row and histograms pay per-bin).
fn binned_bench_data(
    n_rows: usize,
    n_features: usize,
    seed: u64,
) -> (whatif_learn::Matrix, Vec<f64>) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut data = vec![0.0f64; n_rows * n_features];
    for v in &mut data {
        *v = next();
    }
    let y: Vec<f64> = (0..n_rows)
        .map(|i| {
            let r = &data[i * n_features..(i + 1) * n_features];
            (6.0 * r[0]).sin() + r[1] * r[2] + 2.0 * r[3] + 0.1 * next()
        })
        .collect();
    (
        whatif_learn::Matrix::from_vec(data, n_rows, n_features).expect("dims match"),
        y,
    )
}

/// Time the exact presorted trainer against the histogram-binned tier
/// on one synthetic regression scale.
///
/// # Panics
/// Panics on internal errors — experiments are top-level binaries and a
/// failure should abort loudly.
pub fn binned_train_row(
    n_rows: usize,
    n_features: usize,
    n_trees: usize,
    max_depth: usize,
    reps: usize,
    seed: u64,
) -> BinnedTrainRow {
    use std::time::Instant;
    use whatif_learn::Regressor as _;

    let (x, y) = binned_bench_data(n_rows, n_features, seed);
    let config = |trainer| whatif_learn::forest::ForestConfig {
        n_trees,
        tree: whatif_learn::tree::TreeConfig {
            max_depth,
            ..whatif_learn::tree::TreeConfig::default()
        },
        seed,
        n_threads: 4,
        trainer,
        ..whatif_learn::forest::ForestConfig::default()
    };
    // Min-of-reps, interleaved: on a shared machine the noise is
    // one-sided (slowdowns only), so the minimum is the stable
    // estimator of the true cost where a mean folds the noise in.
    let mut best = [f64::INFINITY; 2];
    for _ in 0..reps {
        for (slot, trainer) in [
            (0usize, whatif_learn::Trainer::Presorted),
            (1, whatif_learn::Trainer::Binned),
        ] {
            let t = Instant::now();
            let mut f = whatif_learn::RandomForestRegressor::new(config(trainer));
            f.fit(&x, &y).expect("fit");
            best[slot] = best[slot].min(ms(t.elapsed()));
        }
    }
    let presorted_ms = best[0];
    let binned_ms = best[1];
    BinnedTrainRow {
        n_rows,
        n_features,
        n_trees,
        max_depth,
        reps,
        presorted_ms,
        binned_ms,
        speedup: presorted_ms / binned_ms,
    }
}

/// Run the old-vs-new forest training benchmark on the deal-closing
/// data at the given scale.
///
/// # Panics
/// Panics on internal errors — experiments are top-level binaries and a
/// failure should abort loudly.
pub fn train_bench(scale: Scale, seed: u64) -> TrainBenchReport {
    use std::time::Instant;
    use whatif_learn::{Classifier as _, Regressor as _};

    let (x, labels, y_reg) = forest_bench_data(scale, seed);
    let config = forest_config(scale, seed, scale.model_config().n_threads);
    let reps = match scale {
        Scale::Full => 3,
        Scale::Quick => 5,
    };
    // Interleave the four measurements round-robin so slow drift in
    // machine load cancels out of the ratios.
    let mut totals = [0.0f64; 4];
    for _ in 0..reps {
        let timed = |f: &mut dyn FnMut()| -> f64 {
            let t = Instant::now();
            f();
            ms(t.elapsed())
        };
        totals[0] += timed(&mut || {
            let mut f = whatif_learn::RandomForestClassifier::new(config.clone());
            f.fit_reference(&x, &labels).expect("reference fit");
        });
        totals[1] += timed(&mut || {
            let mut f = whatif_learn::RandomForestClassifier::new(config.clone());
            f.fit(&x, &labels).expect("presorted fit");
        });
        totals[2] += timed(&mut || {
            let mut f = whatif_learn::RandomForestRegressor::new(config.clone());
            f.fit_reference(&x, &y_reg).expect("reference fit");
        });
        totals[3] += timed(&mut || {
            let mut f = whatif_learn::RandomForestRegressor::new(config.clone());
            f.fit(&x, &y_reg).expect("presorted fit");
        });
    }
    let classifier_reference_ms = totals[0] / reps as f64;
    let classifier_presorted_ms = totals[1] / reps as f64;
    let regressor_reference_ms = totals[2] / reps as f64;
    let regressor_presorted_ms = totals[3] / reps as f64;
    // Binned-tier scaling rows: both interactive-loop scales. Tree
    // counts shrink with row count (40 is well under the 100-tree
    // default forest) so each row stays seconds of wall clock while
    // still amortizing the one-time quantization the way real forests
    // do.
    let binned = vec![
        binned_train_row(20_000, 24, 40, 8, 3, seed),
        binned_train_row(200_000, 24, 12, 8, 3, seed),
    ];
    TrainBenchReport {
        n_rows: x.n_rows(),
        n_features: x.n_cols(),
        n_trees: config.n_trees,
        reps,
        classifier_reference_ms,
        classifier_presorted_ms,
        classifier_speedup: classifier_reference_ms / classifier_presorted_ms,
        regressor_reference_ms,
        regressor_presorted_ms,
        regressor_speedup: regressor_reference_ms / regressor_presorted_ms,
        binned,
    }
}

/// Serialize a [`TrainBenchReport`] to `path` (the `BENCH_train.json`
/// emitter).
///
/// # Errors
/// Propagated I/O errors from writing the file.
pub fn write_train_bench_json(path: &str, report: &TrainBenchReport) -> std::io::Result<()> {
    write_json(path, report)
}

/// Machine-readable report of the old-vs-new forest *prediction*
/// benchmark, written to `BENCH_predict.json`: cold full-matrix batch
/// prediction through the seed row-major path (per-row tree loop,
/// per-row shape checks) vs the tree-major blocked flattened path, on
/// dense input and on a copy-on-write [`whatif_learn::ColumnOverlay`].
/// Single-threaded on both sides so the ratio isolates the per-core
/// layout win rather than thread scheduling.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PredictBenchReport {
    /// Rows per batch.
    pub n_rows: usize,
    /// Feature columns.
    pub n_features: usize,
    /// Trees in the forest.
    pub n_trees: usize,
    /// Timed repetitions per measurement (means reported).
    pub reps: usize,
    /// Worker threads (1: per-core comparison).
    pub n_threads: usize,
    /// Mean wall ms per dense batch, seed row-major path.
    pub dense_rowmajor_ms: f64,
    /// Mean wall ms per dense batch, tree-major flattened path.
    pub dense_treemajor_ms: f64,
    /// `dense_rowmajor_ms / dense_treemajor_ms`.
    pub dense_speedup: f64,
    /// Mean wall ms per overlay batch, seed row-major path.
    pub overlay_rowmajor_ms: f64,
    /// Mean wall ms per overlay batch, tree-major flattened path.
    pub overlay_treemajor_ms: f64,
    /// `overlay_rowmajor_ms / overlay_treemajor_ms`.
    pub overlay_speedup: f64,
}

/// Run the old-vs-new batched prediction benchmark on a forest trained
/// on the deal-closing data at the given scale.
///
/// # Panics
/// Panics on internal errors (including any old/new output divergence —
/// the outputs are compared bit for bit before timing).
pub fn predict_bench(scale: Scale, seed: u64) -> PredictBenchReport {
    use std::time::Instant;
    use whatif_learn::{Classifier as _, ColumnOverlay, MatrixView, Predictor as _};

    let (x, labels, _) = forest_bench_data(scale, seed);
    let config = forest_config(scale, seed, 1);
    let mut forest = whatif_learn::RandomForestClassifier::new(config);
    forest.fit(&x, &labels).expect("fit");
    // The "old" side in the seed's enum-arena layout, converted once
    // outside the timed region.
    let seed_forest = forest.seed_layout();
    let mut overlay = ColumnOverlay::new(&x);
    overlay.map_col(0, |v| v * 1.4).expect("column exists");

    let n = x.n_rows();
    let mut out_new = vec![0.0; n];
    let mut out_old = vec![0.0; n];
    for view in [MatrixView::Dense(&x), MatrixView::Overlay(&overlay)] {
        forest.predict_batch(view, &mut out_new).expect("predict");
        seed_forest
            .predict_batch(view, &mut out_old)
            .expect("predict");
        assert!(
            out_new
                .iter()
                .zip(&out_old)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "tree-major and row-major paths diverged"
        );
    }

    let reps = match scale {
        Scale::Full => 30,
        Scale::Quick => 40,
    };
    // Interleave the four measurements round-robin so slow drift in
    // machine load cancels out of the ratios.
    let mut totals = [0.0f64; 4];
    for _ in 0..reps {
        let timed = |f: &mut dyn FnMut()| -> f64 {
            let t = Instant::now();
            f();
            ms(t.elapsed())
        };
        totals[0] += timed(&mut || {
            seed_forest
                .predict_batch(MatrixView::Dense(&x), &mut out_old)
                .expect("predict");
        });
        totals[1] += timed(&mut || {
            forest
                .predict_batch(MatrixView::Dense(&x), &mut out_new)
                .expect("predict");
        });
        totals[2] += timed(&mut || {
            seed_forest
                .predict_batch(MatrixView::Overlay(&overlay), &mut out_old)
                .expect("predict");
        });
        totals[3] += timed(&mut || {
            forest
                .predict_batch(MatrixView::Overlay(&overlay), &mut out_new)
                .expect("predict");
        });
    }
    let dense_rowmajor_ms = totals[0] / reps as f64;
    let dense_treemajor_ms = totals[1] / reps as f64;
    let overlay_rowmajor_ms = totals[2] / reps as f64;
    let overlay_treemajor_ms = totals[3] / reps as f64;
    PredictBenchReport {
        n_rows: n,
        n_features: x.n_cols(),
        n_trees: forest.n_trees(),
        reps,
        n_threads: 1,
        dense_rowmajor_ms,
        dense_treemajor_ms,
        dense_speedup: dense_rowmajor_ms / dense_treemajor_ms,
        overlay_rowmajor_ms,
        overlay_treemajor_ms,
        overlay_speedup: overlay_rowmajor_ms / overlay_treemajor_ms,
    }
}

/// Serialize a [`PredictBenchReport`] to `path` (the
/// `BENCH_predict.json` emitter).
///
/// # Errors
/// Propagated I/O errors from writing the file.
pub fn write_predict_bench_json(path: &str, report: &PredictBenchReport) -> std::io::Result<()> {
    write_json(path, report)
}

/// One scenario-grid size measured across the three wire paths: a v2
/// JSON-lines envelope, v3 binary frames with compression declined, and
/// v3 with LZ4-style frame compression.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WireGridMeasurement {
    /// Scenarios in the grid.
    pub n_scenarios: usize,
    /// Wall ms for one `EvaluateScenarios` envelope over JSON lines.
    pub v2_json_ms: f64,
    /// Bytes on the wire for the v2 exchange (request + reply).
    pub v2_json_bytes: u64,
    /// Wall ms for the v3 columnar exchange, uncompressed frames.
    pub v3_plain_ms: f64,
    /// Bytes on the wire for the uncompressed v3 exchange.
    pub v3_plain_bytes: u64,
    /// Wall ms for the v3 columnar exchange, compressed frames.
    pub v3_lz4_ms: f64,
    /// Bytes on the wire for the compressed v3 exchange.
    pub v3_lz4_bytes: u64,
    /// `v2_json_ms / v3_lz4_ms`.
    pub wall_speedup: f64,
    /// `v2_json_bytes / v3_lz4_bytes`.
    pub bytes_reduction: f64,
}

/// Machine-readable report of the wire-protocol benchmark, written to
/// `BENCH_wire.json` by `benches/bench_wire.rs` (and the `repro`
/// binary's `wire` experiment): the same scenario grids priced over
/// real loopback TCP through v2 JSON lines and both v3 framings.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WireBenchReport {
    /// Dataset rows behind the session (kept small: the bench isolates
    /// wire cost, not model cost — all three paths pay the same
    /// evaluation work).
    pub n_rows: usize,
    /// Trees in the (deliberately tiny) forest.
    pub n_trees: usize,
    /// One measurement per grid size, ascending.
    pub grids: Vec<WireGridMeasurement>,
}

/// Price identical scenario grids through all three wire protocols
/// against one live TCP server, measuring wall clock and true
/// bytes-on-wire. The engine's result cache is disabled so the second
/// and third runs cannot ride the first run's computations, and every
/// v3 KPI column is checked bit-for-bit against the v2 JSON outcomes.
///
/// # Panics
/// Panics on internal errors — experiments are top-level binaries and a
/// failure should abort loudly.
pub fn wire_bench(scale: Scale, seed: u64) -> WireBenchReport {
    use std::time::Instant;
    use whatif_server::v3::specs_to_grid;
    use whatif_server::{serve, Client, Envelope, Reply, Request, Response, UseCase, V3Client};
    use whatif_wire::Compression;

    // A tiny model keeps per-scenario evaluation cheap, so the numbers
    // compare serialization and transport, which is what v3 changes.
    let n_rows = 32usize;
    let config = ModelConfig {
        n_trees: 4,
        max_depth: 4,
        ..ModelConfig::default()
    };

    let (addr, handle) = serve("127.0.0.1:0").expect("bind");
    let mut setup = Client::connect(addr).expect("connect");
    // With the cache on, whichever protocol runs first would pay for
    // the model work and the others would hit cached results.
    assert!(!setup
        .call(&Request::ConfigureCache {
            capacity_bytes: None,
            enabled: Some(false),
        })
        .expect("configure cache")
        .is_error());
    let session = match setup
        .call(&Request::LoadUseCase {
            use_case: UseCase::DealClosing,
            n_rows: Some(n_rows),
            seed: Some(seed),
        })
        .expect("load")
    {
        Response::SessionCreated { session, .. } => session,
        other => panic!("unexpected: {other:?}"),
    };
    assert!(!setup
        .call(&Request::SelectKpi {
            session,
            kpi: "Deal Closed?".into(),
        })
        .expect("kpi")
        .is_error());
    assert!(!setup
        .call(&Request::Train {
            session,
            config: Some(config.clone()),
        })
        .expect("train")
        .is_error());

    let drivers = ["Open Marketing Email", "Renewal", "Call", "Chat"];
    let specs_for = |n: usize| -> Vec<ScenarioSpec> {
        (0..n)
            .map(|i| {
                let driver = drivers[i % drivers.len()];
                let pct = ((i * 37) % 151) as f64 - 50.0;
                ScenarioSpec::new(
                    format!("s{i}"),
                    PerturbationSet::new(vec![Perturbation::percentage(driver, pct)]),
                )
            })
            .collect()
    };

    // One small untimed round through each path to warm connections,
    // thread pools, and allocator arenas.
    {
        let warm = specs_for(64);
        let mut v2 = Client::connect(addr).expect("connect");
        let reply = v2
            .call_v2(
                0,
                Request::EvaluateScenarios {
                    session,
                    scenarios: warm.clone(),
                    record: false,
                    n_threads: None,
                },
            )
            .expect("warm-up");
        assert!(!reply.is_error());
        let mut v3 = V3Client::connect(addr).expect("connect");
        v3.evaluate_grid(0, specs_to_grid(session, &warm, false, None))
            .expect("warm-up");
    }

    let sizes: &[usize] = match scale {
        Scale::Full => &[1_000, 10_000, 100_000],
        Scale::Quick => &[200, 1_000, 5_000],
    };
    let mut grids = Vec::new();
    for &n in sizes {
        let specs = specs_for(n);

        // v2: the whole grid as one JSON envelope, one JSON reply
        // line. The timer covers the full application-visible exchange
        // — client-side encode, round trip, client-side decode — the
        // same span `evaluate_grid` pays on the v3 side.
        let mut v2 = Client::connect(addr).expect("connect");
        let request = Request::EvaluateScenarios {
            session,
            scenarios: specs.clone(),
            record: false,
            n_threads: None,
        };
        let t = Instant::now();
        let line = serde_json::to_string(&Envelope::new(1, request)).expect("encode");
        let reply_line = v2.send_raw(&line).expect("round trip");
        let reply: Reply = serde_json::from_str(&reply_line).expect("parse");
        let v2_json_ms = ms(t.elapsed());
        let v2_json_bytes = (line.len() + 1 + reply_line.len()) as u64;
        let Response::ScenariosEvaluated { outcomes, .. } = reply.into_result().expect("evaluates")
        else {
            panic!("expected ScenariosEvaluated");
        };
        assert_eq!(outcomes.len(), n);

        // v3: the same grid as columnar frames, plain then compressed.
        let run_v3 = |compression: Compression| -> (f64, u64) {
            let mut v3 = V3Client::connect(addr).expect("connect");
            v3.compression = compression;
            let grid = specs_to_grid(session, &specs, false, None);
            let t = Instant::now();
            let streamed = v3.evaluate_grid(1, grid).expect("grid evaluates");
            let elapsed = ms(t.elapsed());
            assert_eq!(streamed.kpi.len(), n);
            // Same engine, same inputs: the columnar path must agree
            // with the JSON path bit for bit.
            for (columnar, row) in streamed.kpi.iter().zip(&outcomes) {
                assert_eq!(
                    columnar.to_bits(),
                    row.kpi.to_bits(),
                    "columnar KPI diverged from the JSON outcome"
                );
            }
            (elapsed, v3.bytes_sent() + v3.bytes_received())
        };
        let (v3_plain_ms, v3_plain_bytes) = run_v3(Compression::None);
        let (v3_lz4_ms, v3_lz4_bytes) = run_v3(Compression::Lz4Like);

        grids.push(WireGridMeasurement {
            n_scenarios: n,
            v2_json_ms,
            v2_json_bytes,
            v3_plain_ms,
            v3_plain_bytes,
            v3_lz4_ms,
            v3_lz4_bytes,
            wall_speedup: v2_json_ms / v3_lz4_ms,
            bytes_reduction: v2_json_bytes as f64 / v3_lz4_bytes as f64,
        });
    }

    setup.call(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server exits");
    WireBenchReport {
        n_rows,
        n_trees: config.n_trees,
        grids,
    }
}

/// Serialize a [`WireBenchReport`] to `path` (the `BENCH_wire.json`
/// emitter).
///
/// # Errors
/// Propagated I/O errors from writing the file.
pub fn write_wire_bench_json(path: &str, report: &WireBenchReport) -> std::io::Result<()> {
    write_json(path, report)
}

/// Machine-readable report of the observability overhead benchmark,
/// written to `BENCH_obs.json` by `benches/bench_obs.rs` and the
/// `repro` binary's `obs` experiment. It answers one question: what
/// does the always-on instrumentation (per-request counters, latency
/// histograms, stage spans, slow-query check) cost on the cached
/// slider hot path, measured as enabled-vs-disabled on the same binary
/// via the `whatif_obs` kill switch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ObsBenchReport {
    /// Dataset rows behind the trained session.
    pub n_rows: usize,
    /// Trees in the (deliberately small) forest.
    pub n_trees: usize,
    /// Slider laps per timed pass.
    pub laps: usize,
    /// Requests dispatched per timed pass (`laps` × lap length).
    pub requests: usize,
    /// Interleaved repetitions; each number below is the min across
    /// them.
    pub reps: usize,
    /// Result-cache hit rate over the whole run — the target workload
    /// is the *cached* hot path, so this should be close to 1.
    pub cache_hit_rate: f64,
    /// µs per request through `Engine::handle_envelope` (no JSON),
    /// instrumentation off.
    pub engine_off_us_per_req: f64,
    /// Same, instrumentation on.
    pub engine_on_us_per_req: f64,
    /// `(on − off) / off` in percent for the envelope path.
    pub engine_overhead_pct: f64,
    /// µs per request through `Engine::dispatch_line` (parse + dispatch
    /// + serialize — the full v2 server path), instrumentation off.
    pub json_off_us_per_req: f64,
    /// Same, instrumentation on.
    pub json_on_us_per_req: f64,
    /// `(on − off) / off` in percent for the JSON-line path. This is
    /// the number the <2 % overhead target is pinned on: it is what a
    /// TCP client actually pays per request.
    pub json_overhead_pct: f64,
}

/// Measure instrumented-vs-uninstrumented dispatch on the slider-loop
/// workload: every driver swept across [`SLIDER_POSITIONS`] sensitivity
/// stops plus one goal inversion per lap, all served from the warm
/// result cache. The same engine runs with the `whatif_obs` kill
/// switch on and off in interleaved repetitions (min taken) so the
/// difference isolates the instrumentation itself.
///
/// # Panics
/// Panics on dispatch errors — benchmark inputs are trusted.
pub fn obs_bench(scale: Scale, seed: u64) -> ObsBenchReport {
    use std::time::Instant;
    use whatif_server::{Engine, Envelope, Request, Response};

    // The measured deltas are tens of nanoseconds per request, so the
    // rep count is high: min-of-reps over interleaved passes needs many
    // samples before scheduler noise (±1.5 points run to run at 7 reps)
    // stops dominating the overhead percentage.
    let (n_rows, n_trees, laps, reps) = match scale {
        Scale::Full => (600, 16, 40, 80),
        Scale::Quick => (200, 8, 6, 3),
    };

    let engine = Engine::new();
    let session = match engine
        .handle(Request::LoadUseCase {
            use_case: whatif_server::UseCase::DealClosing,
            n_rows: Some(n_rows),
            seed: Some(seed),
        })
        .expect("load use case")
    {
        Response::SessionCreated { session, .. } => session,
        other => panic!("unexpected: {other:?}"),
    };
    engine
        .handle(Request::SelectKpi {
            session,
            kpi: "Deal Closed?".into(),
        })
        .expect("select kpi");
    let config = ModelConfig {
        n_trees,
        max_depth: 6,
        ..ModelConfig::default()
    };
    engine
        .handle(Request::Train {
            session,
            config: Some(config),
        })
        .expect("train");

    // One analyst lap: each driver swept across the slider stops, then
    // one Excel-style inversion. Identical laps replay the same cache
    // keys — the interactive re-evaluation profile the cache serves.
    let drivers = ["Open Marketing Email", "Renewal", "Call", "Chat"];
    let mut lap: Vec<Request> = Vec::new();
    for driver in drivers {
        for &pct in &SLIDER_POSITIONS {
            lap.push(Request::SensitivityView {
                session,
                perturbations: vec![Perturbation::percentage(driver, pct)],
            });
        }
    }
    lap.push(Request::GoalInversionView {
        session,
        goal: Goal::Maximize,
        constraints: vec![],
        optimizer: None,
        seed,
    });
    let lines: Vec<String> = lap
        .iter()
        .enumerate()
        .map(|(i, req)| {
            serde_json::to_string(&Envelope::new(i as u64, req.clone())).expect("serialize")
        })
        .collect();
    let requests = laps * lap.len();

    // Chunk size for paired timing: big enough that branch-predictor
    // re-warm after an on/off flip is diluted, small enough that slow
    // drift stays common to both halves of a pair.
    const CHUNK_LAPS: usize = 5;
    let run_chunk_envelopes = |engine: &Engine| -> std::time::Duration {
        let t = Instant::now();
        for _ in 0..CHUNK_LAPS {
            for (i, req) in lap.iter().enumerate() {
                let reply = engine.handle_envelope(Envelope::new(i as u64, req.clone()));
                assert!(reply.error.is_none(), "dispatch failed: {:?}", reply.error);
            }
        }
        t.elapsed()
    };
    let run_chunk_lines = |engine: &Engine| -> std::time::Duration {
        let t = Instant::now();
        for _ in 0..CHUNK_LAPS {
            for line in &lines {
                let (reply, _) = engine.dispatch_line(line);
                std::hint::black_box(&reply);
            }
        }
        t.elapsed()
    };

    // Warm pass: fills the result cache (later passes are ~all hits)
    // and pre-faults allocator arenas.
    whatif_obs::set_enabled(true);
    run_chunk_envelopes(&engine);
    run_chunk_lines(&engine);

    // Paired measurement: the signal is tens of nanoseconds per request,
    // far below pass-level scheduler noise. Each chunk is timed
    // instrumented and uninstrumented back to back and only the
    // *difference* is kept, so drift that moves both timings together
    // (thermal, frequency, interference) cancels; the median over all
    // paired deltas is then added to the fastest observed baseline
    // chunk. Far more stable run-to-run than comparing two
    // independently-taken minimums.
    let pairs = (laps * reps).div_ceil(CHUNK_LAPS);
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let mut engine_off = f64::INFINITY;
    let mut json_off = f64::INFINITY;
    let mut engine_deltas = Vec::with_capacity(pairs);
    let mut json_deltas = Vec::with_capacity(pairs);
    // ABBA ordering: alternate which mode runs first within a pair, so
    // any systematic first-vs-second effect (cache state left by the
    // previous chunk) cancels across pairs instead of biasing the delta.
    for i in 0..pairs {
        let on_first = i % 2 == 0;
        whatif_obs::set_enabled(on_first);
        let first = us(run_chunk_envelopes(&engine));
        whatif_obs::set_enabled(!on_first);
        let second = us(run_chunk_envelopes(&engine));
        let (on, off) = if on_first {
            (first, second)
        } else {
            (second, first)
        };
        engine_off = engine_off.min(off);
        engine_deltas.push(on - off);
    }
    for i in 0..pairs {
        let on_first = i % 2 == 0;
        whatif_obs::set_enabled(on_first);
        let first = us(run_chunk_lines(&engine));
        whatif_obs::set_enabled(!on_first);
        let second = us(run_chunk_lines(&engine));
        let (on, off) = if on_first {
            (first, second)
        } else {
            (second, first)
        };
        json_off = json_off.min(off);
        json_deltas.push(on - off);
    }
    // The kill switch is process-global: leave it the way servers run.
    whatif_obs::set_enabled(true);

    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        xs[xs.len() / 2]
    };
    let chunk_len = (lap.len() * CHUNK_LAPS) as f64;
    let engine_on = engine_off + median(&mut engine_deltas);
    let json_on = json_off + median(&mut json_deltas);

    let per_req = |chunk_us: f64| chunk_us / chunk_len;
    let overhead = |on: f64, off: f64| (on - off) / off * 100.0;
    ObsBenchReport {
        n_rows,
        n_trees,
        laps,
        requests,
        reps,
        cache_hit_rate: engine.cache().stats().hit_rate(),
        engine_off_us_per_req: per_req(engine_off),
        engine_on_us_per_req: per_req(engine_on),
        engine_overhead_pct: overhead(engine_on, engine_off),
        json_off_us_per_req: per_req(json_off),
        json_on_us_per_req: per_req(json_on),
        json_overhead_pct: overhead(json_on, json_off),
    }
}

/// Serialize an [`ObsBenchReport`] to `path` (the `BENCH_obs.json`
/// emitter).
///
/// # Errors
/// Propagated I/O errors from writing the file.
pub fn write_obs_bench_json(path: &str, report: &ObsBenchReport) -> std::io::Result<()> {
    write_json(path, report)
}

/// U1: marketing mix — importance ranking plus a budget-style
/// constrained inversion.
#[derive(Debug, Clone)]
pub struct MarketingExperiment {
    /// Channel importances from the (linear) sales model.
    pub importance: DriverImportance,
    /// Ground-truth channel ranking.
    pub truth_ranking: Vec<String>,
    /// Constrained maximization: every channel within ±50 % of current
    /// spend (the "budget reality" constraint).
    pub budget_result: GoalInversionResult,
    /// Comparison sweep used to pick the channel to boost.
    pub comparison: Vec<ComparisonCurve>,
    /// Model confidence (holdout R²).
    pub confidence: f64,
}

/// Run the U1 experiment.
pub fn u1_marketing(scale: Scale, seed: u64) -> MarketingExperiment {
    let (dataset, model) = train_marketing_model(scale, seed);
    let importance = model.driver_importance().expect("model fitted");
    let comparison = model
        .comparison_analysis(&[-40.0, -20.0, 0.0, 20.0, 40.0])
        .expect("sweep runs");
    let mut cfg = GoalConfig::for_goal(Goal::Maximize).with_constraints(
        dataset
            .drivers
            .iter()
            .map(|d| DriverConstraint::new(d.clone(), -50.0, 50.0))
            .collect(),
    );
    cfg.optimizer = OptimizerChoice::Bayesian {
        n_calls: scale.optimizer_calls(),
    };
    cfg.seed = seed;
    let budget_result = model.goal_inversion(&cfg).expect("inversion runs");
    MarketingExperiment {
        importance,
        truth_ranking: dataset
            .truth
            .ranked_names()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        budget_result,
        comparison,
        confidence: model.confidence(),
    }
}

/// U2: retention — the "remove the obvious predictor and rerun" episode.
#[derive(Debug, Clone)]
pub struct RetentionExperiment {
    /// Importance with all drivers (Days Active dominates).
    pub importance_full: DriverImportance,
    /// Importance after removing the obvious predictor.
    pub importance_reduced: DriverImportance,
    /// The removed driver.
    pub removed: String,
    /// Maximization of retention after the removal.
    pub goal: GoalInversionResult,
    /// The negative driver the view renders in red.
    pub negative_driver: String,
}

/// Run the U2 experiment.
pub fn u2_retention(scale: Scale, seed: u64) -> RetentionExperiment {
    let dataset = retention(scale.retention_rows(), seed);
    let refs = dataset.driver_refs();
    let session = Session::new(dataset.frame.clone())
        .with_kpi(&dataset.kpi)
        .expect("KPI exists")
        .with_drivers(&refs)
        .expect("drivers exist");
    let model = session
        .train(&scale.model_config())
        .expect("training succeeds");
    let importance_full = model.driver_importance().expect("model fitted");

    let removed = "Days Active".to_owned();
    let reduced_session = session
        .without_drivers(&[&removed])
        .expect("driver present");
    let reduced_model = reduced_session
        .train(&scale.model_config())
        .expect("training succeeds");
    let importance_reduced = reduced_model.driver_importance().expect("model fitted");

    let mut cfg = GoalConfig::for_goal(Goal::Maximize);
    cfg.optimizer = OptimizerChoice::Bayesian {
        n_calls: scale.optimizer_calls(),
    };
    cfg.seed = seed;
    let goal = reduced_model.goal_inversion(&cfg).expect("inversion runs");
    RetentionExperiment {
        importance_full,
        importance_reduced,
        removed,
        goal,
        negative_driver: "Support Tickets".to_owned(),
    }
}

/// U3: deal closing — per-data drilldown and the "ideal customer
/// journey" (goal-inversion driver values).
#[derive(Debug, Clone)]
pub struct DealExperiment {
    /// A single prospect's predicted close probability before/after
    /// doubling their marketing-email opens.
    pub per_data_baseline: f64,
    /// After the per-data perturbation.
    pub per_data_perturbed: f64,
    /// Comparison sweep across all drivers.
    pub comparison: Vec<ComparisonCurve>,
    /// The "ideal customer journey": recommended mean activity levels.
    pub journey: Vec<(String, f64)>,
}

/// Run the U3 experiment.
pub fn u3_deal(scale: Scale, seed: u64) -> DealExperiment {
    let (_, model) = train_deal_model(scale, seed);
    let set = PerturbationSet::new(vec![Perturbation::percentage(
        "Open Marketing Email",
        100.0,
    )]);
    let per_data = model.per_data_sensitivity(0, &set).expect("row 0 exists");
    let comparison = model
        .comparison_analysis(&[-50.0, 0.0, 50.0, 100.0])
        .expect("sweep runs");
    let mut cfg = GoalConfig::for_goal(Goal::Maximize);
    cfg.optimizer = OptimizerChoice::Bayesian {
        n_calls: scale.optimizer_calls(),
    };
    cfg.seed = seed;
    let goal = model.goal_inversion(&cfg).expect("inversion runs");
    DealExperiment {
        per_data_baseline: per_data.baseline,
        per_data_perturbed: per_data.perturbed,
        comparison,
        journey: goal.driver_values,
    }
}

/// Optimizer shoot-out: best KPI per evaluation budget, per engine —
/// the "who wins, where's the crossover" series behind the goal bench.
#[derive(Debug, Clone)]
pub struct OptimizerComparison {
    /// Engine label.
    pub engine: &'static str,
    /// `(budget, best KPI at that budget)` series.
    pub series: Vec<(usize, f64)>,
}

/// Compare goal-inversion engines at equal budgets on the deal model.
pub fn optimizer_comparison(scale: Scale, seed: u64) -> Vec<OptimizerComparison> {
    let (_, model) = train_deal_model(scale, seed);
    let budgets: &[usize] = match scale {
        Scale::Full => &[16, 32, 64, 96],
        Scale::Quick => &[8, 16, 32],
    };
    type EngineFactory = Box<dyn Fn(usize) -> OptimizerChoice>;
    let engines: Vec<(&'static str, EngineFactory)> = vec![
        (
            "bayesian",
            Box::new(|b| OptimizerChoice::Bayesian { n_calls: b }),
        ),
        (
            "random",
            Box::new(|b| OptimizerChoice::RandomSearch { n_evals: b }),
        ),
        (
            "nelder-mead",
            Box::new(|b| OptimizerChoice::NelderMead { max_evals: b }),
        ),
    ];
    engines
        .into_iter()
        .map(|(name, make)| {
            let series = budgets
                .iter()
                .map(|&b| {
                    let mut cfg = GoalConfig::for_goal(Goal::Maximize);
                    cfg.optimizer = make(b);
                    cfg.seed = seed;
                    let r = model.goal_inversion(&cfg).expect("inversion runs");
                    (b, r.achieved_kpi)
                })
                .collect();
            OptimizerComparison {
                engine: name,
                series,
            }
        })
        .collect()
}

/// §5 robustness: stability of the importance ranking across model
/// seeds (the "multiplicity of explanatory models" concern).
#[derive(Debug, Clone)]
pub struct RobustnessExperiment {
    /// Mean pairwise Kendall tau between importance rankings across
    /// differently-seeded forests.
    pub mean_pairwise_tau: f64,
    /// Fraction of seeds whose top-3 equals the modal top-3.
    pub top3_stability: f64,
    /// Seeds used.
    pub n_seeds: usize,
}

/// Run the robustness experiment.
pub fn robustness(scale: Scale, base_seed: u64) -> RobustnessExperiment {
    let n_seeds = match scale {
        Scale::Full => 8,
        Scale::Quick => 4,
    };
    let dataset = deal_closing(scale.deal_rows(), base_seed);
    let refs = dataset.driver_refs();
    let session = Session::new(dataset.frame.clone())
        .with_kpi(&dataset.kpi)
        .expect("KPI exists")
        .with_drivers(&refs)
        .expect("drivers exist");
    let mut scores: Vec<Vec<f64>> = Vec::with_capacity(n_seeds);
    let mut top3s: Vec<Vec<String>> = Vec::with_capacity(n_seeds);
    for s in 0..n_seeds {
        let mut cfg = scale.model_config();
        cfg.seed = base_seed.wrapping_add(s as u64 * 101);
        let model = session.train(&cfg).expect("training succeeds");
        let imp = model.driver_importance().expect("model fitted");
        top3s.push(imp.top_k(3).into_iter().map(str::to_owned).collect());
        scores.push(imp.scores.iter().map(|v| v.abs()).collect());
    }
    let mut taus = Vec::new();
    for i in 0..n_seeds {
        for j in (i + 1)..n_seeds {
            taus.push(whatif_stats::kendall_tau(&scores[i], &scores[j]));
        }
    }
    let mean_pairwise_tau = taus.iter().sum::<f64>() / taus.len().max(1) as f64;
    // Modal top-3 set: count agreement with the first seed's set.
    let reference: std::collections::HashSet<&String> = top3s[0].iter().collect();
    let stable = top3s
        .iter()
        .filter(|t| t.iter().collect::<std::collections::HashSet<_>>() == reference)
        .count();
    RobustnessExperiment {
        mean_pairwise_tau,
        top3_stability: stable as f64 / n_seeds as f64,
        n_seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bench_report_is_sane_and_serializable() {
        let r = store_bench(Scale::Quick, 7);
        assert_eq!(r.n_sessions, 4);
        assert!(r.train_once_ms > 0.0);
        assert!(r.per_session_train_ms > 0.0);
        assert!(
            r.share_ms < r.per_session_train_ms,
            "a share ({} ms) must undercut a training ({} ms)",
            r.share_ms,
            r.per_session_train_ms
        );
        assert!(
            r.train_dedup_speedup > 1.0,
            "dedup speedup {}",
            r.train_dedup_speedup
        );
        assert!(r.locked_dispatch_ms > 0.0 && r.lock_free_dispatch_ms > 0.0);
        // The emitter roundtrips through JSON.
        let json = serde_json::to_string(&r).unwrap();
        let back: StoreBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_sessions, r.n_sessions);
        assert_eq!(back.train_dedup_speedup, r.train_dedup_speedup);
    }

    #[test]
    fn train_bench_report_is_sane_and_serializable() {
        let r = train_bench(Scale::Quick, 7);
        assert!(r.n_rows > 0 && r.n_features > 0 && r.n_trees > 0);
        assert!(r.classifier_reference_ms > 0.0 && r.classifier_presorted_ms > 0.0);
        assert!(r.regressor_reference_ms > 0.0 && r.regressor_presorted_ms > 0.0);
        // In release builds the presorted trainer must not lose to the
        // seed trainer even at quick scale (guards against silent
        // regressions); debug builds pay bounds checks the seed's
        // sort-heavy path amortizes, so only sanity is asserted there.
        if cfg!(debug_assertions) {
            assert!(r.classifier_speedup > 0.0 && r.regressor_speedup > 0.0);
        } else {
            assert!(
                r.classifier_speedup > 1.0,
                "classifier speedup {}",
                r.classifier_speedup
            );
            assert!(r.regressor_speedup > 0.5, "regressor speedup collapsed");
        }
        let json = serde_json::to_string(&r).unwrap();
        let back: TrainBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_trees, r.n_trees);
        assert_eq!(back.classifier_speedup, r.classifier_speedup);
    }

    #[test]
    fn predict_bench_report_is_sane_and_serializable() {
        let r = predict_bench(Scale::Quick, 7);
        assert_eq!(r.n_threads, 1);
        assert!(r.dense_rowmajor_ms > 0.0 && r.dense_treemajor_ms > 0.0);
        assert!(r.overlay_rowmajor_ms > 0.0 && r.overlay_treemajor_ms > 0.0);
        // predict_bench itself asserts old/new bit-identity before
        // timing; here we only guard the ratio direction loosely (and
        // not at all under debug bounds-checking).
        if cfg!(debug_assertions) {
            assert!(r.dense_speedup > 0.0);
        } else {
            assert!(r.dense_speedup > 0.8, "dense speedup {}", r.dense_speedup);
        }
        let json = serde_json::to_string(&r).unwrap();
        let back: PredictBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_rows, r.n_rows);
        assert_eq!(back.dense_speedup, r.dense_speedup);
    }

    #[test]
    fn quick_importance_experiment_matches_paper_shape() {
        let e = fig2_importance(Scale::Quick, 7);
        assert_eq!(e.importance.driver_names.len(), 12);
        // At quick scale at least 2 of the paper's top-3 should surface
        // and the verification measures should broadly agree.
        assert!(e.top3_matches >= 2, "top3 matches {}", e.top3_matches);
        assert!(
            e.verification.tau_pearson > 0.2,
            "tau {}",
            e.verification.tau_pearson
        );
        assert_eq!(e.truth_ranking[0], "Open Marketing Email");
    }

    #[test]
    fn quick_sensitivity_experiment_has_small_positive_uplift() {
        let e = fig2_sensitivity(Scale::Quick, 7);
        assert!(
            e.result.uplift() > -0.01 && e.result.uplift() < 0.08,
            "uplift {:.4}",
            e.result.uplift()
        );
        assert!((e.result.baseline_kpi - e.paper_baseline).abs() < 0.1);
    }

    #[test]
    fn quick_goal_experiment_lifts_kpi_substantially() {
        let e = fig2_goal_inversion(Scale::Quick, 7);
        assert!(
            e.constrained.uplift() > 0.15,
            "constrained uplift {:.4}",
            e.constrained.uplift()
        );
        let ome = e
            .constrained
            .driver_percentages
            .iter()
            .find(|(d, _)| d == "Open Marketing Email")
            .unwrap()
            .1;
        assert!((40.0..=80.0).contains(&ome));
        assert!(e.free.achieved_kpi >= e.constrained.achieved_kpi - 0.05);
    }

    #[test]
    fn fig3_and_rankings_run_quick() {
        let bars = fig3(Scale::Quick);
        assert_eq!(bars.len(), 8);
        let rk = sec4_rankings(Scale::Quick);
        assert!(rk.modal_agreement > 0.3);
    }

    #[test]
    fn u1_marketing_runs_quick() {
        let e = u1_marketing(Scale::Quick, 11);
        assert_eq!(e.importance.driver_names.len(), 5);
        assert_eq!(e.truth_ranking[0], "Internet");
        assert!(e.budget_result.uplift() > 0.0);
        for (_, pct) in &e.budget_result.driver_percentages {
            assert!((-50.0..=50.0).contains(pct), "budget bound violated: {pct}");
        }
        assert!(e.confidence > 0.1, "confidence {}", e.confidence);
    }

    #[test]
    fn u2_retention_removal_changes_ranking() {
        let e = u2_retention(Scale::Quick, 13);
        assert_eq!(e.importance_full.ranked_names()[0], "Days Active");
        assert!(!e
            .importance_reduced
            .driver_names
            .contains(&"Days Active".to_owned()));
        assert!(e.goal.uplift() > 0.0);
        assert!(
            e.importance_full
                .score_of(&e.negative_driver)
                .unwrap()
                .abs()
                > 0.0
        );
    }

    #[test]
    fn u3_deal_runs_quick() {
        let e = u3_deal(Scale::Quick, 7);
        assert!((0.0..=1.0).contains(&e.per_data_baseline));
        assert!(e.per_data_perturbed >= 0.0);
        assert_eq!(e.comparison.len(), 12);
        assert_eq!(e.journey.len(), 12);
        assert!(e.journey.iter().all(|(_, v)| *v >= 0.0));
    }

    #[test]
    fn optimizer_comparison_runs_quick() {
        let rows = optimizer_comparison(Scale::Quick, 7);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.series.len(), 3);
            // Best-so-far KPI is non-decreasing in budget for seeded
            // engines sharing a trajectory prefix... not guaranteed across
            // independent runs, so just check sanity bounds.
            assert!(r.series.iter().all(|(_, k)| (0.0..=1.0).contains(k)));
        }
    }

    #[test]
    fn scenario_grid_overlay_path_matches_clone_path() {
        let (dataset, model) = train_marketing_model(Scale::Quick, 7);
        let specs = scenario_grid(&dataset.drivers, 25, 7);
        assert_eq!(specs.len(), 25);
        let clone_kpis = eval_scenarios_clone_path(&model, &specs);
        let overlay = eval_scenarios_overlay_path(&model, &specs, 4);
        assert_eq!(overlay.len(), 25);
        for (c, o) in clone_kpis.iter().zip(&overlay) {
            assert!(c.to_bits() == o.kpi.to_bits(), "paths diverged");
        }
    }

    #[test]
    fn slider_loop_cached_is_bit_identical_and_hits_on_replay() {
        let (_, model) = train_marketing_model(Scale::Quick, 7);
        let uncached = slider_loop(&model, None, 2);
        let cache = whatif_core::EvalCache::default();
        let cached = slider_loop(&model, Some(&cache), 2);
        assert_eq!(uncached.evaluations, cached.evaluations);
        assert!(
            cached.checksum.to_bits() == uncached.checksum.to_bits(),
            "cached slider loop drifted from uncached"
        );
        // Lap 2 replays lap 1 exactly, so at least half the
        // evaluations hit (the goal seek's probes overlap the sweep
        // stops, so in practice more do).
        assert!(cached.hit_rate >= 0.5, "hit rate {}", cached.hit_rate);
        assert!((0.0..=1.0).contains(&cached.hit_rate));
        assert_eq!(uncached.hit_rate, 0.0);
        let stats = cache.stats();
        assert!(stats.hits > 0 && stats.misses > 0);
    }

    #[test]
    fn robustness_is_high_on_clean_data() {
        let e = robustness(Scale::Quick, 7);
        assert_eq!(e.n_seeds, 4);
        assert!(e.mean_pairwise_tau > 0.4, "tau {}", e.mean_pairwise_tau);
        // Top-3 sets can wobble across seeds — that instability is the
        // §5 robustness finding itself; just require it isn't chaotic.
        assert!(e.top3_stability >= 0.25, "stability {}", e.top3_stability);
    }
}
