//! Reproduce every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p whatif-bench --bin repro --release -- all
//! cargo run -p whatif-bench --bin repro --release -- fig2-sensitivity
//! cargo run -p whatif-bench --bin repro --release -- fig3 --quick
//! ```

use whatif_bench::experiments::{self, Scale};
use whatif_study::questionnaire::{instrument, QuestionCategory};
use whatif_study::render_figure3;

const EXPERIMENTS: &[&str] = &[
    "fig2-importance",
    "fig2-sensitivity",
    "fig2-goal-inversion",
    "table1",
    "fig3",
    "sec4-rankings",
    "u1-marketing",
    "u2-retention",
    "u3-deal",
    "opt-compare",
    "robustness",
    "store",
    "train",
    "predict",
    "wire",
    "obs",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let seed = 7;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() {
        eprintln!("usage: repro [--quick] <experiment|all> ...");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        std::process::exit(2);
    }
    let run_all = wanted.contains(&"all");
    let should = |name: &str| run_all || wanted.contains(&name);
    for name in &wanted {
        if *name != "all" && !EXPERIMENTS.contains(name) {
            eprintln!(
                "unknown experiment {name:?}; known: {}",
                EXPERIMENTS.join(", ")
            );
            std::process::exit(2);
        }
    }

    if should("fig2-importance") {
        fig2_importance(scale, seed);
    }
    if should("fig2-sensitivity") {
        fig2_sensitivity(scale, seed);
    }
    if should("fig2-goal-inversion") {
        fig2_goal_inversion(scale, seed);
    }
    if should("table1") {
        table1();
    }
    if should("fig3") {
        fig3(scale);
    }
    if should("sec4-rankings") {
        sec4_rankings(scale);
    }
    if should("u1-marketing") {
        u1_marketing(scale, seed);
    }
    if should("u2-retention") {
        u2_retention(scale, seed);
    }
    if should("u3-deal") {
        u3_deal(scale, seed);
    }
    if should("opt-compare") {
        opt_compare(scale, seed);
    }
    if should("robustness") {
        robustness(scale, seed);
    }
    if should("store") {
        store(scale, seed);
    }
    if should("train") {
        train(scale, seed);
    }
    if should("predict") {
        predict(scale, seed);
    }
    if should("wire") {
        wire(scale, seed);
    }
    if should("obs") {
        obs(scale, seed);
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn fig2_importance(scale: Scale, seed: u64) {
    header("fig2-importance — Driver Importance Analysis (paper §2 E)");
    let e = experiments::fig2_importance(scale, seed);
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "driver", "model", "pearson", "spearman", "shapley"
    );
    let order = {
        let mut idx: Vec<usize> = (0..e.importance.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            e.importance.scores[b]
                .abs()
                .partial_cmp(&e.importance.scores[a].abs())
                .expect("finite scores")
        });
        idx
    };
    for i in order {
        println!(
            "{:<26} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            e.importance.driver_names[i],
            e.importance.scores[i],
            e.verification.pearson[i],
            e.verification.spearman[i],
            e.verification.shapley[i],
        );
    }
    println!(
        "rank agreement (kendall tau): pearson {:.2}, spearman {:.2}, shapley {:.2}",
        e.verification.tau_pearson, e.verification.tau_spearman, e.verification.tau_shapley
    );
    println!(
        "paper top-3    {:?} -> matched {}/3",
        e.paper_top3, e.top3_matches
    );
    println!(
        "paper bottom-3 {:?} -> matched {}/3",
        e.paper_bottom3, e.bottom3_matches
    );
    println!("ground-truth top-3: {:?}", &e.truth_ranking[..3]);
}

fn fig2_sensitivity(scale: Scale, seed: u64) {
    header("fig2-sensitivity — +40% Open Marketing Email (paper §2 H)");
    let e = experiments::fig2_sensitivity(scale, seed);
    println!("{:<28} {:>10} {:>10}", "quantity", "paper", "measured");
    println!(
        "{:<28} {:>9.2}% {:>9.2}%",
        "baseline deal-close rate",
        100.0 * e.paper_baseline,
        100.0 * e.result.baseline_kpi
    );
    println!(
        "{:<28} {:>9.2}% {:>9.2}%",
        "KPI after +40% OME",
        100.0 * e.paper_kpi,
        100.0 * e.result.perturbed_kpi
    );
    println!(
        "{:<28} {:>8.2}pp {:>8.2}pp",
        "uplift",
        100.0 * e.paper_uplift,
        100.0 * e.result.uplift()
    );
}

fn fig2_goal_inversion(scale: Scale, seed: u64) {
    header("fig2-goal-inversion — constrained OME in [+40%, +80%] (paper §2 I)");
    let e = experiments::fig2_goal_inversion(scale, seed);
    println!("{:<28} {:>10} {:>10}", "quantity", "paper", "measured");
    println!(
        "{:<28} {:>9.2}% {:>9.2}%",
        "constrained max KPI",
        100.0 * e.paper_kpi,
        100.0 * e.constrained.achieved_kpi
    );
    println!(
        "{:<28} {:>8.2}pp {:>8.2}pp",
        "uplift vs original",
        100.0 * e.paper_uplift,
        100.0 * e.constrained.uplift()
    );
    println!(
        "{:<28} {:>10} {:>9.2}%",
        "free-max KPI (no constraint)",
        "-",
        100.0 * e.free.achieved_kpi
    );
    println!(
        "model confidence: {:.3}; evaluations: {}",
        e.constrained.confidence, e.constrained.n_evals
    );
    let ome = e
        .constrained
        .driver_percentages
        .iter()
        .find(|(d, _)| d == "Open Marketing Email")
        .map(|(_, p)| *p)
        .unwrap_or(f64::NAN);
    println!("recommended OME change: {ome:+.1}% (allowed 40..80)");
}

fn table1() {
    header("table1 — study instrument (paper Table 1)");
    for (cat, label) in [
        (QuestionCategory::PreStudy, "Pre-study"),
        (QuestionCategory::Usability, "System usability (Likert 1-5)"),
        (QuestionCategory::OpenEnded, "Open-ended"),
    ] {
        println!("\n[{label}]");
        for q in instrument().iter().filter(|q| q.category == cat) {
            println!("  - {}", q.text);
        }
    }
}

fn fig3(scale: Scale) {
    header("fig3 — usability ratings, paper vs simulated panels (paper Figure 3)");
    let rows = experiments::fig3(scale);
    print!("{}", render_figure3(&rows));
    let mean_abs_dev = rows
        .iter()
        .map(|r| (r.sim_mean - r.paper_mean).abs())
        .sum::<f64>()
        / rows.len() as f64;
    println!("mean |simulated - paper| = {mean_abs_dev:.3} Likert points");
}

fn sec4_rankings(scale: Scale) {
    header("sec4-rankings — functionality usefulness rankings (paper §4)");
    let r = experiments::sec4_rankings(scale);
    println!(
        "{:<36} {:>12} {:>12}",
        "functionality", "mean #first", "mean #last"
    );
    for ((f, first), (_, last)) in r.mean_first_choices.iter().zip(&r.mean_last_choices) {
        println!("{:<36} {:>12.2} {:>12.2}", f.label(), first, last);
    }
    println!(
        "paper modal outcome (3x DriverImportance, 1x Sensitivity, 1x Constrained) reproduced in {:.0}% of panels",
        100.0 * r.modal_agreement
    );
}

fn u1_marketing(scale: Scale, seed: u64) {
    header("u1-marketing — Marketing Mix Modeling (paper §3 U1)");
    let e = experiments::u1_marketing(scale, seed);
    println!(
        "channel importances (model confidence R^2 = {:.3}):",
        e.confidence
    );
    for (name, score) in e.importance.driver_names.iter().zip(&e.importance.scores) {
        println!("  {name:<10} {score:>7.3}");
    }
    println!(
        "ground-truth marginal-impact ranking: {:?}",
        e.truth_ranking
    );
    println!("\nbudget-constrained (±50% per channel) sales maximization:");
    for (channel, pct) in &e.budget_result.driver_percentages {
        println!("  {channel:<10} {pct:>+7.1}%");
    }
    println!(
        "expected mean daily sales: {:.0} -> {:.0} ({:+.1}%)",
        e.budget_result.baseline_kpi,
        e.budget_result.achieved_kpi,
        100.0 * e.budget_result.uplift() / e.budget_result.baseline_kpi
    );
}

fn u2_retention(scale: Scale, seed: u64) {
    header("u2-retention — Customer Retention Analysis (paper §3 U2)");
    let e = experiments::u2_retention(scale, seed);
    println!(
        "top-5 drivers with all columns: {:?}",
        e.importance_full.top_k(5)
    );
    println!(
        "negative driver {:?} score: {:.3}",
        e.negative_driver,
        e.importance_full
            .score_of(&e.negative_driver)
            .unwrap_or(f64::NAN)
    );
    println!(
        "\nafter removing the obvious predictor ({}): top-5 = {:?}",
        e.removed,
        e.importance_reduced.top_k(5)
    );
    println!(
        "retention maximization (without {}): {:.1}% -> {:.1}%",
        e.removed,
        100.0 * e.goal.baseline_kpi,
        100.0 * e.goal.achieved_kpi
    );
}

fn u3_deal(scale: Scale, seed: u64) {
    header("u3-deal — Deal Closing Analysis (paper §3 U3)");
    let e = experiments::u3_deal(scale, seed);
    println!(
        "per-data analysis (prospect #0): close prob {:.3} -> {:.3} after doubling their marketing-email opens",
        e.per_data_baseline, e.per_data_perturbed
    );
    println!("\ndriver leverage (KPI span across -50%..+100% sweep):");
    let mut spans: Vec<(&str, f64)> = e
        .comparison
        .iter()
        .map(|c| (c.driver.as_str(), c.kpi_span()))
        .collect();
    spans.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite spans"));
    for (driver, span) in spans.iter().take(5) {
        println!("  {driver:<26} {span:.4}");
    }
    println!("\n\"ideal customer journey\" (recommended mean activity levels):");
    for (driver, value) in e.journey.iter().take(6) {
        println!("  {driver:<26} {value:>7.2}");
    }
}

fn opt_compare(scale: Scale, seed: u64) {
    header("opt-compare — goal-inversion engines at equal budgets");
    let rows = experiments::optimizer_comparison(scale, seed);
    let budgets: Vec<usize> = rows[0].series.iter().map(|(b, _)| *b).collect();
    print!("{:<14}", "engine");
    for b in &budgets {
        print!(" {:>8}", format!("n={b}"));
    }
    println!();
    for r in &rows {
        print!("{:<14}", r.engine);
        for (_, kpi) in &r.series {
            print!(" {kpi:>8.4}");
        }
        println!();
    }
    println!("(cells are best deal-close KPI found at that evaluation budget)");
}

fn store(scale: Scale, seed: u64) {
    header("store — train-once dedup + lock-free dispatch (ROADMAP scale track)");
    let r = experiments::store_bench(scale, seed);
    println!(
        "train dedup:  {:.2}x over {} sessions ({:.1} ms/train -> {:.3} ms/share)",
        r.train_dedup_speedup, r.n_sessions, r.per_session_train_ms, r.share_ms
    );
    println!(
        "dispatch:     {:.2}x with {} workers x {} evals \
         ({:.1} ms locked -> {:.1} ms lock-free)",
        r.dispatch_speedup,
        r.dispatch_workers,
        r.evals_per_worker,
        r.locked_dispatch_ms,
        r.lock_free_dispatch_ms
    );
    experiments::write_store_bench_json("BENCH_store.json", &r).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
}

fn train(scale: Scale, seed: u64) {
    header("train — presorted vs seed forest training (ROADMAP perf track)");
    let r = experiments::train_bench(scale, seed);
    println!(
        "workload: {} rows x {} features, {} trees, mean of {} reps",
        r.n_rows, r.n_features, r.n_trees, r.reps
    );
    println!(
        "classifier: {:.2}x ({:.1} ms reference -> {:.1} ms presorted)",
        r.classifier_speedup, r.classifier_reference_ms, r.classifier_presorted_ms
    );
    println!(
        "regressor:  {:.2}x ({:.1} ms reference -> {:.1} ms presorted)",
        r.regressor_speedup, r.regressor_reference_ms, r.regressor_presorted_ms
    );
    for row in &r.binned {
        println!(
            "binned {}x{}: {:.2}x ({:.1} ms presorted -> {:.1} ms binned, {} trees, depth {})",
            row.n_rows,
            row.n_features,
            row.speedup,
            row.presorted_ms,
            row.binned_ms,
            row.n_trees,
            row.max_depth
        );
    }
    experiments::write_train_bench_json("BENCH_train.json", &r).expect("write BENCH_train.json");
    println!("wrote BENCH_train.json");
}

fn predict(scale: Scale, seed: u64) {
    header("predict — tree-major flattened vs seed row-major batch prediction");
    let r = experiments::predict_bench(scale, seed);
    println!(
        "workload: {} rows x {} features, {} trees, {} thread(s), mean of {} reps",
        r.n_rows, r.n_features, r.n_trees, r.n_threads, r.reps
    );
    println!(
        "dense:   {:.2}x ({:.2} ms row-major -> {:.2} ms tree-major)",
        r.dense_speedup, r.dense_rowmajor_ms, r.dense_treemajor_ms
    );
    println!(
        "overlay: {:.2}x ({:.2} ms row-major -> {:.2} ms tree-major)",
        r.overlay_speedup, r.overlay_rowmajor_ms, r.overlay_treemajor_ms
    );
    experiments::write_predict_bench_json("BENCH_predict.json", &r)
        .expect("write BENCH_predict.json");
    println!("wrote BENCH_predict.json");
}

fn wire(scale: Scale, seed: u64) {
    header("wire — v2 JSON lines vs v3 columnar frames over loopback TCP");
    let r = experiments::wire_bench(scale, seed);
    println!(
        "model: {} rows, {} trees (tiny on purpose — the bench isolates wire cost)",
        r.n_rows, r.n_trees
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "scenarios",
        "v2 ms",
        "v2 bytes",
        "v3 ms",
        "v3 bytes",
        "v3+lz4 ms",
        "v3+lz4 B",
        "wall x",
        "bytes x"
    );
    for g in &r.grids {
        println!(
            "{:>10} {:>12.1} {:>12} {:>12.1} {:>12} {:>12.1} {:>12} {:>8.1} {:>8.1}",
            g.n_scenarios,
            g.v2_json_ms,
            g.v2_json_bytes,
            g.v3_plain_ms,
            g.v3_plain_bytes,
            g.v3_lz4_ms,
            g.v3_lz4_bytes,
            g.wall_speedup,
            g.bytes_reduction
        );
    }
    experiments::write_wire_bench_json("BENCH_wire.json", &r).expect("write BENCH_wire.json");
    println!("wrote BENCH_wire.json");
}

fn obs(scale: Scale, seed: u64) {
    header("obs — instrumentation overhead on the cached slider hot path");
    let r = experiments::obs_bench(scale, seed);
    println!(
        "model: {} rows, {} trees; {} requests/pass x {} reps, cache hit rate {:.3}",
        r.n_rows, r.n_trees, r.requests, r.reps, r.cache_hit_rate
    );
    println!(
        "envelope path: {:.2} -> {:.2} us/req ({:+.2}% with instrumentation on)",
        r.engine_off_us_per_req, r.engine_on_us_per_req, r.engine_overhead_pct
    );
    println!(
        "json-line path: {:.2} -> {:.2} us/req ({:+.2}% with instrumentation on, target < 2%)",
        r.json_off_us_per_req, r.json_on_us_per_req, r.json_overhead_pct
    );
    experiments::write_obs_bench_json("BENCH_obs.json", &r).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}

fn robustness(scale: Scale, seed: u64) {
    header("robustness — importance stability across model seeds (paper §5)");
    let e = experiments::robustness(scale, seed);
    println!(
        "across {} differently-seeded forests: mean pairwise kendall tau = {:.3}, top-3 set stability = {:.0}%",
        e.n_seeds,
        e.mean_pairwise_tau,
        100.0 * e.top3_stability
    );
}
