//! Basic descriptive statistics, including a streaming (Welford)
//! accumulator for single-pass mean/variance.

/// Arithmetic mean. Returns `NaN` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n−1 denominator). Returns `NaN` for fewer than two
/// values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (n−1 denominator).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population variance (n denominator). Returns `NaN` for empty input.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Skewness (adjusted Fisher–Pearson). Returns `NaN` for fewer than three
/// values or zero variance.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 3 {
        return f64::NAN;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s == 0.0 || !s.is_finite() {
        return f64::NAN;
    }
    let m3 = xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>();
    n / ((n - 1.0) * (n - 2.0)) * m3
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used by the benchmark harness to
/// summarize latency samples without storing them.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`NaN` before the first observation).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Running sample variance (`NaN` before the second observation).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Running sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` before the first).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` before the first).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_short_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(population_variance(&[]).is_nan());
        assert!(skewness(&[1.0, 2.0]).is_nan());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_nan(), "zero variance");
    }

    #[test]
    fn skewness_signs() {
        // Right-skewed data has positive skewness.
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right) > 0.0);
        let left = [10.0, 10.0, 10.0, 9.0, 1.0];
        assert!(skewness(&left) < 0.0);
        // Symmetric data ~ 0.
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&sym).abs() < 1e-12);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn running_stats_empty() {
        let rs = RunningStats::new();
        assert!(rs.mean().is_nan());
        assert!(rs.variance().is_nan());
        assert_eq!(rs.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..3] {
            a.push(x);
        }
        for &x in &xs[3..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert!((a.mean() - mean(&xs)).abs() < 1e-12);
        assert!((a.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 6.0);

        // Merging into empty clones the other side.
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 6);
        // Merging an empty is a no-op.
        let snapshot = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), snapshot);
    }
}
