//! Quantiles with linear interpolation (type-7, the numpy/R default).

/// The `q`-th quantile (`0 ≤ q ≤ 1`) with linear interpolation between
/// order statistics. `NaN` for empty input or `q` outside `[0, 1]`.
///
/// `NaN` input values are ignored.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let h = (v.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (h - lo as f64) * (v[hi] - v[lo])
    }
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Interquartile range (q75 − q25).
pub fn iqr(xs: &[f64]) -> f64 {
    quantile(xs, 0.75) - quantile(xs, 0.25)
}

/// Several quantiles at once over a single sort.
pub fn quantiles(xs: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return vec![f64::NAN; qs.len()];
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    qs.iter()
        .map(|&q| {
            if !(0.0..=1.0).contains(&q) {
                return f64::NAN;
            }
            let h = (v.len() - 1) as f64 * q;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (h - lo as f64) * (v[hi] - v[lo])
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_extremes() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 30.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 0.75), 7.5);
    }

    #[test]
    fn quantile_invalid_inputs() {
        assert!(quantile(&[], 0.5).is_nan());
        assert!(quantile(&[1.0], -0.1).is_nan());
        assert!(quantile(&[1.0], 1.1).is_nan());
    }

    #[test]
    fn nan_values_are_ignored() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), 2.0);
        assert!(median(&[f64::NAN]).is_nan());
    }

    #[test]
    fn iqr_known() {
        let xs: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        assert_eq!(iqr(&xs), 2.0);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        let qs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let batch = quantiles(&xs, &qs);
        for (b, &q) in batch.iter().zip(&qs) {
            assert_eq!(*b, quantile(&xs, q));
        }
        assert!(quantiles(&xs, &[2.0])[0].is_nan());
        assert!(quantiles(&[], &[0.5])[0].is_nan());
    }
}
