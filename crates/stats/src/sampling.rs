//! Seeded sampling utilities: bootstrap, permutation, sampling without
//! replacement, and reservoir sampling.
//!
//! Bootstrap resamples back the forest trainer and the robustness bench;
//! permutations back Shapley estimation and permutation importance.

use rand::seq::SliceRandom;
use rand::Rng;

/// Indices of a bootstrap resample: `n` draws from `0..n` with
/// replacement.
pub fn bootstrap_indices<R: Rng>(rng: &mut R, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n.max(1))).collect()
}

/// Indices in `0..n` that never appear in `sample` — the out-of-bag rows
/// of a bootstrap resample.
pub fn out_of_bag_indices(sample: &[usize], n: usize) -> Vec<usize> {
    let mut seen = vec![false; n];
    for &i in sample {
        if i < n {
            seen[i] = true;
        }
    }
    seen.iter()
        .enumerate()
        .filter_map(|(i, &s)| (!s).then_some(i))
        .collect()
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn permutation<R: Rng>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

/// `k` distinct indices sampled uniformly from `0..n` (partial
/// Fisher–Yates). `k` is clamped to `n`.
pub fn sample_without_replacement<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Reservoir sampling (Algorithm R): a uniform sample of `k` items from a
/// stream of unknown length.
pub fn reservoir_sample<R: Rng, T: Clone>(
    rng: &mut R,
    stream: impl Iterator<Item = T>,
    k: usize,
) -> Vec<T> {
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in stream.enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bootstrap_has_right_length_and_range() {
        let mut r = rng(1);
        let idx = bootstrap_indices(&mut r, 100);
        assert_eq!(idx.len(), 100);
        assert!(idx.iter().all(|&i| i < 100));
        // With replacement: overwhelmingly likely to repeat at n=100.
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < 100);
    }

    #[test]
    fn bootstrap_is_seeded_deterministic() {
        let a = bootstrap_indices(&mut rng(7), 50);
        let b = bootstrap_indices(&mut rng(7), 50);
        assert_eq!(a, b);
        let c = bootstrap_indices(&mut rng(8), 50);
        assert_ne!(a, c);
    }

    #[test]
    fn oob_complements_bootstrap() {
        let sample = vec![0, 0, 2, 2, 4];
        let oob = out_of_bag_indices(&sample, 5);
        assert_eq!(oob, vec![1, 3]);
        // OOB fraction approaches 1/e ~ 0.368 for large n.
        let mut r = rng(3);
        let n = 10_000;
        let s = bootstrap_indices(&mut r, n);
        let frac = out_of_bag_indices(&s, n).len() as f64 / n as f64;
        assert!((frac - 0.368).abs() < 0.02, "oob fraction {frac}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = rng(5);
        let p = permutation(&mut r, 20);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn without_replacement_distinct() {
        let mut r = rng(9);
        let s = sample_without_replacement(&mut r, 10, 4);
        assert_eq!(s.len(), 4);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        // k > n clamps.
        let s = sample_without_replacement(&mut r, 3, 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn reservoir_size_and_uniformity() {
        let mut r = rng(11);
        let s = reservoir_sample(&mut r, 0..100, 10);
        assert_eq!(s.len(), 10);
        assert!(reservoir_sample(&mut r, 0..100, 0).is_empty());
        let s = reservoir_sample(&mut r, 0..3, 10);
        assert_eq!(s.len(), 3, "short stream keeps all items");

        // Rough uniformity: each item appears with p = k/n.
        let mut counts = vec![0u32; 20];
        for seed in 0..2000 {
            let mut r = rng(seed);
            for v in reservoir_sample(&mut r, 0..20, 5) {
                counts[v] += 1;
            }
        }
        let expected = 2000.0 * 5.0 / 20.0; // 500
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < 100.0,
                "count {c} too far from {expected}"
            );
        }
    }
}
