//! Ranking utilities and rank-agreement metrics.
//!
//! SystemD verifies model importances against rank-based measures (§2 E);
//! [`kendall_tau`] and [`top_k_overlap`] quantify how well two importance
//! orderings agree — the same check the paper performs by eye.

/// Assign 1-based *average ranks* (ties share the mean of the positions
/// they span), the convention Spearman's rho uses.
///
/// `NaN` values rank last (after all numbers), tied among themselves.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        xs[i]
            .partial_cmp(&xs[j])
            .unwrap_or_else(|| match (xs[i].is_nan(), xs[j].is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => std::cmp::Ordering::Equal,
            })
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        let same = |a: f64, b: f64| a == b || (a.is_nan() && b.is_nan());
        while j + 1 < n && same(xs[order[j + 1]], xs[order[i]]) {
            j += 1;
        }
        // Positions i..=j (0-based) share rank mean of (i+1)..=(j+1).
        let avg = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Kendall's tau-b rank correlation between two paired samples.
///
/// Handles ties via the tau-b normalization. Returns `NaN` for fewer than
/// two pairs or mismatched lengths, or when one side is constant.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let n = xs.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            if dx == 0.0 && dy == 0.0 {
                // tied in both: contributes to neither
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if (dx > 0.0) == (dy > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    // Count fully tied pairs per side for tau-b denominators.
    let denom_x = n0 - count_tied_pairs(xs) as f64;
    let denom_y = n0 - count_tied_pairs(ys) as f64;
    let _ = (ties_x, ties_y);
    if denom_x <= 0.0 || denom_y <= 0.0 {
        return f64::NAN;
    }
    (concordant - discordant) as f64 / (denom_x * denom_y).sqrt()
}

fn count_tied_pairs(xs: &[f64]) -> i64 {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut total = 0i64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as i64;
        total += t * (t - 1) / 2;
        i = j + 1;
    }
    total
}

/// Fraction of shared items between the top-`k` of two score vectors
/// (by descending score). `1.0` means identical top-k sets.
///
/// Returns `NaN` if `k == 0` or either input is shorter than `k`.
pub fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    if k == 0 || a.len() < k || b.len() < k || a.len() != b.len() {
        return f64::NAN;
    }
    let top = |xs: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| {
            xs[j]
                .partial_cmp(&xs[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    };
    let ta = top(a);
    let tb = top(b);
    let overlap = ta.iter().filter(|i| tb.contains(i)).count();
    overlap as f64 / k as f64
}

/// Indices sorted by descending absolute score — the "importance order"
/// used across the importance views.
pub fn descending_abs_order(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&i, &j| {
        scores[j]
            .abs()
            .partial_cmp(&scores[i].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks() {
        assert_eq!(average_ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn tied_ranks_average() {
        // [1, 2, 2, 3] -> ranks [1, 2.5, 2.5, 4]
        assert_eq!(
            average_ranks(&[1.0, 2.0, 2.0, 3.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        // All tied.
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn nan_ranks_last() {
        let r = average_ranks(&[f64::NAN, 1.0, 2.0]);
        assert_eq!(r[1], 1.0);
        assert_eq!(r[2], 2.0);
        assert_eq!(r[0], 3.0);
    }

    #[test]
    fn kendall_perfect_agreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&x, &y) - 1.0).abs() < 1e-12);
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&x, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_with_ties_is_bounded() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        let tau = kendall_tau(&x, &y);
        assert!(tau > 0.0 && tau <= 1.0);
    }

    #[test]
    fn kendall_degenerate_inputs() {
        assert!(kendall_tau(&[1.0], &[1.0]).is_nan());
        assert!(kendall_tau(&[1.0, 2.0], &[1.0]).is_nan());
        assert!(
            kendall_tau(&[2.0, 2.0], &[1.0, 3.0]).is_nan(),
            "constant side"
        );
    }

    #[test]
    fn kendall_known_value() {
        // Classic example: one discordant pair among four items.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 4.0, 3.0];
        // 5 concordant, 1 discordant => tau = 4/6
        assert!((kendall_tau(&x, &y) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_overlap_basics() {
        let a = [0.9, 0.1, 0.8, 0.2];
        let b = [0.8, 0.2, 0.9, 0.1];
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0); // {0,2} both
        let c = [0.1, 0.9, 0.2, 0.8];
        assert_eq!(top_k_overlap(&a, &c, 2), 0.0);
        assert!(top_k_overlap(&a, &b, 0).is_nan());
        assert!(top_k_overlap(&a, &b, 9).is_nan());
    }

    #[test]
    fn descending_abs_order_uses_magnitude() {
        let scores = [0.1, -0.9, 0.5];
        assert_eq!(descending_abs_order(&scores), vec![1, 2, 0]);
    }

    #[test]
    fn ranks_roundtrip_via_sort() {
        // rank of sorted data is identity.
        let xs = [3.0, 1.0, 2.0];
        let r = average_ranks(&xs);
        let mut pairs: Vec<(f64, f64)> = xs.iter().copied().zip(r).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(
            pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }
}
