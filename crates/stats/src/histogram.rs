//! Equal-width histograms (backing data for the comparison-analysis view)
//! and quantile bin assignment (backing the learn crate's binned trainer).
//!
//! The two binning strategies are intentionally different and stay
//! separate: [`Histogram`] uses **equal-width** bins because the
//! comparison view plots value *ranges* on a linear axis, where uneven
//! bin widths would distort the picture; [`quantile_run_bins`] produces
//! **equal-count** (quantile) bins because split finding wants roughly
//! the same number of rows per bin — a skewed feature would otherwise
//! dump most rows into a handful of wide bins and starve the split scan
//! of candidate boundaries.

/// An equal-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub min: f64,
    /// Inclusive upper bound of the last bin.
    pub max: f64,
    /// Count per bin.
    pub counts: Vec<u64>,
    /// Number of values outside `[min, max]` or NaN.
    pub n_ignored: u64,
}

impl Histogram {
    /// Build a histogram with `n_bins` equal-width bins over `[min, max]`.
    ///
    /// Values outside the range (and NaNs) are counted in `n_ignored`.
    /// Returns `None` when `n_bins == 0` or the range is empty/invalid.
    pub fn new(xs: &[f64], min: f64, max: f64, n_bins: usize) -> Option<Histogram> {
        if n_bins == 0 || max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let width = (max - min) / n_bins as f64;
        let mut counts = vec![0u64; n_bins];
        let mut ignored = 0u64;
        for &x in xs {
            if x.is_nan() || x < min || x > max {
                ignored += 1;
                continue;
            }
            // The max value belongs to the last bin.
            let bin = (((x - min) / width) as usize).min(n_bins - 1);
            counts[bin] += 1;
        }
        Some(Histogram {
            min,
            max,
            counts,
            n_ignored: ignored,
        })
    }

    /// Histogram spanning the data's own min/max.
    /// Returns `None` for empty/degenerate (constant or all-NaN) data.
    pub fn auto(xs: &[f64], n_bins: usize) -> Option<Histogram> {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Histogram::new(xs, min, max, n_bins)
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total of all bin counts.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.n_bins() as f64;
        (
            self.min + width * i as f64,
            self.min + width * (i + 1) as f64,
        )
    }
}

/// Assign each *run* of equal values in a sorted sequence to a quantile
/// bin, using at most `max_bins` bins.
///
/// `run_counts[i]` is the number of occurrences of the `i`-th distinct
/// value in ascending order; the return value maps each run to its bin
/// id (non-decreasing, starting at 0). Runs are atomic — equal values
/// never straddle a bin boundary, so a run larger than the per-bin
/// target simply produces an oversized bin. When there are no more runs
/// than `max_bins`, every distinct value gets its own bin (the
/// assignment is exact, not approximate). `max_bins` is clamped to at
/// least 1; the result never uses more than `max_bins` bins (each
/// closed bin holds at least `ceil(total / max_bins)` elements, so at
/// most `max_bins - 1` bins close before the remainder).
///
/// This is the bin-edge rule of the learn crate's histogram-binned
/// trainer; see the module docs for why it is *not* shared with the
/// equal-width [`Histogram`].
pub fn quantile_run_bins(run_counts: &[usize], max_bins: usize) -> Vec<u32> {
    let max_bins = max_bins.max(1);
    if run_counts.len() <= max_bins {
        return (0..run_counts.len() as u32).collect();
    }
    let total: usize = run_counts.iter().sum();
    let target = total.div_ceil(max_bins);
    let mut bins = Vec::with_capacity(run_counts.len());
    let mut bin = 0u32;
    let mut in_bin = 0usize;
    for &c in run_counts {
        // Close the current bin once it has met the quantile target;
        // the incoming run starts the next one.
        if in_bin >= target {
            bin += 1;
            in_bin = 0;
        }
        bins.push(bin);
        in_bin += c;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_bins() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0];
        let h = Histogram::new(&xs, 0.0, 2.0, 2).unwrap();
        assert_eq!(h.counts, vec![2, 3]); // [0,1): {0,0.5}; [1,2]: {1,1.5,2}
        assert_eq!(h.total(), 5);
        assert_eq!(h.n_ignored, 0);
    }

    #[test]
    fn max_value_goes_to_last_bin() {
        let h = Histogram::new(&[10.0], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.counts[4], 1);
    }

    #[test]
    fn out_of_range_and_nan_ignored() {
        let xs = [-1.0, 0.5, 99.0, f64::NAN];
        let h = Histogram::new(&xs, 0.0, 1.0, 1).unwrap();
        assert_eq!(h.total(), 1);
        assert_eq!(h.n_ignored, 3);
    }

    #[test]
    fn invalid_configs_return_none() {
        assert!(Histogram::new(&[1.0], 0.0, 1.0, 0).is_none());
        assert!(Histogram::new(&[1.0], 1.0, 1.0, 3).is_none());
        assert!(Histogram::new(&[1.0], 2.0, 1.0, 3).is_none());
    }

    #[test]
    fn auto_spans_data() {
        let xs = [1.0, 2.0, 3.0];
        let h = Histogram::auto(&xs, 2).unwrap();
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.total(), 3);
        assert!(Histogram::auto(&[], 2).is_none());
        assert!(Histogram::auto(&[5.0, 5.0], 2).is_none(), "constant data");
    }

    #[test]
    fn bin_edges_are_uniform() {
        let h = Histogram::new(&[], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn quantile_runs_constant_feature_is_one_bin() {
        // One run (a constant feature) can only ever form one bin.
        assert_eq!(quantile_run_bins(&[1000], 256), vec![0]);
        assert_eq!(quantile_run_bins(&[], 256), Vec::<u32>::new());
    }

    #[test]
    fn quantile_runs_few_distinct_values_bin_exactly() {
        // Fewer distinct values than bins: one bin per value, even with
        // wildly uneven counts.
        let bins = quantile_run_bins(&[990, 1, 9], 256);
        assert_eq!(bins, vec![0, 1, 2]);
    }

    #[test]
    fn quantile_runs_respect_max_bins_and_monotonicity() {
        // 1000 singleton runs into 256 bins: ceil(1000/256) = 4 per bin.
        let runs = vec![1usize; 1000];
        let bins = quantile_run_bins(&runs, 256);
        let n_bins = *bins.last().unwrap() as usize + 1;
        assert!(n_bins <= 256, "{n_bins} bins");
        assert!(n_bins >= 250, "{n_bins} bins"); // evenly spread
        assert!(bins.windows(2).all(|w| w[0] <= w[1] && w[1] - w[0] <= 1));
        // Every closed bin holds at least the quantile target.
        for b in 0..n_bins - 1 {
            let size: usize = bins
                .iter()
                .zip(&runs)
                .filter(|(&bin, _)| bin as usize == b)
                .map(|(_, &c)| c)
                .sum();
            assert!(size >= 4, "bin {b} holds {size}");
        }
    }

    #[test]
    fn quantile_runs_keep_oversized_runs_atomic() {
        // A run bigger than the target stays in one bin; neighbors
        // still get their own bins afterwards.
        let bins = quantile_run_bins(&[1, 500, 1, 1, 1], 3);
        assert_eq!(bins[0], bins[1], "big run joins the open bin");
        assert!(bins[2] > bins[1], "bin closes after the oversized run");
        let n_bins = *bins.last().unwrap() + 1;
        assert!(n_bins <= 3);
    }

    #[test]
    fn quantile_runs_zero_max_bins_clamps_to_one() {
        let bins = quantile_run_bins(&[3, 4, 5], 0);
        assert_eq!(bins, vec![0, 0, 0]);
    }
}
