//! Equal-width histograms (backing data for the comparison-analysis view).

/// An equal-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub min: f64,
    /// Inclusive upper bound of the last bin.
    pub max: f64,
    /// Count per bin.
    pub counts: Vec<u64>,
    /// Number of values outside `[min, max]` or NaN.
    pub n_ignored: u64,
}

impl Histogram {
    /// Build a histogram with `n_bins` equal-width bins over `[min, max]`.
    ///
    /// Values outside the range (and NaNs) are counted in `n_ignored`.
    /// Returns `None` when `n_bins == 0` or the range is empty/invalid.
    pub fn new(xs: &[f64], min: f64, max: f64, n_bins: usize) -> Option<Histogram> {
        if n_bins == 0 || max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let width = (max - min) / n_bins as f64;
        let mut counts = vec![0u64; n_bins];
        let mut ignored = 0u64;
        for &x in xs {
            if x.is_nan() || x < min || x > max {
                ignored += 1;
                continue;
            }
            // The max value belongs to the last bin.
            let bin = (((x - min) / width) as usize).min(n_bins - 1);
            counts[bin] += 1;
        }
        Some(Histogram {
            min,
            max,
            counts,
            n_ignored: ignored,
        })
    }

    /// Histogram spanning the data's own min/max.
    /// Returns `None` for empty/degenerate (constant or all-NaN) data.
    pub fn auto(xs: &[f64], n_bins: usize) -> Option<Histogram> {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Histogram::new(xs, min, max, n_bins)
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total of all bin counts.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.n_bins() as f64;
        (
            self.min + width * i as f64,
            self.min + width * (i + 1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_bins() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0];
        let h = Histogram::new(&xs, 0.0, 2.0, 2).unwrap();
        assert_eq!(h.counts, vec![2, 3]); // [0,1): {0,0.5}; [1,2]: {1,1.5,2}
        assert_eq!(h.total(), 5);
        assert_eq!(h.n_ignored, 0);
    }

    #[test]
    fn max_value_goes_to_last_bin() {
        let h = Histogram::new(&[10.0], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.counts[4], 1);
    }

    #[test]
    fn out_of_range_and_nan_ignored() {
        let xs = [-1.0, 0.5, 99.0, f64::NAN];
        let h = Histogram::new(&xs, 0.0, 1.0, 1).unwrap();
        assert_eq!(h.total(), 1);
        assert_eq!(h.n_ignored, 3);
    }

    #[test]
    fn invalid_configs_return_none() {
        assert!(Histogram::new(&[1.0], 0.0, 1.0, 0).is_none());
        assert!(Histogram::new(&[1.0], 1.0, 1.0, 3).is_none());
        assert!(Histogram::new(&[1.0], 2.0, 1.0, 3).is_none());
    }

    #[test]
    fn auto_spans_data() {
        let xs = [1.0, 2.0, 3.0];
        let h = Histogram::auto(&xs, 2).unwrap();
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.total(), 3);
        assert!(Histogram::auto(&[], 2).is_none());
        assert!(Histogram::auto(&[5.0, 5.0], 2).is_none(), "constant data");
    }

    #[test]
    fn bin_edges_are_uniform() {
        let h = Histogram::new(&[], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }
}
