//! Pearson and Spearman correlation — two of the three "traditional
//! measures" SystemD uses to verify model importances (§2 E).

use crate::describe::mean;
use crate::rank::average_ranks;

/// Sample covariance (n−1 denominator). `NaN` for fewer than two pairs or
/// mismatched lengths.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let s: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    s / (xs.len() - 1) as f64
}

/// Pearson product-moment correlation coefficient in `[-1, 1]`.
///
/// `NaN` when either side is constant, lengths mismatch, or fewer than two
/// pairs are given.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    // Clamp: floating error can push |r| epsilon past 1.
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

/// Spearman rank correlation: Pearson over average ranks, which makes it
/// correct under ties (unlike the `1 − 6Σd²/(n(n²−1))` shortcut).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    pearson(&rx, &ry)
}

/// Full Pearson correlation matrix of the given columns
/// (row-major `k × k`; diagonal is 1 where defined).
pub fn pearson_matrix(columns: &[&[f64]]) -> Vec<f64> {
    let k = columns.len();
    let mut m = vec![f64::NAN; k * k];
    for i in 0..k {
        for j in i..k {
            let r = if i == j {
                if columns[i].len() >= 2 {
                    1.0
                } else {
                    f64::NAN
                }
            } else {
                pearson(columns[i], columns[j])
            };
            m[i * k + j] = r;
            m[j * k + i] = r;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_known_value() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        // var(x) = 5/3; cov(x, 2x) = 2 * var(x)
        assert!((covariance(&x, &y) - 10.0 / 3.0).abs() < 1e-12);
        assert!(covariance(&x, &y[..2]).is_nan());
        assert!(covariance(&[1.0], &[1.0]).is_nan());
    }

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yneg: Vec<f64> = x.iter().map(|v| -2.0 * v + 5.0).collect();
        assert!((pearson(&x, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed example.
        let x = [1.0, 2.0, 3.0, 5.0, 8.0];
        let y = [0.11, 0.12, 0.13, 0.15, 0.18];
        let r = pearson(&x, &y);
        assert!((r - 1.0).abs() < 1e-9, "y is affine in x: r = {r}");
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // Orthogonal-ish pattern.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&x, &y).abs() < 0.5);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let rho = spearman(&x, &y);
        assert!(rho > 0.9 && rho <= 1.0);
    }

    #[test]
    fn spearman_reversal() {
        let x = [1.0, 2.0, 3.0];
        let y = [9.0, 5.0, 1.0];
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        let c = [1.0, 3.0, 2.0, 4.0];
        let m = pearson_matrix(&[&a, &b, &c]);
        let k = 3;
        for i in 0..k {
            assert!((m[i * k + i] - 1.0).abs() < 1e-12);
            for j in 0..k {
                assert_eq!(m[i * k + j].to_bits(), m[j * k + i].to_bits());
            }
        }
        assert!((m[1] + 1.0).abs() < 1e-12, "a vs b perfectly negative");
    }
}
