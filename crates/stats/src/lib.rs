//! # whatif-stats
//!
//! Descriptive and correlation statistics substrate for the SystemD
//! what-if reproduction (CIDR 2022).
//!
//! The paper cross-checks model-derived driver importances "using
//! traditional measures such as Shapley, Pearson, and Spearman rank"
//! (§2 E). This crate provides those traditional measures plus the
//! sampling utilities the rest of the workspace builds on:
//!
//! * [`correlation`] — Pearson and tie-corrected Spearman coefficients,
//!   covariance, correlation matrices.
//! * [`rank`] — average-rank assignment (shared with Spearman) and rank
//!   agreement metrics (Kendall tau, top-k overlap) used to *verify* that
//!   different importance measures tell the same story.
//! * [`describe`] — streaming mean/variance (Welford), moments.
//! * [`quantile`] — quantiles with linear interpolation, histograms.
//! * [`sampling`] — seeded bootstrap / permutation / reservoir sampling.
//! * [`distributions`] — normal/lognormal/Poisson samplers built on
//!   `rand` uniforms (Box–Muller, Knuth), used by `whatif-datagen`.

pub mod correlation;
pub mod describe;
pub mod distributions;
pub mod histogram;
pub mod quantile;
pub mod rank;
pub mod sampling;

pub use correlation::{covariance, pearson, pearson_matrix, spearman};
pub use describe::{mean, std_dev, variance, RunningStats};
pub use histogram::{quantile_run_bins, Histogram};
pub use quantile::{median, quantile};
pub use rank::{average_ranks, kendall_tau, top_k_overlap};
