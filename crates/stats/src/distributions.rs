//! Random variate generation on top of `rand` uniforms.
//!
//! `whatif-datagen` builds its business datasets from these samplers;
//! implementing them here (Box–Muller, Knuth, inverse-CDF) keeps the
//! workspace free of external distribution crates.

use rand::Rng;

/// Standard normal variate via Box–Muller (polar-free, two uniforms).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
/// Negative `std_dev` is treated as zero.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev.max(0.0) * standard_normal(rng)
}

/// Log-normal variate: `exp(N(mu, sigma))` in log space.
pub fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Poisson variate.
///
/// Knuth's product method for `lambda < 30`; normal approximation
/// (rounded, clamped at zero) above, which keeps sampling O(1) for the
/// large rates the activity generators use.
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Exponential variate with the given rate (`lambda > 0`); returns `NaN`
/// for non-positive rates.
pub fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::NAN;
    }
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Uniform variate in `[lo, hi)` (degenerate ranges return `lo`).
pub fn uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo..hi)
}

/// Logistic sigmoid, `1 / (1 + e^{-x})` — the link function of the
/// synthetic classification ground truths.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Algebraically identical; avoids exp overflow for very negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(1);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        assert!(mean(&xs).abs() < 0.02, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.02, "std {}", std_dev(&xs));
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut r = rng(2);
        let xs: Vec<f64> = (0..100_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
        // Negative sigma behaves like zero.
        assert_eq!(normal(&mut r, 3.0, -1.0), 3.0);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng(3);
        assert!((0..1000).all(|_| log_normal(&mut r, 0.0, 1.0) > 0.0));
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut r = rng(4);
        let xs: Vec<f64> = (0..100_000).map(|_| poisson(&mut r, 4.0) as f64).collect();
        assert!((mean(&xs) - 4.0).abs() < 0.05);
        // Variance equals mean for Poisson.
        assert!((std_dev(&xs).powi(2) - 4.0).abs() < 0.15);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut r = rng(5);
        let xs: Vec<f64> = (0..50_000).map(|_| poisson(&mut r, 100.0) as f64).collect();
        assert!((mean(&xs) - 100.0).abs() < 0.5);
        assert!((std_dev(&xs) - 10.0).abs() < 0.3);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng(6);
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng(7);
        let hits = (0..100_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "freq {f}");
        assert!(!bernoulli(&mut r, -1.0));
        assert!(bernoulli(&mut r, 2.0));
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng(8);
        let xs: Vec<f64> = (0..100_000).map(|_| exponential(&mut r, 2.0)).collect();
        assert!((mean(&xs) - 0.5).abs() < 0.01);
        assert!(exponential(&mut r, 0.0).is_nan());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng(9);
        for _ in 0..1000 {
            let x = uniform(&mut r, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        assert_eq!(uniform(&mut r, 1.0, 1.0), 1.0);
        assert_eq!(uniform(&mut r, 2.0, 1.0), 2.0);
    }

    #[test]
    fn sigmoid_properties() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(30.0) > 0.999999);
        assert!(sigmoid(-30.0) < 1e-6);
        // Symmetry: s(-x) = 1 - s(x).
        for x in [-3.0, -1.0, 0.5, 2.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
        // No overflow at extreme inputs.
        assert_eq!(sigmoid(-1e9), 0.0);
        assert_eq!(sigmoid(1e9), 1.0);
    }
}
