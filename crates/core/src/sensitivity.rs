//! Sensitivity Analysis (paper §2 H, Figure 2 H): perturb the data,
//! re-run the model, compare KPIs — plus the two auxiliary features the
//! paper describes, comparison analysis (per-driver sweeps) and
//! per-data analysis (single data point).

use crate::error::Result;
use crate::model_backend::TrainedModel;
use crate::perturbation::{PerturbationKind, PerturbationPlan, PerturbationSet};
use serde::{Deserialize, Serialize};

/// The blue bar / yellow bar pair of the sensitivity view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityResult {
    /// KPI column name.
    pub kpi_name: String,
    /// KPI on the original dataset (static blue bar).
    pub baseline_kpi: f64,
    /// KPI on the perturbed dataset (interactive yellow bar).
    pub perturbed_kpi: f64,
    /// The perturbations that produced it.
    pub perturbations: PerturbationSet,
}

impl SensitivityResult {
    /// Up-lift (positive, green) or down-lift (negative, red).
    pub fn uplift(&self) -> f64 {
        self.perturbed_kpi - self.baseline_kpi
    }

    /// Whether the perturbation improved the KPI.
    pub fn is_uplift(&self) -> bool {
        self.uplift() > 0.0
    }
}

/// One driver's KPI trend across a range of percentage perturbations
/// (the comparison-analysis feature: "the KPI achieved for every driver
/// individually across a range of perturbations").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonCurve {
    /// Driver name.
    pub driver: String,
    /// Percentage perturbations applied (x-axis).
    pub percentages: Vec<f64>,
    /// KPI at each perturbation (y-axis).
    pub kpi_values: Vec<f64>,
}

impl ComparisonCurve {
    /// KPI range covered by the sweep — a cheap single-number
    /// sensitivity summary for ranking drivers by leverage.
    pub fn kpi_span(&self) -> f64 {
        let max = self
            .kpi_values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self
            .kpi_values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        max - min
    }
}

/// Per-data sensitivity: the effect of perturbing one data point
/// (e.g. one prospect) on its own predicted KPI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerDataSensitivity {
    /// Row index of the data point.
    pub row: usize,
    /// Prediction on the original row.
    pub baseline: f64,
    /// Prediction on the perturbed row.
    pub perturbed: f64,
}

impl PerDataSensitivity {
    /// Prediction change for this data point.
    pub fn uplift(&self) -> f64 {
        self.perturbed - self.baseline
    }
}

impl TrainedModel {
    /// Dataset-level sensitivity: apply the perturbations to every row
    /// and compare mean-prediction KPIs.
    ///
    /// # Errors
    /// [`crate::CoreError::Config`] for invalid perturbations.
    pub fn sensitivity(&self, set: &PerturbationSet) -> Result<SensitivityResult> {
        self.sensitivity_with(set, None).map(|(result, _)| result)
    }

    /// The one sensitivity implementation behind both the plain and the
    /// cached entry points — evaluation goes through the cache when one
    /// is supplied, so the two paths cannot drift apart.
    pub(crate) fn sensitivity_with(
        &self,
        set: &PerturbationSet,
        cache: Option<&crate::cached::EvalCache>,
    ) -> Result<(SensitivityResult, bool)> {
        let plan = self.compile_perturbations(set)?;
        let (perturbed_kpi, cached) = self.kpi_for_plan_maybe(&plan, cache)?;
        Ok((
            SensitivityResult {
                kpi_name: self.kpi_name().to_owned(),
                baseline_kpi: self.baseline_kpi(),
                perturbed_kpi,
                perturbations: set.clone(),
            },
            cached,
        ))
    }

    /// Comparison analysis: sweep each driver individually over the
    /// given percentage perturbations.
    ///
    /// Every grid point is a single-column [`PerturbationPlan`] applied
    /// through a copy-on-write overlay: no per-point `PerturbationSet`
    /// allocation, no re-validation, no full-matrix clone.
    ///
    /// # Errors
    /// Propagated prediction errors.
    pub fn comparison_analysis(&self, percentages: &[f64]) -> Result<Vec<ComparisonCurve>> {
        self.comparison_with(percentages, None)
            .map(|(curves, _)| curves)
    }

    /// The one comparison-sweep implementation behind both entry
    /// points; the flag is true only when a non-empty grid was served
    /// entirely from the supplied cache.
    pub(crate) fn comparison_with(
        &self,
        percentages: &[f64],
        cache: Option<&crate::cached::EvalCache>,
    ) -> Result<(Vec<ComparisonCurve>, bool)> {
        let n_cols = self.driver_names().len();
        let mut curves = Vec::with_capacity(n_cols);
        let mut all_hit = true;
        for (j, driver) in self.driver_names().iter().enumerate() {
            let mut kpi_values = Vec::with_capacity(percentages.len());
            for &pct in percentages {
                let plan =
                    PerturbationPlan::single(j, PerturbationKind::Percentage(pct), true, n_cols);
                let (kpi, hit) = self.kpi_for_plan_maybe(&plan, cache)?;
                all_hit &= hit;
                kpi_values.push(kpi);
            }
            curves.push(ComparisonCurve {
                driver: driver.clone(),
                percentages: percentages.to_vec(),
                kpi_values,
            });
        }
        // An empty grid performed no lookups; never report it cached.
        let looked_up = n_cols > 0 && !percentages.is_empty();
        Ok((curves, looked_up && all_hit))
    }

    /// Bounds-check a per-data row index (shared by the plain and
    /// cached per-data paths).
    pub(crate) fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.matrix().n_rows() {
            return Err(crate::error::CoreError::Config(format!(
                "row {row} out of range ({} rows)",
                self.matrix().n_rows()
            )));
        }
        Ok(())
    }

    /// Per-data analysis: perturb a single data point and report its
    /// prediction change.
    ///
    /// # Errors
    /// [`crate::CoreError::Config`] for an out-of-range row or invalid
    /// perturbations.
    pub fn per_data_sensitivity(
        &self,
        row: usize,
        set: &PerturbationSet,
    ) -> Result<PerDataSensitivity> {
        self.check_row(row)?;
        let plan = self.compile_perturbations(set)?;
        self.per_data_for_plan(row, &plan)
    }

    /// The per-data evaluation core over an already-checked row and
    /// already-compiled plan (shared by the plain and cached paths, so
    /// a cached miss never re-validates or re-compiles).
    pub(crate) fn per_data_for_plan(
        &self,
        row: usize,
        plan: &PerturbationPlan,
    ) -> Result<PerDataSensitivity> {
        let original = self.matrix().row(row).to_vec();
        let mut perturbed_row = original.clone();
        plan.apply_to_row(&mut perturbed_row);
        Ok(PerDataSensitivity {
            row,
            baseline: self.predict_row(&original)?,
            perturbed: self.predict_row(&perturbed_row)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use crate::model_backend::{ModelConfig, TrainedModel};
    use crate::perturbation::Perturbation;
    use whatif_learn::Matrix;

    /// Exact linear model: y = 2*a - b + 5.
    fn model() -> TrainedModel {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, ((i * 3) % 6) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 5.0).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into(), "b".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn percentage_uplift_matches_linear_math() {
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]);
        let s = m.sensitivity(&set).unwrap();
        // mean(a) = 4.5; +10% adds 0.45 to a, 0.9 to y.
        assert!((s.uplift() - 0.9).abs() < 1e-6, "uplift {}", s.uplift());
        assert!(s.is_uplift());
        assert_eq!(s.kpi_name, "y");
    }

    #[test]
    fn negative_driver_gives_downlift() {
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::absolute("b", 1.0)]);
        let s = m.sensitivity(&set).unwrap();
        assert!((s.uplift() + 1.0).abs() < 1e-6);
        assert!(!s.is_uplift());
    }

    #[test]
    fn empty_perturbation_is_identity() {
        let m = model();
        let s = m.sensitivity(&PerturbationSet::new(vec![])).unwrap();
        assert!((s.uplift()).abs() < 1e-12);
    }

    #[test]
    fn comparison_curves_cover_all_drivers() {
        let m = model();
        let pct = vec![-20.0, 0.0, 20.0];
        let curves = m.comparison_analysis(&pct).unwrap();
        assert_eq!(curves.len(), 2);
        // Zero perturbation reproduces the baseline.
        for c in &curves {
            assert!((c.kpi_values[1] - m.baseline_kpi()).abs() < 1e-9);
        }
        // a has positive slope, b negative.
        assert!(curves[0].kpi_values[2] > curves[0].kpi_values[0]);
        assert!(curves[1].kpi_values[2] < curves[1].kpi_values[0]);
        // a's larger coefficient and mean give it the wider span.
        assert!(curves[0].kpi_span() > curves[1].kpi_span());
    }

    #[test]
    fn per_data_sensitivity_on_one_row() {
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::absolute("a", 2.0)]);
        let s = m.per_data_sensitivity(3, &set).unwrap();
        assert_eq!(s.row, 3);
        assert!((s.uplift() - 4.0).abs() < 1e-6, "2 units × coef 2");
        assert!(m.per_data_sensitivity(9999, &set).is_err());
    }

    #[test]
    fn invalid_perturbations_propagate() {
        let m = model();
        let bad = PerturbationSet::new(vec![Perturbation::percentage("zz", 1.0)]);
        assert!(m.sensitivity(&bad).is_err());
        assert!(m.per_data_sensitivity(0, &bad).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 40.0)]);
        let s = m.sensitivity(&set).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: SensitivityResult = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
