//! KPI kind detection — the paper's model-selection switch: "linear
//! regression models when the KPI objective is a continuous variable
//! (e.g., sales) and classifiers when the KPI objective is a discrete
//! variable (e.g., customer retained after 6 months or not)".

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use whatif_frame::{Column, DType};

/// Whether a KPI column is treated as continuous or binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KpiKind {
    /// Continuous objective (regression model).
    Continuous,
    /// Binary objective (classifier; KPI value = positive rate).
    Binary,
}

/// Detect the KPI kind of a column:
///
/// * `bool` → [`KpiKind::Binary`];
/// * numeric with values ⊆ {0, 1} → [`KpiKind::Binary`];
/// * other numeric → [`KpiKind::Continuous`];
/// * strings → error (the paper's UI deselects textual variables).
///
/// # Errors
/// [`CoreError::Config`] for string or all-null columns.
pub fn detect_kpi_kind(column: &Column) -> Result<KpiKind> {
    if column.null_count() == column.len() {
        return Err(CoreError::Config(format!(
            "KPI column {:?} is entirely null",
            column.name()
        )));
    }
    match column.dtype() {
        DType::Bool => Ok(KpiKind::Binary),
        DType::Str => Err(CoreError::Config(format!(
            "KPI column {:?} is textual; select a numeric or boolean KPI",
            column.name()
        ))),
        DType::Float | DType::Int => {
            let vals = column.to_f64_lossy()?;
            let binary = vals
                .iter()
                .enumerate()
                .filter(|&(i, _)| column.is_valid(i))
                .all(|(_, &v)| v == 0.0 || v == 1.0);
            Ok(if binary {
                KpiKind::Binary
            } else {
                KpiKind::Continuous
            })
        }
    }
}

/// Extract the KPI as `f64` targets (bools → 0/1). Nulls are rejected.
///
/// # Errors
/// [`CoreError::Config`] when nulls are present.
pub fn kpi_targets(column: &Column) -> Result<Vec<f64>> {
    if column.null_count() > 0 {
        return Err(CoreError::Config(format!(
            "KPI column {:?} has {} null rows; filter them before analysis",
            column.name(),
            column.null_count()
        )));
    }
    Ok(column.to_f64_lossy()?)
}

/// Extract binary labels from a KPI column detected as
/// [`KpiKind::Binary`].
///
/// # Errors
/// [`CoreError::Config`] if any value is not 0/1 or null.
pub fn kpi_labels(column: &Column) -> Result<Vec<u8>> {
    let targets = kpi_targets(column)?;
    targets
        .iter()
        .map(|&v| {
            if v == 0.0 {
                Ok(0u8)
            } else if v == 1.0 {
                Ok(1u8)
            } else {
                Err(CoreError::Config(format!(
                    "binary KPI {:?} contains non-binary value {v}",
                    column.name()
                )))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_is_binary() {
        let c = Column::from_bool("won", vec![true, false]);
        assert_eq!(detect_kpi_kind(&c).unwrap(), KpiKind::Binary);
        assert_eq!(kpi_labels(&c).unwrap(), vec![1, 0]);
    }

    #[test]
    fn zero_one_numeric_is_binary() {
        let c = Column::from_i64("flag", vec![0, 1, 1, 0]);
        assert_eq!(detect_kpi_kind(&c).unwrap(), KpiKind::Binary);
        let c = Column::from_f64("flag", vec![0.0, 1.0]);
        assert_eq!(detect_kpi_kind(&c).unwrap(), KpiKind::Binary);
    }

    #[test]
    fn general_numeric_is_continuous() {
        let c = Column::from_f64("sales", vec![10.5, 20.0, 30.0]);
        assert_eq!(detect_kpi_kind(&c).unwrap(), KpiKind::Continuous);
        assert_eq!(kpi_targets(&c).unwrap(), vec![10.5, 20.0, 30.0]);
        let c = Column::from_i64("count", vec![0, 1, 2]);
        assert_eq!(detect_kpi_kind(&c).unwrap(), KpiKind::Continuous);
    }

    #[test]
    fn string_kpi_is_rejected() {
        let c = Column::from_str_values("name", vec!["a"]);
        assert!(detect_kpi_kind(&c).is_err());
    }

    #[test]
    fn all_null_kpi_is_rejected() {
        let c = Column::from_f64_opt("x", vec![None, None]);
        assert!(detect_kpi_kind(&c).is_err());
    }

    #[test]
    fn nulls_rejected_in_targets() {
        let c = Column::from_f64_opt("x", vec![Some(1.0), None]);
        assert!(kpi_targets(&c).is_err());
    }

    #[test]
    fn non_binary_labels_rejected() {
        let c = Column::from_f64("x", vec![0.0, 0.5]);
        assert!(kpi_labels(&c).is_err());
    }
}
