//! Model training backend: the paper's model-selection rule and the
//! fitted-model handle every analysis runs through.

use crate::error::{CoreError, Result};
use crate::kpi::KpiKind;
use crate::perturbation::{PerturbationPlan, PerturbationSet};
use serde::{Deserialize, Serialize};
use whatif_cache::{CacheWeight, Fingerprint, Hasher128};
use whatif_learn::forest::ForestConfig;
use whatif_learn::metrics::{accuracy, r2_score, roc_auc};
use whatif_learn::model::{Classifier, Predictor, Regressor};
use whatif_learn::split::train_test_split;
use whatif_learn::tree::TreeConfig;
use whatif_learn::MatrixView;
use whatif_learn::{
    GbdtClassifier, GbdtConfig, GbdtRegressor, LinearRegression, LogisticRegression, Matrix,
    RandomForestClassifier, RandomForestRegressor, Trainer,
};

/// Model family selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// The paper's rule: continuous KPI → linear regression; binary KPI →
    /// random-forest classifier.
    Auto,
    /// Linear regression (continuous KPIs only).
    Linear,
    /// Logistic regression (binary KPIs only) — the interpretable
    /// classifier for the §5 interpretability-vs-accuracy discussion.
    Logistic,
    /// Random forest (classifier for binary, regressor for continuous).
    RandomForest,
    /// Gradient-boosted trees (classifier for binary, regressor for
    /// continuous): sequential shallow histogram-binned trees fit to
    /// residuals with shrinkage and holdout early stopping. Higher
    /// prediction ceiling than a single forest on smooth KPIs; trained
    /// entirely on the binned tier, so not bit-comparable to forests.
    Gbdt,
}

/// Forest training tier (ignored by linear/logistic/GBDT — GBDT is
/// always binned).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum TrainerTier {
    /// Exact presorted split scans — bit-identical to the seed
    /// reference implementation.
    #[default]
    Exact,
    /// Histogram-binned O(bins) split scans: features quantized to at
    /// most [`ModelConfig::n_bins`] quantile buckets once per forest.
    /// Deterministic, but approximate — its contract is
    /// accuracy-within-ε of the exact tier, not bit-identity.
    Binned,
}

fn default_n_bins() -> usize {
    256
}

/// Training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model family.
    pub kind: ModelKind,
    /// Trees per forest (ignored by linear/logistic).
    pub n_trees: usize,
    /// Maximum tree depth (ignored by linear/logistic).
    pub max_depth: usize,
    /// Seed for all stochastic pieces.
    pub seed: u64,
    /// Features examined per split (`None` = family default: √p for
    /// classification, p/3 for regression). Larger values let trees
    /// condition on more drivers jointly, which raises the forest's
    /// prediction ceiling in high-activity regions.
    pub max_features: Option<usize>,
    /// Worker threads for forest training.
    pub n_threads: usize,
    /// Held-out fraction used to estimate the model confidence shown in
    /// the Goal Inversion view; `0` scores on training data instead.
    pub holdout_fraction: f64,
    /// Forest training tier. Serde-defaulted to [`TrainerTier::Exact`]
    /// so configs (and wire clients) that predate the binned tier are
    /// untouched.
    #[serde(default)]
    pub trainer: TrainerTier,
    /// Bins per feature for the binned tier and GBDT (clamped to
    /// `2..=256` by the trainer). Serde-defaulted to 256.
    #[serde(default = "default_n_bins")]
    pub n_bins: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            kind: ModelKind::Auto,
            n_trees: 100,
            max_depth: 12,
            seed: 0,
            max_features: None,
            n_threads: 4,
            holdout_fraction: 0.2,
            trainer: TrainerTier::Exact,
            n_bins: default_n_bins(),
        }
    }
}

impl ModelConfig {
    fn forest_config(&self, seed_offset: u64) -> ForestConfig {
        let tree = TreeConfig {
            max_depth: self.max_depth,
            max_features: self.max_features,
            ..TreeConfig::default()
        };
        ForestConfig {
            n_trees: self.n_trees,
            tree,
            seed: self.seed.wrapping_add(seed_offset),
            n_threads: self.n_threads,
            trainer: match self.trainer {
                TrainerTier::Exact => Trainer::Presorted,
                TrainerTier::Binned => Trainer::Binned,
            },
            n_bins: self.n_bins,
        }
    }

    fn gbdt_config(&self, seed_offset: u64) -> GbdtConfig {
        GbdtConfig {
            n_rounds: self.n_trees,
            // Boosting wants weak learners; the session depth knob is
            // sized for forests, so cap boosted trees at depth 6.
            max_depth: self.max_depth.min(6),
            max_features: self.max_features,
            n_bins: self.n_bins,
            seed: self.seed.wrapping_add(seed_offset),
            n_threads: self.n_threads,
            ..GbdtConfig::default()
        }
    }
}

/// A process-wide shareable handle to a trained model.
///
/// Cloning is one atomic increment; every analysis path takes `&self`,
/// so any number of threads can evaluate through the same fitted model
/// concurrently. This is what sessions hold (and what the
/// [`crate::store::ModelStore`] deduplicates): training once and
/// sharing the `Arc` replaces per-session copies of the training
/// matrix, targets, and fitted parameters.
pub type SharedModel = std::sync::Arc<TrainedModel>;

/// The fitted model behind a [`TrainedModel`].
enum FittedModel {
    Linear(LinearRegression),
    Logistic(LogisticRegression),
    ForestClassifier(RandomForestClassifier),
    ForestRegressor(RandomForestRegressor),
    GbdtClassifier(GbdtClassifier),
    GbdtRegressor(GbdtRegressor),
}

impl FittedModel {
    fn predictor(&self) -> &dyn Predictor {
        match self {
            FittedModel::Linear(m) => m,
            FittedModel::Logistic(m) => m,
            FittedModel::ForestClassifier(m) => m,
            FittedModel::ForestRegressor(m) => m,
            FittedModel::GbdtClassifier(m) => m,
            FittedModel::GbdtRegressor(m) => m,
        }
    }
}

/// A fitted driver→KPI model plus everything the four analyses need:
/// the training matrix, targets, and a confidence score.
///
/// The KPI of a dataset is the **mean model prediction over its rows**:
/// the deal-closing *rate* for classifiers, mean sales for regressors —
/// exactly the blue/yellow bars of the paper's sensitivity view.
pub struct TrainedModel {
    kpi_name: String,
    kpi_kind: KpiKind,
    resolved_kind: ModelKind,
    driver_names: Vec<String>,
    x: Matrix,
    y: Vec<f64>,
    model: FittedModel,
    confidence: f64,
    baseline_kpi: f64,
    fingerprint: Fingerprint,
}

impl TrainedModel {
    /// Fit a model per `config` on the prepared matrix/targets.
    ///
    /// Called by [`crate::session::Session::train`]; exposed for direct
    /// use by benchmarks.
    ///
    /// # Errors
    /// [`CoreError::Config`] on kind/KPI mismatches, propagated learn
    /// errors otherwise.
    pub fn fit(
        kpi_name: &str,
        kpi_kind: KpiKind,
        driver_names: Vec<String>,
        x: Matrix,
        y: Vec<f64>,
        config: &ModelConfig,
    ) -> Result<TrainedModel> {
        let resolved = resolve_kind(config.kind, kpi_kind)?;
        if x.n_rows() < 4 {
            return Err(CoreError::Config(format!(
                "need at least 4 rows to train, got {}",
                x.n_rows()
            )));
        }

        // Confidence: fit on a train split, score on the holdout.
        let confidence = if config.holdout_fraction > 0.0 {
            let (train_idx, test_idx) =
                train_test_split(x.n_rows(), config.holdout_fraction, config.seed)?;
            let take = |idx: &[usize]| -> (Matrix, Vec<f64>) {
                let rows: Vec<Vec<f64>> = idx.iter().map(|&i| x.row(i).to_vec()).collect();
                let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
                // lint:allow(panic-freedom): rows are slices of one matrix, uniform by construction
                (Matrix::from_rows(&rows).expect("rows are uniform"), ys)
            };
            let (x_tr, y_tr) = take(&train_idx);
            let (x_te, y_te) = take(&test_idx);
            let m = fit_one(resolved, kpi_kind, &x_tr, &y_tr, config)?;
            let preds = m.predictor().predict_matrix(&x_te)?;
            score(kpi_kind, &y_te, &preds)
        } else {
            f64::NAN // filled below from training predictions
        };

        let model = fit_one(resolved, kpi_kind, &x, &y, config)?;
        let train_preds = model.predictor().predict_matrix(&x)?;
        let confidence = if confidence.is_nan() {
            score(kpi_kind, &y, &train_preds)
        } else {
            confidence
        };
        let baseline_kpi = mean(&train_preds);
        let fingerprint = compute_fingerprint(
            kpi_name,
            kpi_kind,
            resolved,
            &driver_names,
            &x,
            &y,
            config,
            &model,
            &train_preds,
            confidence,
        );

        Ok(TrainedModel {
            kpi_name: kpi_name.to_owned(),
            kpi_kind,
            resolved_kind: resolved,
            driver_names,
            x,
            y,
            model,
            confidence,
            baseline_kpi,
            fingerprint,
        })
    }

    /// The model's stable 128-bit content fingerprint, computed once at
    /// train time over the training-data digest, the effective
    /// configuration, and the learned parameters.
    ///
    /// Two models fitted from bit-identical data and configuration have
    /// equal fingerprints (training is deterministic, including across
    /// worker-thread counts), so cached results are shared across
    /// sessions; retraining on changed data, a changed KPI/driver
    /// selection, or changed hyperparameters yields a new fingerprint —
    /// the cache-invalidation "epoch" is the fingerprint itself.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// KPI column name.
    pub fn kpi_name(&self) -> &str {
        &self.kpi_name
    }

    /// Detected KPI kind.
    pub fn kpi_kind(&self) -> KpiKind {
        self.kpi_kind
    }

    /// The model family actually fitted (never [`ModelKind::Auto`]).
    pub fn kind(&self) -> ModelKind {
        self.resolved_kind
    }

    /// Driver names, aligned with matrix columns.
    pub fn driver_names(&self) -> &[String] {
        &self.driver_names
    }

    /// Index of a driver by name.
    ///
    /// # Errors
    /// [`CoreError::Config`] for unknown drivers.
    pub fn driver_index(&self, name: &str) -> Result<usize> {
        self.driver_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| CoreError::Config(format!("unknown driver {name:?}")))
    }

    /// The training feature matrix (rows × drivers).
    pub fn matrix(&self) -> &Matrix {
        &self.x
    }

    /// Training targets (0/1 for binary KPIs).
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Model confidence: holdout R² (continuous) or ROC-AUC falling back
    /// to accuracy (binary) — "the confidence of the model used" shown in
    /// the Goal Inversion view.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The KPI achieved on the *original* dataset (blue bar).
    pub fn baseline_kpi(&self) -> f64 {
        self.baseline_kpi
    }

    /// Score a single driver row.
    ///
    /// # Errors
    /// Propagated prediction errors (wrong width).
    pub fn predict_row(&self, row: &[f64]) -> Result<f64> {
        Ok(self.model.predictor().predict_row(row)?)
    }

    /// Mean prediction over an arbitrary matrix — the KPI of a
    /// (possibly perturbed) dataset.
    ///
    /// # Errors
    /// Propagated prediction errors (wrong column count).
    pub fn kpi_for_matrix(&self, x: &Matrix) -> Result<f64> {
        self.kpi_for_view(MatrixView::Dense(x))
    }

    /// Batched predictions over a dense matrix or column overlay.
    ///
    /// # Errors
    /// Propagated prediction errors (wrong column count).
    pub fn predictions_for_view(&self, view: MatrixView<'_>) -> Result<Vec<f64>> {
        let mut preds = vec![0.0; view.n_rows()];
        self.predict_batch_into(view, &mut preds)?;
        Ok(preds)
    }

    /// Batched predictions into a caller-owned buffer (hot paths reuse
    /// the buffer across scenarios).
    ///
    /// # Errors
    /// Propagated prediction errors (wrong column count / buffer size).
    pub fn predict_batch_into(&self, view: MatrixView<'_>, out: &mut [f64]) -> Result<()> {
        Ok(self.model.predictor().predict_batch(view, out)?)
    }

    /// The KPI (mean prediction) of any matrix view.
    ///
    /// # Errors
    /// Propagated prediction errors (wrong column count).
    pub fn kpi_for_view(&self, view: MatrixView<'_>) -> Result<f64> {
        Ok(mean(&self.predictions_for_view(view)?))
    }

    /// Whether a full-matrix `predict_batch` on this model will fan out
    /// to its own worker threads. Coarser-grained parallelizers (bulk
    /// scenario evaluation) check this to keep exactly one level of
    /// fan-out: scenario-level workers for cheap per-call models,
    /// row-level workers inside the model otherwise.
    pub fn batch_predict_is_parallel(&self) -> bool {
        use whatif_learn::forest::PARALLEL_BATCH_MIN_WORK;
        let (n_trees, n_threads) = match &self.model {
            FittedModel::ForestClassifier(m) => (m.n_trees(), m.config.n_threads),
            FittedModel::ForestRegressor(m) => (m.n_trees(), m.config.n_threads),
            FittedModel::GbdtClassifier(m) => (m.n_trees(), m.config.n_threads),
            FittedModel::GbdtRegressor(m) => (m.n_trees(), m.config.n_threads),
            FittedModel::Linear(_) | FittedModel::Logistic(_) => return false,
        };
        n_threads > 1 && self.x.n_rows().saturating_mul(n_trees) >= PARALLEL_BATCH_MIN_WORK
    }

    /// Compile a perturbation set against this model's drivers.
    ///
    /// # Errors
    /// [`CoreError::Config`] on unknown or duplicated drivers.
    pub fn compile_perturbations(&self, set: &PerturbationSet) -> Result<PerturbationPlan> {
        let _stage = whatif_obs::span::stage(whatif_obs::Stage::PlanCompile);
        set.compile(&self.driver_names)
    }

    /// The KPI of the training data under a compiled perturbation plan,
    /// evaluated through a copy-on-write overlay: only the perturbed
    /// columns are materialized, never the whole matrix.
    ///
    /// # Errors
    /// [`CoreError::Config`] on plan/matrix width mismatch; propagated
    /// prediction errors otherwise.
    pub fn kpi_for_plan(&self, plan: &PerturbationPlan) -> Result<f64> {
        let _stage = whatif_obs::span::stage(whatif_obs::Stage::Predict);
        let overlay = plan.overlay(&self.x)?;
        self.kpi_for_view(MatrixView::Overlay(&overlay))
    }

    /// Borrow the underlying predictor (for Shapley verification etc.).
    pub fn predictor(&self) -> &dyn Predictor {
        self.model.predictor()
    }

    /// Model-native importances on the paper's `[-1, 1]` scale:
    /// standardized coefficients for linear/logistic models; normalized
    /// impurity importances signed by each driver's Pearson correlation
    /// with the KPI for forests (impurity mass is unsigned by
    /// construction; the correlation restores direction).
    ///
    /// # Errors
    /// Propagated learn errors.
    pub fn native_importances(&self) -> Result<Vec<f64>> {
        match &self.model {
            FittedModel::Linear(m) => Ok(m.standardized_coefficients()?.to_vec()),
            FittedModel::Logistic(m) => Ok(m.standardized_coefficients()?.to_vec()),
            FittedModel::ForestClassifier(m) => {
                Ok(self.sign_by_correlation(m.feature_importances()?))
            }
            FittedModel::ForestRegressor(m) => {
                Ok(self.sign_by_correlation(m.feature_importances()?))
            }
            FittedModel::GbdtClassifier(m) => {
                Ok(self.sign_by_correlation(m.feature_importances()?))
            }
            FittedModel::GbdtRegressor(m) => Ok(self.sign_by_correlation(m.feature_importances()?)),
        }
    }

    fn sign_by_correlation(&self, unsigned: &[f64]) -> Vec<f64> {
        (0..self.driver_names.len())
            .map(|j| {
                let col = self.x.col(j);
                let r = whatif_stats::pearson(&col, &self.y);
                let sign = if r.is_nan() || r >= 0.0 { 1.0 } else { -1.0 };
                unsigned[j] * sign
            })
            .collect()
    }
}

/// The paper's model-selection rule, shared by [`TrainedModel::fit`]
/// and the pre-train [`training_fingerprint`] so both validate (and
/// key) the same way.
fn resolve_kind(kind: ModelKind, kpi_kind: KpiKind) -> Result<ModelKind> {
    match (kind, kpi_kind) {
        (ModelKind::Auto, KpiKind::Continuous) => Ok(ModelKind::Linear),
        (ModelKind::Auto, KpiKind::Binary) => Ok(ModelKind::RandomForest),
        (ModelKind::Linear, KpiKind::Continuous) => Ok(ModelKind::Linear),
        (ModelKind::Linear, KpiKind::Binary) => Err(CoreError::Config(
            "linear regression requires a continuous KPI; use Logistic or RandomForest".to_owned(),
        )),
        (ModelKind::Logistic, KpiKind::Binary) => Ok(ModelKind::Logistic),
        (ModelKind::Logistic, KpiKind::Continuous) => Err(CoreError::Config(
            "logistic regression requires a binary KPI".to_owned(),
        )),
        (ModelKind::RandomForest, _) => Ok(ModelKind::RandomForest),
        (ModelKind::Gbdt, _) => Ok(ModelKind::Gbdt),
    }
}

/// The identity of a *training request*, computable **before** any
/// training happens: the exact inputs [`TrainedModel::fit`] would
/// consume — KPI naming and kind, the resolved model family, the
/// behavior-relevant configuration, and a digest of the full training
/// data. Training is deterministic in these inputs (tree seeds are
/// pre-drawn, so `n_threads` is excluded just as it is from the
/// post-train fingerprint), which makes this the dedup key of the
/// [`crate::store::ModelStore`]: equal training fingerprints imply
/// bit-identical trained models, so the first session trains and every
/// later one shares the `Arc`.
///
/// # Errors
/// [`CoreError::Config`] on the same kind/KPI mismatches
/// [`TrainedModel::fit`] rejects, so a store lookup fails exactly when
/// training would.
pub fn training_fingerprint(
    kpi_name: &str,
    kpi_kind: KpiKind,
    driver_names: &[String],
    x: &Matrix,
    y: &[f64],
    config: &ModelConfig,
) -> Result<Fingerprint> {
    let resolved = resolve_kind(config.kind, kpi_kind)?;
    let mut h = Hasher128::new();
    h.write_str("whatif/train/v2");
    write_training_inputs(
        &mut h,
        kpi_name,
        kpi_kind,
        resolved,
        driver_names,
        x,
        y,
        config,
    );
    Ok(h.finish())
}

/// The input half shared verbatim by [`training_fingerprint`] and the
/// post-train [`compute_fingerprint`]: one hashing routine, so a future
/// behavior-relevant `ModelConfig` field cannot be added to one key and
/// forgotten in the other (which would alias distinct training
/// requests and serve the wrong shared model).
#[allow(clippy::too_many_arguments)]
fn write_training_inputs(
    h: &mut Hasher128,
    kpi_name: &str,
    kpi_kind: KpiKind,
    resolved: ModelKind,
    driver_names: &[String],
    x: &Matrix,
    y: &[f64],
    config: &ModelConfig,
) {
    h.write_str(kpi_name);
    h.write_u8(match kpi_kind {
        KpiKind::Continuous => 0,
        KpiKind::Binary => 1,
    });
    h.write_u8(match resolved {
        ModelKind::Linear => 0,
        ModelKind::Logistic => 1,
        ModelKind::RandomForest => 2,
        ModelKind::Gbdt => 3,
        ModelKind::Auto => u8::MAX, // unreachable: resolved before hashing
    });
    h.write_usize(driver_names.len());
    for name in driver_names {
        h.write_str(name);
    }
    h.write_usize(config.n_trees);
    h.write_usize(config.max_depth);
    h.write_u64(config.seed);
    match config.max_features {
        Some(m) => {
            h.write_u8(1);
            h.write_usize(m);
        }
        None => h.write_u8(0),
    }
    h.write_f64(config.holdout_fraction);
    // Trainer tier and bin count change what the tree families learn,
    // so they key the store/cache even though linear models ignore them
    // (hashing them unconditionally is the conservative choice — a
    // spurious miss retrains; a spurious hit serves a binned model to an
    // exact-tier request).
    h.write_u8(match config.trainer {
        TrainerTier::Exact => 0,
        TrainerTier::Binned => 1,
    });
    h.write_usize(config.n_bins);
    h.write_usize(x.n_rows());
    h.write_usize(x.n_cols());
    h.write_f64s(x.data());
    h.write_f64s(y);
}

/// Approximate resident bytes of a trained model, for the
/// [`crate::store::ModelStore`]'s budget accounting. Dominated by the
/// retained training matrix and targets; fitted parameters are
/// estimated (forests charge a per-tree node-count bound — bootstrap
/// leaves capped by the depth limit — since trees don't expose exact
/// arena sizes).
impl CacheWeight for TrainedModel {
    fn weight_bytes(&self) -> usize {
        let data = (self.x.n_rows() * self.x.n_cols() + self.y.len()) * 8;
        let names: usize = self
            .driver_names
            .iter()
            .map(|n| n.len() + std::mem::size_of::<String>())
            .sum();
        let fitted = match &self.model {
            FittedModel::Linear(_) | FittedModel::Logistic(_) => {
                (self.x.n_cols() + 1) * 8 + std::mem::size_of::<FittedModel>()
            }
            FittedModel::ForestClassifier(m) => forest_bytes(m.n_trees(), self.x.n_rows()),
            FittedModel::ForestRegressor(m) => forest_bytes(m.n_trees(), self.x.n_rows()),
            // GBDT trees are depth-capped and expose exact node counts.
            FittedModel::GbdtClassifier(m) => m.n_nodes() * 24,
            FittedModel::GbdtRegressor(m) => m.n_nodes() * 24,
        };
        data + names + fitted + self.kpi_name.len()
    }
}

/// Per-tree node bound: a bootstrap sample of `n_rows` yields at most
/// `2 * n_rows - 1` nodes, at roughly 24 bytes each (the flattened
/// struct-of-arrays tree stores 16 bytes per node — u32 feature/right
/// child plus one f64 threshold-or-leaf-value — plus an importance
/// slot's share).
fn forest_bytes(n_trees: usize, n_rows: usize) -> usize {
    n_trees * (2 * n_rows).saturating_sub(1) * 24
}

/// Fold everything that determines a model's observable behavior into
/// one 128-bit identity: KPI/driver naming, the resolved family, the
/// behavior-relevant configuration, a digest of the full training data,
/// and the learned parameters themselves (coefficients for the linear
/// families; for forests, whose trees are unwieldy to serialize, the
/// training-set predictions — a complete functional digest over the
/// training support — stand in).
///
/// `n_threads` is deliberately excluded: tree seeds are pre-drawn from
/// the master seed, so training is thread-count invariant and two
/// deployments differing only in parallelism share cache entries.
/// `holdout_fraction` is included because it shapes the published
/// `confidence`, which analysis results carry.
#[allow(clippy::too_many_arguments)]
fn compute_fingerprint(
    kpi_name: &str,
    kpi_kind: KpiKind,
    resolved: ModelKind,
    driver_names: &[String],
    x: &Matrix,
    y: &[f64],
    config: &ModelConfig,
    model: &FittedModel,
    train_preds: &[f64],
    confidence: f64,
) -> Fingerprint {
    let mut h = Hasher128::new();
    h.write_str("whatif/model/v2");
    write_training_inputs(
        &mut h,
        kpi_name,
        kpi_kind,
        resolved,
        driver_names,
        x,
        y,
        config,
    );
    match model {
        FittedModel::Linear(m) => {
            h.write_u8(1);
            h.write_f64(m.intercept().unwrap_or(f64::NAN));
            h.write_f64s(m.coefficients().unwrap_or(&[]));
        }
        FittedModel::Logistic(m) => {
            h.write_u8(2);
            h.write_f64(m.intercept().unwrap_or(f64::NAN));
            h.write_f64s(m.coefficients().unwrap_or(&[]));
        }
        FittedModel::ForestClassifier(m) => {
            h.write_u8(3);
            h.write_usize(m.n_trees());
        }
        FittedModel::ForestRegressor(m) => {
            h.write_u8(4);
            h.write_usize(m.n_trees());
        }
        FittedModel::GbdtClassifier(m) => {
            h.write_u8(5);
            h.write_usize(m.n_trees());
        }
        FittedModel::GbdtRegressor(m) => {
            h.write_u8(6);
            h.write_usize(m.n_trees());
        }
    }
    h.write_f64s(train_preds);
    h.write_f64(confidence);
    h.finish()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn score(kind: KpiKind, y_true: &[f64], preds: &[f64]) -> f64 {
    match kind {
        KpiKind::Continuous => r2_score(y_true, preds),
        KpiKind::Binary => {
            let labels: Vec<u8> = y_true.iter().map(|&v| u8::from(v >= 0.5)).collect();
            let auc = roc_auc(&labels, preds);
            if auc.is_nan() {
                let hard: Vec<u8> = preds.iter().map(|&p| u8::from(p >= 0.5)).collect();
                accuracy(&labels, &hard)
            } else {
                auc
            }
        }
    }
}

fn fit_one(
    kind: ModelKind,
    kpi_kind: KpiKind,
    x: &Matrix,
    y: &[f64],
    config: &ModelConfig,
) -> Result<FittedModel> {
    Ok(match (kind, kpi_kind) {
        (ModelKind::Linear, _) => {
            let mut m = LinearRegression::new();
            m.fit(x, y)?;
            FittedModel::Linear(m)
        }
        (ModelKind::Logistic, _) => {
            let labels: Vec<u8> = y.iter().map(|&v| u8::from(v >= 0.5)).collect();
            let mut m = LogisticRegression::new().with_alpha(1e-3);
            m.fit(x, &labels)?;
            FittedModel::Logistic(m)
        }
        (ModelKind::RandomForest, KpiKind::Binary) => {
            let labels: Vec<u8> = y.iter().map(|&v| u8::from(v >= 0.5)).collect();
            let mut m = RandomForestClassifier::new(config.forest_config(1));
            m.fit(x, &labels)?;
            FittedModel::ForestClassifier(m)
        }
        (ModelKind::RandomForest, KpiKind::Continuous) => {
            let mut m = RandomForestRegressor::new(config.forest_config(2));
            m.fit(x, y)?;
            FittedModel::ForestRegressor(m)
        }
        (ModelKind::Gbdt, KpiKind::Binary) => {
            let labels: Vec<u8> = y.iter().map(|&v| u8::from(v >= 0.5)).collect();
            let mut m = GbdtClassifier::new(config.gbdt_config(3));
            m.fit(x, &labels)?;
            FittedModel::GbdtClassifier(m)
        }
        (ModelKind::Gbdt, KpiKind::Continuous) => {
            let mut m = GbdtRegressor::new(config.gbdt_config(4));
            m.fit(x, y)?;
            FittedModel::GbdtRegressor(m)
        }
        // lint:allow(panic-freedom): resolve_kind replaced Auto before this match; reaching it is a bug
        (ModelKind::Auto, _) => unreachable!("Auto resolved before fit_one"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn continuous_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 12) as f64, ((i * 5) % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 4.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn binary_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 10) as f64, ((i * 3) % 4) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| f64::from(u8::from(r[0] > 4.5)))
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    #[test]
    fn auto_selects_linear_for_continuous() {
        let (x, y) = continuous_data();
        let m = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x,
            y,
            &ModelConfig::default(),
        )
        .unwrap();
        assert_eq!(m.kind(), ModelKind::Linear);
        assert!(
            m.confidence() > 0.99,
            "exact linear data: {}",
            m.confidence()
        );
    }

    #[test]
    fn auto_selects_forest_for_binary() {
        let (x, y) = binary_data();
        let cfg = ModelConfig {
            n_trees: 20,
            ..ModelConfig::default()
        };
        let m = TrainedModel::fit("won", KpiKind::Binary, names(), x, y, &cfg).unwrap();
        assert_eq!(m.kind(), ModelKind::RandomForest);
        assert!(m.confidence() > 0.9, "auc {}", m.confidence());
        // Baseline KPI is a rate in [0, 1].
        assert!((0.0..=1.0).contains(&m.baseline_kpi()));
    }

    #[test]
    fn kind_kpi_mismatches_are_rejected() {
        let (x, y) = binary_data();
        let cfg = ModelConfig {
            kind: ModelKind::Linear,
            ..ModelConfig::default()
        };
        assert!(
            TrainedModel::fit("won", KpiKind::Binary, names(), x.clone(), y.clone(), &cfg).is_err()
        );
        let (cx, cy) = continuous_data();
        let cfg = ModelConfig {
            kind: ModelKind::Logistic,
            ..cfg
        };
        assert!(TrainedModel::fit("sales", KpiKind::Continuous, names(), cx, cy, &cfg).is_err());
    }

    #[test]
    fn forest_works_for_continuous_too() {
        let (x, y) = continuous_data();
        let cfg = ModelConfig {
            kind: ModelKind::RandomForest,
            n_trees: 20,
            ..ModelConfig::default()
        };
        let m = TrainedModel::fit("sales", KpiKind::Continuous, names(), x, y, &cfg).unwrap();
        assert_eq!(m.kind(), ModelKind::RandomForest);
        assert!(m.confidence() > 0.7, "r2 {}", m.confidence());
    }

    #[test]
    fn logistic_works_for_binary() {
        let (x, y) = binary_data();
        let cfg = ModelConfig {
            kind: ModelKind::Logistic,
            ..ModelConfig::default()
        };
        let m = TrainedModel::fit("won", KpiKind::Binary, names(), x, y, &cfg).unwrap();
        assert_eq!(m.kind(), ModelKind::Logistic);
        assert!(m.confidence() > 0.9);
    }

    #[test]
    fn native_importances_are_signed_and_ranked() {
        let (x, y) = continuous_data();
        let m = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x,
            y,
            &ModelConfig::default(),
        )
        .unwrap();
        let imp = m.native_importances().unwrap();
        assert!(imp[0] > 0.0, "a drives KPI up");
        assert!(imp[1] < 0.0, "b drives KPI down");
        assert!(imp[0].abs() > imp[1].abs());
        assert!(imp.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn forest_importances_get_correlation_signs() {
        let (x, y) = binary_data();
        let cfg = ModelConfig {
            n_trees: 30,
            ..ModelConfig::default()
        };
        let m = TrainedModel::fit("won", KpiKind::Binary, names(), x, y, &cfg).unwrap();
        let imp = m.native_importances().unwrap();
        assert!(imp[0] > 0.0, "positive driver gets positive sign: {imp:?}");
        assert!(imp[0].abs() > imp[1].abs());
    }

    #[test]
    fn too_few_rows_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(TrainedModel::fit(
            "k",
            KpiKind::Continuous,
            vec!["a".into()],
            x,
            vec![1.0, 2.0],
            &ModelConfig::default()
        )
        .is_err());
    }

    #[test]
    fn driver_index_lookup() {
        let (x, y) = continuous_data();
        let m = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x,
            y,
            &ModelConfig::default(),
        )
        .unwrap();
        assert_eq!(m.driver_index("b").unwrap(), 1);
        assert!(m.driver_index("zz").is_err());
        assert_eq!(m.kpi_name(), "sales");
        assert_eq!(m.driver_names().len(), 2);
    }

    #[test]
    fn plan_kpi_matches_clone_path_exactly() {
        use crate::perturbation::{Perturbation, PerturbationSet};
        let (x, y) = continuous_data();
        let m = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x,
            y,
            &ModelConfig::default(),
        )
        .unwrap();
        let set = PerturbationSet::new(vec![
            Perturbation::percentage("a", 25.0),
            Perturbation::absolute("b", -0.5),
        ]);
        let plan = m.compile_perturbations(&set).unwrap();
        let via_plan = m.kpi_for_plan(&plan).unwrap();
        let cloned = set.apply_to_matrix(m.matrix(), m.driver_names()).unwrap();
        let via_clone = m.kpi_for_matrix(&cloned).unwrap();
        assert!(via_plan.to_bits() == via_clone.to_bits());
        // Per-row predictions agree bit for bit too.
        let overlay = plan.overlay(m.matrix()).unwrap();
        let preds = m
            .predictions_for_view(whatif_learn::MatrixView::Overlay(&overlay))
            .unwrap();
        for (i, &p) in preds.iter().enumerate() {
            assert!(p.to_bits() == m.predict_row(cloned.row(i)).unwrap().to_bits());
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let (x, y) = continuous_data();
        let cfg = ModelConfig::default();
        let a = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x.clone(),
            y.clone(),
            &cfg,
        )
        .unwrap();
        // Refit on identical inputs: identical identity (cross-session
        // cache sharing depends on this).
        let b = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x.clone(),
            y.clone(),
            &cfg,
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Thread count does not change the learned model — pinned on a
        // *forest* (the one family whose training actually fans out to
        // n_threads workers), since the fingerprint deliberately
        // excludes n_threads on exactly this invariance.
        let forest = |n_threads: usize| {
            TrainedModel::fit(
                "sales",
                KpiKind::Continuous,
                names(),
                x.clone(),
                y.clone(),
                &ModelConfig {
                    kind: ModelKind::RandomForest,
                    n_trees: 16,
                    n_threads,
                    ..cfg.clone()
                },
            )
            .unwrap()
        };
        assert_eq!(forest(1).fingerprint(), forest(4).fingerprint());
        assert_eq!(forest(4).fingerprint(), forest(7).fingerprint());
        // Any behavioral change — data, seed, KPI name — changes it.
        let mut y2 = y.clone();
        y2[0] += 1.0;
        let d =
            TrainedModel::fit("sales", KpiKind::Continuous, names(), x.clone(), y2, &cfg).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
        let seeded = ModelConfig { seed: 9, ..cfg };
        let e = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x.clone(),
            y.clone(),
            &seeded,
        )
        .unwrap();
        assert_ne!(a.fingerprint(), e.fingerprint());
        let f = TrainedModel::fit(
            "other",
            KpiKind::Continuous,
            names(),
            x,
            y,
            &ModelConfig::default(),
        )
        .unwrap();
        assert_ne!(a.fingerprint(), f.fingerprint());
    }

    #[test]
    fn training_fingerprint_keys_the_inputs_not_the_outputs() {
        let (x, y) = continuous_data();
        let cfg = ModelConfig::default();
        let key = |x: &Matrix, y: &[f64], cfg: &ModelConfig| {
            training_fingerprint("sales", KpiKind::Continuous, &names(), x, y, cfg).unwrap()
        };
        // Deterministic in the inputs, computable without training.
        assert_eq!(key(&x, &y, &cfg), key(&x, &y, &cfg));
        // Thread count is excluded: training is thread-count invariant.
        let threaded = ModelConfig {
            n_threads: 9,
            ..cfg.clone()
        };
        assert_eq!(key(&x, &y, &cfg), key(&x, &y, &threaded));
        // Any behavioral input separates keys: data, seed, family.
        let mut y2 = y.clone();
        y2[0] += 1.0;
        assert_ne!(key(&x, &y, &cfg), key(&x, &y2, &cfg));
        let seeded = ModelConfig {
            seed: 3,
            ..cfg.clone()
        };
        assert_ne!(key(&x, &y, &cfg), key(&x, &y, &seeded));
        let forest = ModelConfig {
            kind: ModelKind::RandomForest,
            ..cfg.clone()
        };
        assert_ne!(key(&x, &y, &cfg), key(&x, &y, &forest));
        // It rejects exactly what `fit` rejects.
        assert!(training_fingerprint(
            "sales",
            KpiKind::Continuous,
            &names(),
            &x,
            &y,
            &ModelConfig {
                kind: ModelKind::Logistic,
                ..cfg
            },
        )
        .is_err());
    }

    #[test]
    fn weight_bytes_charges_the_training_data() {
        let (x, y) = continuous_data();
        let floor = (x.n_rows() * x.n_cols() + y.len()) * 8;
        let m = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x,
            y,
            &ModelConfig::default(),
        )
        .unwrap();
        assert!(m.weight_bytes() >= floor);
        // Forests charge more than the linear family on the same data.
        let (x, y) = continuous_data();
        let f = TrainedModel::fit(
            "sales",
            KpiKind::Continuous,
            names(),
            x,
            y,
            &ModelConfig {
                kind: ModelKind::RandomForest,
                n_trees: 20,
                ..ModelConfig::default()
            },
        )
        .unwrap();
        assert!(f.weight_bytes() > m.weight_bytes());
    }

    #[test]
    fn gbdt_works_for_both_kpi_kinds() {
        let (x, y) = binary_data();
        let cfg = ModelConfig {
            kind: ModelKind::Gbdt,
            n_trees: 40,
            ..ModelConfig::default()
        };
        let m = TrainedModel::fit("won", KpiKind::Binary, names(), x, y, &cfg).unwrap();
        assert_eq!(m.kind(), ModelKind::Gbdt);
        assert!(m.confidence() > 0.9, "auc {}", m.confidence());
        assert!((0.0..=1.0).contains(&m.baseline_kpi()));
        let imp = m.native_importances().unwrap();
        assert!(imp[0] > 0.0, "positive driver keeps its sign: {imp:?}");

        let (cx, cy) = continuous_data();
        let m = TrainedModel::fit("sales", KpiKind::Continuous, names(), cx, cy, &cfg).unwrap();
        assert_eq!(m.kind(), ModelKind::Gbdt);
        assert!(m.confidence() > 0.8, "r2 {}", m.confidence());
        // Batch path agrees with the row path bit for bit.
        let preds = m
            .predictions_for_view(MatrixView::Dense(m.matrix()))
            .unwrap();
        for (i, &p) in preds.iter().enumerate() {
            let row = m.matrix().row(i).to_vec();
            assert_eq!(p.to_bits(), m.predict_row(&row).unwrap().to_bits());
        }
    }

    #[test]
    fn gbdt_is_fingerprint_distinct_from_forest() {
        let (x, y) = binary_data();
        let fit = |kind: ModelKind| {
            TrainedModel::fit(
                "won",
                KpiKind::Binary,
                names(),
                x.clone(),
                y.clone(),
                &ModelConfig {
                    kind,
                    n_trees: 15,
                    ..ModelConfig::default()
                },
            )
            .unwrap()
        };
        let forest = fit(ModelKind::RandomForest);
        let gbdt = fit(ModelKind::Gbdt);
        assert_ne!(forest.fingerprint(), gbdt.fingerprint());
        // And the pre-train key separates the requests the same way.
        let key = |kind: ModelKind| {
            training_fingerprint(
                "won",
                KpiKind::Binary,
                &names(),
                &x,
                &y,
                &ModelConfig {
                    kind,
                    n_trees: 15,
                    ..ModelConfig::default()
                },
            )
            .unwrap()
        };
        assert_ne!(key(ModelKind::RandomForest), key(ModelKind::Gbdt));
    }

    #[test]
    fn trainer_tier_and_bins_key_the_fingerprints() {
        let (x, y) = continuous_data();
        let cfg = |trainer: TrainerTier, n_bins: usize| ModelConfig {
            kind: ModelKind::RandomForest,
            n_trees: 12,
            trainer,
            n_bins,
            ..ModelConfig::default()
        };
        let key = |c: &ModelConfig| {
            training_fingerprint("sales", KpiKind::Continuous, &names(), &x, &y, c).unwrap()
        };
        let exact = cfg(TrainerTier::Exact, 256);
        let binned = cfg(TrainerTier::Binned, 256);
        let coarse = cfg(TrainerTier::Binned, 64);
        // Same data + config, different tier ⇒ different training key,
        // so the ModelStore can never serve a binned model to an
        // exact-tier request (or vice versa).
        assert_ne!(key(&exact), key(&binned));
        assert_ne!(key(&binned), key(&coarse));
        // Post-train fingerprints separate too.
        let fit = |c: &ModelConfig| {
            TrainedModel::fit(
                "sales",
                KpiKind::Continuous,
                names(),
                x.clone(),
                y.clone(),
                c,
            )
            .unwrap()
        };
        let me = fit(&exact);
        let mb = fit(&binned);
        assert_ne!(me.fingerprint(), mb.fingerprint());
        // The binned tier trains a real model of the same family.
        assert_eq!(mb.kind(), ModelKind::RandomForest);
        assert!(mb.confidence() > 0.6, "binned r2 {}", mb.confidence());
    }

    #[test]
    fn zero_holdout_scores_on_training_data() {
        let (x, y) = continuous_data();
        let cfg = ModelConfig {
            holdout_fraction: 0.0,
            ..ModelConfig::default()
        };
        let m = TrainedModel::fit("sales", KpiKind::Continuous, names(), x, y, &cfg).unwrap();
        assert!((m.confidence() - 1.0).abs() < 1e-9);
    }
}
