//! Analysis sessions: dataset + KPI selection + driver selection
//! (Figure 2 views B/C/D).

use crate::error::{CoreError, Result};
use crate::kpi::{detect_kpi_kind, kpi_targets, KpiKind};
use crate::model_backend::{ModelConfig, TrainedModel};
use whatif_frame::{DType, Frame};
use whatif_learn::Matrix;

/// A what-if session over one dataset.
///
/// The flow mirrors the paper's UI: load a table, pick the KPI, filter
/// the driver list (textual columns are auto-deselected, like the
/// walkthrough's `Account` variables), then train.
#[derive(Debug, Clone)]
pub struct Session {
    frame: Frame,
    kpi: Option<String>,
    drivers: Vec<String>,
}

impl Session {
    /// Start a session on a dataset. All numeric/boolean columns are
    /// pre-selected as candidate drivers; textual columns are excluded.
    pub fn new(frame: Frame) -> Session {
        let drivers = frame
            .columns()
            .iter()
            .filter(|c| c.dtype() != DType::Str)
            .map(|c| c.name().to_owned())
            .collect();
        Session {
            frame,
            kpi: None,
            drivers,
        }
    }

    /// The underlying table.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Select the KPI column; it is removed from the driver list.
    ///
    /// # Errors
    /// [`CoreError`] for unknown/textual/all-null KPI columns.
    pub fn with_kpi(mut self, kpi: &str) -> Result<Session> {
        let column = self.frame.column(kpi)?;
        detect_kpi_kind(column)?; // validates dtype
        self.kpi = Some(kpi.to_owned());
        self.drivers.retain(|d| d != kpi);
        Ok(self)
    }

    /// Replace the driver selection (Figure 2 D). Unknown, textual, or
    /// KPI columns are rejected.
    ///
    /// # Errors
    /// [`CoreError::Config`] on invalid driver selections.
    pub fn with_drivers(mut self, drivers: &[&str]) -> Result<Session> {
        if drivers.is_empty() {
            return Err(CoreError::Config(
                "driver selection cannot be empty".to_owned(),
            ));
        }
        let mut selected = Vec::with_capacity(drivers.len());
        for &d in drivers {
            let col = self.frame.column(d)?;
            if col.dtype() == DType::Str {
                return Err(CoreError::Config(format!(
                    "driver {d:?} is textual; deselect it (like the paper's Account columns)"
                )));
            }
            if Some(d) == self.kpi.as_deref() {
                return Err(CoreError::Config(format!(
                    "{d:?} is the KPI and cannot also be a driver"
                )));
            }
            if selected.contains(&d.to_owned()) {
                return Err(CoreError::Config(format!("driver {d:?} selected twice")));
            }
            selected.push(d.to_owned());
        }
        self.drivers = selected;
        Ok(self)
    }

    /// Deselect named drivers (the paper's "remove an obvious predictor"
    /// episode).
    ///
    /// # Errors
    /// [`CoreError::Config`] if a name is not currently selected or the
    /// selection would become empty.
    pub fn without_drivers(mut self, drivers: &[&str]) -> Result<Session> {
        for &d in drivers {
            let before = self.drivers.len();
            self.drivers.retain(|x| x != d);
            if self.drivers.len() == before {
                return Err(CoreError::Config(format!(
                    "driver {d:?} is not in the current selection"
                )));
            }
        }
        if self.drivers.is_empty() {
            return Err(CoreError::Config(
                "removing these drivers would leave none selected".to_owned(),
            ));
        }
        Ok(self)
    }

    /// Selected KPI, if any.
    pub fn kpi(&self) -> Option<&str> {
        self.kpi.as_deref()
    }

    /// Detected KPI kind.
    ///
    /// # Errors
    /// [`CoreError::NoKpi`] before a KPI is selected.
    pub fn kpi_kind(&self) -> Result<KpiKind> {
        let kpi = self.kpi.as_deref().ok_or(CoreError::NoKpi)?;
        detect_kpi_kind(self.frame.column(kpi)?)
    }

    /// Currently selected drivers.
    pub fn drivers(&self) -> &[String] {
        &self.drivers
    }

    /// Train a model on the current selection.
    ///
    /// # Errors
    /// [`CoreError::NoKpi`] when no KPI is selected, [`CoreError::Config`]
    /// when drivers contain nulls; propagated learn errors otherwise.
    pub fn train(&self, config: &ModelConfig) -> Result<TrainedModel> {
        let (kpi, kind, x, y) = self.training_inputs()?;
        TrainedModel::fit(&kpi, kind, self.drivers.clone(), x, y, config)
    }

    /// The content identity of the training request this selection +
    /// `config` would run, computed **without training** — the dedup
    /// key of the [`crate::store::ModelStore`]. Two sessions over
    /// bit-identical data with the same KPI, driver selection, and
    /// behavior-relevant configuration produce equal fingerprints (and
    /// would train bit-identical models).
    ///
    /// # Errors
    /// Exactly the validation errors of [`Session::train`] that don't
    /// require a fitted model: missing KPI, empty/nullable drivers,
    /// kind/KPI mismatches.
    pub fn train_fingerprint(&self, config: &ModelConfig) -> Result<whatif_cache::Fingerprint> {
        let (kpi, kind, x, y) = self.training_inputs()?;
        crate::model_backend::training_fingerprint(&kpi, kind, &self.drivers, &x, &y, config)
    }

    /// Extract the exact inputs `TrainedModel::fit` consumes — shared
    /// by [`Session::train`], [`Session::train_fingerprint`], and the
    /// [`crate::store::ModelStore`] (which extracts once, fingerprints,
    /// and trains from the same copies) so the dedup key and the
    /// training run can never see different data.
    pub(crate) fn training_inputs(&self) -> Result<(String, KpiKind, Matrix, Vec<f64>)> {
        let kpi = self.kpi.as_deref().ok_or(CoreError::NoKpi)?;
        if self.drivers.is_empty() {
            return Err(CoreError::Config("no drivers selected".to_owned()));
        }
        let kpi_col = self.frame.column(kpi)?;
        let kind = detect_kpi_kind(kpi_col)?;
        let y = kpi_targets(kpi_col)?;
        let refs: Vec<&str> = self.drivers.iter().map(String::as_str).collect();
        let flat = self.frame.numeric_matrix(&refs)?;
        let x = Matrix::from_vec(flat, self.frame.n_rows(), self.drivers.len())?;
        Ok((kpi.to_owned(), kind, x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatif_frame::Column;

    fn frame() -> Frame {
        Frame::from_columns(vec![
            Column::from_str_values("name", vec!["a"; 40]),
            Column::from_f64("x1", (0..40).map(|i| (i % 8) as f64).collect()),
            Column::from_i64("x2", (0..40).map(|i| (i % 5) as i64).collect()),
            Column::from_f64(
                "sales",
                (0..40).map(|i| 2.0 * (i % 8) as f64 + 3.0).collect(),
            ),
            Column::from_bool("won", (0..40).map(|i| i % 8 > 3).collect()),
        ])
        .unwrap()
    }

    #[test]
    fn textual_columns_are_auto_deselected() {
        let s = Session::new(frame());
        assert!(!s.drivers().contains(&"name".to_owned()));
        assert_eq!(s.drivers().len(), 4);
    }

    #[test]
    fn kpi_selection_removes_it_from_drivers() {
        let s = Session::new(frame()).with_kpi("sales").unwrap();
        assert_eq!(s.kpi(), Some("sales"));
        assert!(!s.drivers().contains(&"sales".to_owned()));
        assert_eq!(s.kpi_kind().unwrap(), KpiKind::Continuous);
        let s = Session::new(frame()).with_kpi("won").unwrap();
        assert_eq!(s.kpi_kind().unwrap(), KpiKind::Binary);
    }

    #[test]
    fn invalid_kpis_rejected() {
        assert!(Session::new(frame()).with_kpi("name").is_err());
        assert!(Session::new(frame()).with_kpi("ghost").is_err());
        assert!(Session::new(frame()).kpi_kind().is_err());
    }

    #[test]
    fn driver_selection_validation() {
        let s = Session::new(frame()).with_kpi("sales").unwrap();
        let ok = s.clone().with_drivers(&["x1", "x2"]).unwrap();
        assert_eq!(ok.drivers(), &["x1".to_owned(), "x2".to_owned()]);
        assert!(s.clone().with_drivers(&[]).is_err());
        assert!(s.clone().with_drivers(&["name"]).is_err());
        assert!(s.clone().with_drivers(&["sales"]).is_err(), "KPI as driver");
        assert!(s.clone().with_drivers(&["x1", "x1"]).is_err());
        assert!(s.clone().with_drivers(&["ghost"]).is_err());
    }

    #[test]
    fn without_drivers_removes_and_validates() {
        let s = Session::new(frame()).with_kpi("sales").unwrap();
        let s2 = s.clone().without_drivers(&["x2"]).unwrap();
        assert!(!s2.drivers().contains(&"x2".to_owned()));
        assert!(s.clone().without_drivers(&["nope"]).is_err());
        assert!(s.clone().without_drivers(&["x1", "x2", "won"]).is_err());
    }

    #[test]
    fn train_end_to_end() {
        let s = Session::new(frame())
            .with_kpi("sales")
            .unwrap()
            .with_drivers(&["x1", "x2"])
            .unwrap();
        let m = s.train(&ModelConfig::default()).unwrap();
        assert_eq!(m.kpi_name(), "sales");
        assert!(m.confidence() > 0.95);
        // sales = 2*x1 + 3 exactly.
        let p = m.predict_row(&[4.0, 0.0]).unwrap();
        assert!((p - 11.0).abs() < 1e-6);
    }

    #[test]
    fn train_fingerprint_matches_identical_selections() {
        let cfg = ModelConfig::default();
        let a = Session::new(frame()).with_kpi("sales").unwrap();
        let b = Session::new(frame()).with_kpi("sales").unwrap();
        assert_eq!(
            a.train_fingerprint(&cfg).unwrap(),
            b.train_fingerprint(&cfg).unwrap(),
            "identical data + selection + config share one key"
        );
        // A different driver selection is a different training request.
        let c = b.clone().with_drivers(&["x1", "x2"]).unwrap();
        assert_ne!(
            a.train_fingerprint(&cfg).unwrap(),
            c.train_fingerprint(&cfg).unwrap()
        );
        // And it fails exactly when train would (no KPI selected).
        assert!(Session::new(frame()).train_fingerprint(&cfg).is_err());
    }

    #[test]
    fn train_requires_kpi_and_drivers() {
        let s = Session::new(frame());
        assert!(s.train(&ModelConfig::default()).is_err());
    }

    #[test]
    fn nullable_driver_is_rejected_at_train_time() {
        let mut f = frame();
        f.push_column(Column::from_f64_opt(
            "holey",
            (0..40)
                .map(|i| if i == 5 { None } else { Some(1.0) })
                .collect(),
        ))
        .unwrap();
        let s = Session::new(f)
            .with_kpi("sales")
            .unwrap()
            .with_drivers(&["x1", "holey"])
            .unwrap();
        assert!(s.train(&ModelConfig::default()).is_err());
    }
}
