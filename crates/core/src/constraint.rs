//! Constrained Analysis (paper §2 I): per-driver low/high percentage
//! bounds that regulate how goal inversion searches the perturbation
//! space — the mechanism for injecting "domain knowledge such as
//! business constraints and common sense".

use crate::error::{CoreError, Result};
use crate::model_backend::TrainedModel;
use serde::{Deserialize, Serialize};
use whatif_optim::Bounds;

/// A low/high bound on one driver's *percentage perturbation*,
/// e.g. "Open Marketing Email may only increase between 40 % and 80 %"
/// is `DriverConstraint::new("Open Marketing Email", 40.0, 80.0)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverConstraint {
    /// Constrained driver.
    pub driver: String,
    /// Lowest allowed percentage change (≥ −100).
    pub low_pct: f64,
    /// Highest allowed percentage change.
    pub high_pct: f64,
}

impl DriverConstraint {
    /// Box constraint on a driver's percentage perturbation.
    pub fn new(driver: impl Into<String>, low_pct: f64, high_pct: f64) -> DriverConstraint {
        DriverConstraint {
            driver: driver.into(),
            low_pct,
            high_pct,
        }
    }

    /// Freeze a driver at its original values (0 % change) — how a user
    /// excludes an unactionable driver from goal inversion.
    pub fn frozen(driver: impl Into<String>) -> DriverConstraint {
        DriverConstraint::new(driver, 0.0, 0.0)
    }

    /// Validate the interval.
    ///
    /// # Errors
    /// [`CoreError::Config`] for inverted intervals or a low bound below
    /// −100 % (which would flip value signs).
    pub fn validate(&self) -> Result<()> {
        if !self.low_pct.is_finite() || !self.high_pct.is_finite() {
            return Err(CoreError::Config(format!(
                "constraint on {:?} has non-finite bounds",
                self.driver
            )));
        }
        if self.low_pct > self.high_pct {
            return Err(CoreError::Config(format!(
                "constraint on {:?} is inverted: {} > {}",
                self.driver, self.low_pct, self.high_pct
            )));
        }
        if self.low_pct < -100.0 {
            return Err(CoreError::Config(format!(
                "constraint on {:?} goes below -100% ({}%)",
                self.driver, self.low_pct
            )));
        }
        Ok(())
    }
}

/// Default percentage range for unconstrained drivers during goal
/// inversion: activities can be cut in half or scaled up to 2.2×.
pub const DEFAULT_LOW_PCT: f64 = -50.0;
/// See [`DEFAULT_LOW_PCT`].
pub const DEFAULT_HIGH_PCT: f64 = 120.0;

/// Build optimizer bounds over percentage space in driver order:
/// constrained drivers use their interval, others the defaults.
///
/// # Errors
/// [`CoreError::Config`] for unknown/duplicate drivers or invalid
/// intervals.
pub fn build_bounds(
    model: &TrainedModel,
    constraints: &[DriverConstraint],
    default_low: f64,
    default_high: f64,
) -> Result<Bounds> {
    if default_low > default_high || default_low < -100.0 {
        return Err(CoreError::Config(format!(
            "invalid default percentage range [{default_low}, {default_high}]"
        )));
    }
    let names = model.driver_names();
    let mut lows = vec![default_low; names.len()];
    let mut highs = vec![default_high; names.len()];
    let mut seen: Vec<&str> = Vec::with_capacity(constraints.len());
    for c in constraints {
        c.validate()?;
        if seen.contains(&c.driver.as_str()) {
            return Err(CoreError::Config(format!(
                "driver {:?} constrained more than once",
                c.driver
            )));
        }
        seen.push(&c.driver);
        let j = model.driver_index(&c.driver)?;
        lows[j] = c.low_pct;
        highs[j] = c.high_pct;
    }
    Ok(Bounds::new(lows, highs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use crate::model_backend::{ModelConfig, TrainedModel};
    use whatif_learn::Matrix;

    fn model() -> TrainedModel {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into(), "b".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn constraint_validation() {
        assert!(DriverConstraint::new("a", 40.0, 80.0).validate().is_ok());
        assert!(DriverConstraint::new("a", 80.0, 40.0).validate().is_err());
        assert!(DriverConstraint::new("a", -150.0, 0.0).validate().is_err());
        assert!(DriverConstraint::new("a", f64::NAN, 0.0)
            .validate()
            .is_err());
        let frozen = DriverConstraint::frozen("a");
        assert_eq!((frozen.low_pct, frozen.high_pct), (0.0, 0.0));
        assert!(frozen.validate().is_ok());
    }

    #[test]
    fn bounds_mix_constraints_and_defaults() {
        let m = model();
        let b = build_bounds(
            &m,
            &[DriverConstraint::new("a", 40.0, 80.0)],
            DEFAULT_LOW_PCT,
            DEFAULT_HIGH_PCT,
        )
        .unwrap();
        assert_eq!(b.lows(), &[40.0, DEFAULT_LOW_PCT]);
        assert_eq!(b.highs(), &[80.0, DEFAULT_HIGH_PCT]);
    }

    #[test]
    fn bounds_errors() {
        let m = model();
        assert!(build_bounds(&m, &[DriverConstraint::new("zz", 0.0, 1.0)], -50.0, 250.0).is_err());
        let dup = [
            DriverConstraint::new("a", 0.0, 1.0),
            DriverConstraint::new("a", 2.0, 3.0),
        ];
        assert!(build_bounds(&m, &dup, -50.0, 250.0).is_err());
        assert!(build_bounds(&m, &[], 10.0, 0.0).is_err());
        assert!(build_bounds(&m, &[], -200.0, 0.0).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = DriverConstraint::new("a", 40.0, 80.0);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(c, serde_json::from_str::<DriverConstraint>(&json).unwrap());
    }
}
