//! Bulk scenario evaluation: price N heterogeneous what-if scenarios
//! against one trained model in a single call.
//!
//! The paper frames what-if as an *interactive* loop, but both WhIM
//! (Echterhoff et al. 2023) and PRAXA (Gathani et al. 2025) treat it as
//! bulk evaluation over large scenario sets — "as many scenarios as you
//! can imagine". A [`ScenarioSet`] compiles every scenario's
//! perturbations once (validation and driver-index resolution up
//! front), then scores scenarios in parallel on scoped threads, each
//! through a copy-on-write column overlay and one batched prediction
//! pass — zero full-matrix clones.

use crate::error::{CoreError, Result};
use crate::model_backend::TrainedModel;
use crate::perturbation::{PerturbationPlan, PerturbationSet};
use serde::{Deserialize, Serialize};

/// One named scenario to evaluate: a perturbation set with a label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// User-facing name (becomes the ledger entry's name on record).
    pub name: String,
    /// The driver changes this scenario applies.
    pub perturbations: PerturbationSet,
}

impl ScenarioSpec {
    /// A named scenario over the given perturbation set.
    pub fn new(name: impl Into<String>, perturbations: PerturbationSet) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            perturbations,
        }
    }
}

/// The priced outcome of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name, echoed from the spec.
    pub name: String,
    /// The perturbations that were applied.
    pub perturbations: PerturbationSet,
    /// KPI achieved under the scenario.
    pub kpi: f64,
    /// KPI on the original data.
    pub baseline_kpi: f64,
}

impl ScenarioOutcome {
    /// KPI change versus the unperturbed baseline.
    pub fn uplift(&self) -> f64 {
        self.kpi - self.baseline_kpi
    }
}

/// Default scenario-level worker threads, shared by every surface that
/// needs a fallback: [`ScenarioSet::new`], the `Scenarios` analysis
/// spec, and the server's `EvaluateScenarios` handler.
pub const DEFAULT_SCENARIO_THREADS: usize = 4;

/// A batch of scenarios evaluated together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSet {
    /// The scenarios, evaluated independently.
    pub scenarios: Vec<ScenarioSpec>,
    /// Worker threads for evaluation (`1` = sequential).
    pub n_threads: usize,
}

impl ScenarioSet {
    /// A set with the default parallelism
    /// ([`DEFAULT_SCENARIO_THREADS`]).
    pub fn new(scenarios: Vec<ScenarioSpec>) -> ScenarioSet {
        ScenarioSet {
            scenarios,
            n_threads: DEFAULT_SCENARIO_THREADS,
        }
    }

    /// Override the worker-thread count.
    pub fn with_threads(mut self, n_threads: usize) -> ScenarioSet {
        self.n_threads = n_threads.max(1);
        self
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl TrainedModel {
    /// Evaluate every scenario in the set, in input order.
    ///
    /// All perturbation sets are compiled (validated, indices resolved)
    /// before any evaluation starts, so a bad scenario fails the whole
    /// call fast with its name in the error. Evaluation then proceeds
    /// in parallel chunks; each scenario costs one overlay (only its
    /// perturbed columns materialized) plus one batched prediction pass
    /// into a per-worker reused buffer.
    ///
    /// # Errors
    /// [`CoreError::Config`] naming the offending scenario on invalid
    /// perturbations; propagated prediction errors otherwise.
    pub fn evaluate_scenarios(&self, set: &ScenarioSet) -> Result<Vec<ScenarioOutcome>> {
        let plans = self.compile_scenarios(set)?;
        let refs: Vec<&PerturbationPlan> = plans.iter().collect();
        let kpis = self.score_plans(&refs, set.n_threads);
        set.scenarios
            .iter()
            .zip(kpis)
            .map(|(s, kpi)| {
                Ok(ScenarioOutcome {
                    name: s.name.clone(),
                    perturbations: s.perturbations.clone(),
                    kpi: kpi?,
                    baseline_kpi: self.baseline_kpi(),
                })
            })
            .collect()
    }

    /// Compile every scenario's perturbations up front: fail fast, with
    /// the offending scenario's name in the error, before any
    /// evaluation (or cache lookup) starts.
    pub(crate) fn compile_scenarios(&self, set: &ScenarioSet) -> Result<Vec<PerturbationPlan>> {
        set.scenarios
            .iter()
            .map(|s| {
                self.compile_perturbations(&s.perturbations)
                    .map_err(|e| CoreError::Config(format!("scenario {:?}: {e}", s.name)))
            })
            .collect()
    }

    /// Score each plan independently (overlay + one batched prediction
    /// pass into a per-worker reused buffer), preserving input order.
    ///
    /// Exactly one level of fan-out: when the model's own batch
    /// prediction already parallelizes over rows (big forests), run
    /// plans sequentially and let it use the cores; otherwise fan out
    /// over plans — but only when the grid carries enough work to
    /// amortize thread spawns, and never beyond the hardware's
    /// parallelism. Results are order-preserved and identical in every
    /// case, which is why the cache-aware path can score just its
    /// misses through the same helper and stay bit-identical.
    pub(crate) fn score_plans(
        &self,
        plans: &[&PerturbationPlan],
        requested_threads: usize,
    ) -> Vec<Result<f64>> {
        let _stage = whatif_obs::span::stage(whatif_obs::Stage::Predict);
        let score = |plan: &PerturbationPlan, buf: &mut Vec<f64>| -> Result<f64> {
            let overlay = plan.overlay(self.matrix())?;
            self.predict_batch_into((&overlay).into(), buf)?;
            Ok(buf.iter().sum::<f64>() / buf.len().max(1) as f64)
        };

        let hw = whatif_learn::forest::hardware_parallelism();
        let work = plans.len().saturating_mul(self.matrix().n_rows());
        let n_threads = if work < 16_384 || self.batch_predict_is_parallel() {
            1
        } else {
            requested_threads.max(1).min(plans.len().max(1)).min(hw)
        };
        if n_threads <= 1 {
            let mut buf = vec![0.0; self.matrix().n_rows()];
            plans.iter().map(|p| score(p, &mut buf)).collect()
        } else {
            let chunk_len = plans.len().div_ceil(n_threads);
            let chunks: Vec<Vec<Result<f64>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = plans
                    .chunks(chunk_len)
                    .map(|chunk| {
                        let score = &score;
                        scope.spawn(move || {
                            let mut buf = vec![0.0; self.matrix().n_rows()];
                            chunk.iter().map(|p| score(p, &mut buf)).collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Propagate a worker's panic with its original
                    // payload instead of minting a new one here.
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            });
            chunks.into_iter().flatten().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use crate::model_backend::ModelConfig;
    use crate::perturbation::Perturbation;
    use whatif_learn::Matrix;

    /// Exact linear model: y = 2*a - b + 5.
    fn model() -> TrainedModel {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, ((i * 3) % 6) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 5.0).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into(), "b".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    fn grid() -> Vec<ScenarioSpec> {
        let mut scenarios = Vec::new();
        for pct in [-20.0, 0.0, 20.0, 40.0] {
            scenarios.push(ScenarioSpec::new(
                format!("a{pct:+}"),
                PerturbationSet::new(vec![Perturbation::percentage("a", pct)]),
            ));
            scenarios.push(ScenarioSpec::new(
                format!("a{pct:+} b-1"),
                PerturbationSet::new(vec![
                    Perturbation::percentage("a", pct),
                    Perturbation::absolute("b", -1.0),
                ]),
            ));
        }
        scenarios
    }

    #[test]
    fn bulk_matches_per_scenario_sensitivity_exactly() {
        let m = model();
        let set = ScenarioSet::new(grid());
        let outcomes = m.evaluate_scenarios(&set).unwrap();
        assert_eq!(outcomes.len(), set.len());
        for (spec, out) in set.scenarios.iter().zip(&outcomes) {
            assert_eq!(out.name, spec.name, "input order preserved");
            let single = m.sensitivity(&spec.perturbations).unwrap();
            assert!(out.kpi.to_bits() == single.perturbed_kpi.to_bits());
            assert!((out.uplift() - single.uplift()).abs() < 1e-15);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let m = model();
        let sequential = m
            .evaluate_scenarios(&ScenarioSet::new(grid()).with_threads(1))
            .unwrap();
        for threads in [2, 5, 16] {
            let parallel = m
                .evaluate_scenarios(&ScenarioSet::new(grid()).with_threads(threads))
                .unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn bad_scenario_fails_fast_with_its_name() {
        let m = model();
        let set = ScenarioSet::new(vec![
            ScenarioSpec::new(
                "fine",
                PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]),
            ),
            ScenarioSpec::new(
                "broken",
                PerturbationSet::new(vec![Perturbation::percentage("zz", 10.0)]),
            ),
        ]);
        let err = m.evaluate_scenarios(&set).unwrap_err();
        assert!(err.to_string().contains("broken"), "{err}");
    }

    #[test]
    fn empty_set_is_fine() {
        let m = model();
        assert!(m
            .evaluate_scenarios(&ScenarioSet::new(Vec::new()))
            .unwrap()
            .is_empty());
        assert!(ScenarioSet::new(Vec::new()).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let set = ScenarioSet::new(grid()).with_threads(2);
        let json = serde_json::to_string(&set).unwrap();
        assert_eq!(set, serde_json::from_str::<ScenarioSet>(&json).unwrap());
        let m = model();
        let outcomes = m.evaluate_scenarios(&set).unwrap();
        let json = serde_json::to_string(&outcomes).unwrap();
        assert_eq!(
            outcomes,
            serde_json::from_str::<Vec<ScenarioOutcome>>(&json).unwrap()
        );
    }
}
