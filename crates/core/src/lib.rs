//! # whatif-core
//!
//! The primary contribution of *"Augmenting Decision Making via
//! Interactive What-If Analysis"* (CIDR 2022) as a typed Rust API: the
//! four functionalities the paper argues every enterprise analysis
//! system needs, built over the workspace's dataframe ([`whatif_frame`]),
//! model ([`whatif_learn`]), and optimizer ([`whatif_optim`]) substrates.
//!
//! | Paper functionality | Module |
//! |---|---|
//! | Driver Importance Analysis (§2 E) | [`importance`] |
//! | Sensitivity Analysis (§2 H) | [`sensitivity`] (+ [`perturbation`]) |
//! | Goal Inversion (Seeking) Analysis (§2 I) | [`goal`] |
//! | Constrained Analysis (§2 I) | [`constraint`] + [`goal`] |
//!
//! Plus the surrounding machinery the paper describes or calls for:
//!
//! * [`session`] — KPI selection, driver selection, model training
//!   (Figure 2 views C/D).
//! * [`model_backend`] — the paper's model-selection rule: linear
//!   regression for continuous KPIs, random-forest classifier for
//!   discrete ones; plus an interpretable logistic alternative for the
//!   §5 interpretability-vs-accuracy axis.
//! * [`scenario`] — scenarios/options as "first-class citizens of data
//!   analysis" (§1): a ledger of named what-if outcomes.
//! * [`bulk`] — [`bulk::ScenarioSet`]: N heterogeneous scenarios
//!   compiled once and priced in parallel through copy-on-write
//!   overlays and batched prediction, zero full-matrix clones.
//! * [`cached`] — [`cached::EvalCache`]: a shared content-addressed
//!   result cache over model/plan fingerprints; the interactive hot
//!   paths re-run in microseconds when a question repeats, with
//!   bit-identical answers.
//! * [`store`] — [`store::ModelStore`]: the train-once dedup layer. N
//!   sessions over identical data + configuration train **one** model
//!   and share one `Arc`, keyed by the pre-train
//!   [`session::Session::train_fingerprint`].
//! * [`spec`] — a JSON-serializable declarative specification of
//!   analyses, the §5 "Specification and Reuse" future-work direction,
//!   implemented.
//!
//! ## Quickstart
//!
//! ```
//! use whatif_core::prelude::*;
//! use whatif_frame::{Column, Frame};
//!
//! // A tiny dataset: ad spend drives sales.
//! let frame = Frame::from_columns(vec![
//!     Column::from_f64("spend", (0..40).map(|i| (i % 10) as f64).collect()),
//!     Column::from_f64("noise", (0..40).map(|i| ((i * 7) % 5) as f64).collect()),
//!     Column::from_f64("sales", (0..40).map(|i| 3.0 * ((i % 10) as f64) + 10.0).collect()),
//! ]).unwrap();
//!
//! let session = Session::new(frame).with_kpi("sales").unwrap();
//! let model = session.train(&ModelConfig::default()).unwrap();
//!
//! // 1. Driver importance: spend dominates.
//! let imp = model.driver_importance().unwrap();
//! assert_eq!(imp.ranked_names()[0], "spend");
//!
//! // 2. Sensitivity: +10% spend raises mean predicted sales.
//! let pset = PerturbationSet::new(vec![Perturbation::percentage("spend", 10.0)]);
//! let sens = model.sensitivity(&pset).unwrap();
//! assert!(sens.uplift() > 0.0);
//! ```

pub mod bulk;
pub mod cached;
pub mod constraint;
pub mod error;
pub mod goal;
pub mod importance;
pub mod kpi;
pub mod model_backend;
pub mod perturbation;
pub mod scenario;
pub mod seek;
pub mod sensitivity;
pub mod session;
pub mod spec;
pub mod store;
pub mod uncertainty;

pub use bulk::{ScenarioOutcome, ScenarioSet, ScenarioSpec};
pub use cached::{CachedOutcome, EvalCache};
pub use constraint::DriverConstraint;
pub use error::{CoreError, ErrorCode, Result};
pub use goal::{Goal, GoalConfig, GoalInversionResult, OptimizerChoice};
pub use importance::{DriverImportance, VerificationReport};
pub use kpi::KpiKind;
pub use model_backend::{ModelConfig, ModelKind, SharedModel, TrainedModel};
pub use perturbation::{Perturbation, PerturbationKind, PerturbationPlan, PerturbationSet};
pub use scenario::{Scenario, ScenarioKind, ScenarioLedger};
pub use seek::DriverSeekResult;
pub use sensitivity::{ComparisonCurve, PerDataSensitivity, SensitivityResult};
pub use session::Session;
pub use spec::{AnalysisSpec, SpecOutcome, WhatIfSpec};
pub use store::ModelStore;
pub use uncertainty::{BootstrapConfig, Interval, SensitivityInterval};

/// The most-used types, for glob import.
pub mod prelude {
    pub use crate::bulk::{ScenarioOutcome, ScenarioSet, ScenarioSpec};
    pub use crate::cached::EvalCache;
    pub use crate::constraint::DriverConstraint;
    pub use crate::error::{CoreError, ErrorCode};
    pub use crate::goal::{Goal, GoalConfig, OptimizerChoice};
    pub use crate::importance::DriverImportance;
    pub use crate::model_backend::{ModelConfig, ModelKind, SharedModel, TrainedModel};
    pub use crate::perturbation::{
        Perturbation, PerturbationKind, PerturbationPlan, PerturbationSet,
    };
    pub use crate::scenario::{Scenario, ScenarioLedger};
    pub use crate::session::Session;
    pub use crate::spec::WhatIfSpec;
    pub use crate::store::ModelStore;
}
