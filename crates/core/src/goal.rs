//! Goal Inversion (Seeking) Analysis (paper §2 I): given a KPI goal —
//! maximize, minimize, or hit a target — search the space of driver
//! perturbations for values that achieve it.
//!
//! The search space is the box of per-driver *percentage* changes
//! (constrained analysis narrows it per driver); the default engine is
//! the Bayesian optimizer, with random/grid/Nelder–Mead selectable for
//! the benchmark comparisons.

use crate::constraint::{build_bounds, DriverConstraint, DEFAULT_HIGH_PCT, DEFAULT_LOW_PCT};
use crate::error::Result;
use crate::model_backend::TrainedModel;
use crate::perturbation::{Perturbation, PerturbationPlan, PerturbationSet};
use serde::{Deserialize, Serialize};
use whatif_optim::bayes::{BayesConfig, BayesianOptimizer};
use whatif_optim::grid::grid_search;
use whatif_optim::nelder_mead::{nelder_mead, NelderMeadConfig};
use whatif_optim::objective::{FnObjective, Objective};
use whatif_optim::random_search::random_search;
use whatif_optim::OptimResult;

/// The KPI goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Maximize the KPI ("freely optimize").
    Maximize,
    /// Minimize the KPI (e.g. churn rate).
    Minimize,
    /// Reach a specific KPI value.
    Target(f64),
}

/// Which search engine runs the inversion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerChoice {
    /// Gaussian-process Bayesian optimization (the paper's choice).
    Bayesian {
        /// Total objective evaluations.
        n_calls: usize,
    },
    /// Uniform random search baseline.
    RandomSearch {
        /// Total objective evaluations.
        n_evals: usize,
    },
    /// Full-factorial grid baseline (use with few drivers).
    GridSearch {
        /// Grid levels per driver.
        points_per_dim: usize,
    },
    /// Local simplex search from the no-change point.
    NelderMead {
        /// Maximum objective evaluations.
        max_evals: usize,
    },
}

impl Default for OptimizerChoice {
    fn default() -> Self {
        OptimizerChoice::Bayesian { n_calls: 96 }
    }
}

/// Goal-inversion configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalConfig {
    /// The KPI goal.
    pub goal: Goal,
    /// Search engine.
    pub optimizer: OptimizerChoice,
    /// Per-driver constraints (constrained analysis); unconstrained
    /// drivers default to `[-50 %, +120 %]`.
    pub constraints: Vec<DriverConstraint>,
    /// Default lower percentage for unconstrained drivers.
    pub default_low_pct: f64,
    /// Default upper percentage for unconstrained drivers.
    pub default_high_pct: f64,
    /// |KPI − target| tolerance for declaring a target goal reached.
    pub target_tolerance: f64,
    /// RNG seed for stochastic optimizers.
    pub seed: u64,
}

impl Default for GoalConfig {
    fn default() -> Self {
        GoalConfig {
            goal: Goal::Maximize,
            optimizer: OptimizerChoice::default(),
            constraints: Vec::new(),
            default_low_pct: DEFAULT_LOW_PCT,
            default_high_pct: DEFAULT_HIGH_PCT,
            target_tolerance: 0.01,
            seed: 0,
        }
    }
}

impl GoalConfig {
    /// Configuration for a given goal, defaults elsewhere.
    pub fn for_goal(goal: Goal) -> GoalConfig {
        GoalConfig {
            goal,
            ..Default::default()
        }
    }

    /// Add per-driver constraints (builder style).
    pub fn with_constraints(mut self, constraints: Vec<DriverConstraint>) -> GoalConfig {
        self.constraints = constraints;
        self
    }
}

/// The outcome of a goal-inversion run — "the best KPI attainable, the
/// confidence of the model used, and a set (not necessarily unique) of
/// driver values that achieve the user-specified KPI goal".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalInversionResult {
    /// The goal that was sought.
    pub goal: Goal,
    /// Best KPI attained.
    pub achieved_kpi: f64,
    /// KPI on the original data (for uplift display).
    pub baseline_kpi: f64,
    /// Holdout confidence of the underlying model.
    pub confidence: f64,
    /// Recommended percentage change per driver, in driver order.
    pub driver_percentages: Vec<(String, f64)>,
    /// Resulting mean driver values after applying the recommendation.
    pub driver_values: Vec<(String, f64)>,
    /// Objective evaluations spent.
    pub n_evals: usize,
    /// For [`Goal::Target`]: whether the tolerance was met. Always true
    /// for maximize/minimize.
    pub converged: bool,
}

impl GoalInversionResult {
    /// KPI change versus the original data.
    pub fn uplift(&self) -> f64 {
        self.achieved_kpi - self.baseline_kpi
    }

    /// The recommendation as a reusable [`PerturbationSet`].
    pub fn as_perturbations(&self) -> PerturbationSet {
        PerturbationSet::new(
            self.driver_percentages
                .iter()
                .map(|(d, pct)| Perturbation::percentage(d.clone(), *pct))
                .collect(),
        )
    }
}

impl TrainedModel {
    /// Run goal inversion under `config`.
    ///
    /// # Errors
    /// [`CoreError`] on invalid constraints or optimizer failures.
    pub fn goal_inversion(&self, config: &GoalConfig) -> Result<GoalInversionResult> {
        let bounds = build_bounds(
            self,
            &config.constraints,
            config.default_low_pct,
            config.default_high_pct,
        )?;
        let driver_names = self.driver_names().to_vec();
        let goal = config.goal;

        // Objective over percentage space (minimization convention).
        // Each evaluation builds a trusted per-column plan and scores
        // it through an overlay + one batched prediction pass: no name
        // resolution, validation, or per-call `PerturbationSet`
        // allocation. (This objective perturbs every driver, so the
        // overlay materializes all columns — the copy-on-write saving
        // itself belongs to the sparse paths: comparison sweeps, goal
        // seek, typical scenarios.)
        let eval_kpi = |pcts: &[f64]| -> f64 {
            let plan = PerturbationPlan::percentages(pcts, true);
            self.kpi_for_plan(&plan).unwrap_or(f64::NAN)
        };
        let objective = FnObjective::new(driver_names.len(), move |pcts: &[f64]| {
            let kpi = eval_kpi(pcts);
            match goal {
                Goal::Maximize => -kpi,
                Goal::Minimize => kpi,
                Goal::Target(t) => (kpi - t).abs(),
            }
        });

        let result = self.run_optimizer(&objective, &bounds, config)?;
        let best_pcts = result.best_x.clone();
        let achieved_kpi = match goal {
            Goal::Maximize => -result.best_f,
            Goal::Minimize => result.best_f,
            // For targets, re-evaluate: best_f is |kpi - target|.
            Goal::Target(t) => {
                let kpi = self.kpi_for_plan(&PerturbationPlan::percentages(&best_pcts, true))?;
                debug_assert!((kpi - t).abs() - result.best_f < 1e-9 + result.best_f.abs());
                kpi
            }
        };
        let converged = match goal {
            Goal::Target(t) => (achieved_kpi - t).abs() <= config.target_tolerance,
            _ => true,
        };

        // Mean driver values under the recommendation.
        let driver_values: Vec<(String, f64)> = driver_names
            .iter()
            .enumerate()
            .map(|(j, d)| {
                let col = self.matrix().col(j);
                let mean = col.iter().sum::<f64>() / col.len().max(1) as f64;
                (d.clone(), (mean * (1.0 + best_pcts[j] / 100.0)).max(0.0))
            })
            .collect();

        Ok(GoalInversionResult {
            goal,
            achieved_kpi,
            baseline_kpi: self.baseline_kpi(),
            confidence: self.confidence(),
            driver_percentages: driver_names.iter().cloned().zip(best_pcts).collect(),
            driver_values,
            n_evals: result.n_evals,
            converged,
        })
    }

    fn run_optimizer(
        &self,
        objective: &dyn Objective,
        bounds: &whatif_optim::Bounds,
        config: &GoalConfig,
    ) -> Result<OptimResult> {
        Ok(match config.optimizer {
            OptimizerChoice::Bayesian { n_calls } => {
                let bayes = BayesConfig {
                    n_calls,
                    n_initial: (n_calls / 5).clamp(4, 16),
                    seed: config.seed,
                    ..BayesConfig::default()
                };
                BayesianOptimizer::new(bayes).run(objective, bounds)?
            }
            OptimizerChoice::RandomSearch { n_evals } => {
                random_search(objective, bounds, n_evals, config.seed)?
            }
            OptimizerChoice::GridSearch { points_per_dim } => {
                grid_search(objective, bounds, points_per_dim)?
            }
            OptimizerChoice::NelderMead { max_evals } => {
                // Start from "no change" (clamped into bounds).
                let mut start = vec![0.0; bounds.dim()];
                bounds.clamp(&mut start);
                let cfg = NelderMeadConfig {
                    max_evals,
                    ..Default::default()
                };
                nelder_mead(objective, bounds, &start, &cfg)?
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use crate::model_backend::{ModelConfig, TrainedModel};
    use whatif_learn::Matrix;

    /// Exact linear model: y = 2*a - b + 5, a,b >= 0.
    fn model() -> TrainedModel {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64 + 1.0, ((i * 3) % 6) as f64 + 1.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 5.0).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into(), "b".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    /// Analytic optimum for the linear model: mean(a) = 5.5 and b
    /// alternates between 1 and 4 so mean(b) = 2.5, giving
    /// KPI = 2·(1+pa)·5.5 − (1+pb)·2.5 + 5.
    fn expected_kpi(pa: f64, pb: f64) -> f64 {
        2.0 * (1.0 + pa / 100.0) * 5.5 - (1.0 + pb / 100.0) * 2.5 + 5.0
    }

    #[test]
    fn maximize_pushes_positive_driver_up_and_negative_down() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Maximize);
        cfg.optimizer = OptimizerChoice::GridSearch { points_per_dim: 11 };
        let r = m.goal_inversion(&cfg).unwrap();
        // Exact optimum on the grid: a at +120%, b at -50%.
        let pa = r.driver_percentages[0].1;
        let pb = r.driver_percentages[1].1;
        assert_eq!(pa, 120.0);
        assert_eq!(pb, -50.0);
        assert!((r.achieved_kpi - expected_kpi(120.0, -50.0)).abs() < 1e-6);
        assert!(r.uplift() > 0.0);
        assert!(r.converged);
    }

    #[test]
    fn minimize_does_the_reverse() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Minimize);
        cfg.optimizer = OptimizerChoice::GridSearch { points_per_dim: 11 };
        let r = m.goal_inversion(&cfg).unwrap();
        assert_eq!(r.driver_percentages[0].1, -50.0);
        assert_eq!(r.driver_percentages[1].1, 120.0);
        assert!(r.uplift() < 0.0);
    }

    #[test]
    fn constraints_bind_the_search() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Maximize)
            .with_constraints(vec![DriverConstraint::new("a", 40.0, 80.0)]);
        cfg.optimizer = OptimizerChoice::GridSearch { points_per_dim: 9 };
        let r = m.goal_inversion(&cfg).unwrap();
        let pa = r.driver_percentages[0].1;
        assert!((40.0..=80.0).contains(&pa), "constrained: {pa}");
        assert_eq!(pa, 80.0, "maximum of the allowed range");
    }

    #[test]
    fn frozen_driver_stays_fixed() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Maximize)
            .with_constraints(vec![DriverConstraint::frozen("b")]);
        cfg.optimizer = OptimizerChoice::GridSearch { points_per_dim: 9 };
        let r = m.goal_inversion(&cfg).unwrap();
        assert_eq!(r.driver_percentages[1].1, 0.0);
    }

    #[test]
    fn target_goal_converges_within_tolerance() {
        let m = model();
        let baseline = m.baseline_kpi();
        let target = baseline + 2.0;
        let mut cfg = GoalConfig::for_goal(Goal::Target(target));
        cfg.optimizer = OptimizerChoice::Bayesian { n_calls: 60 };
        cfg.target_tolerance = 0.3;
        let r = m.goal_inversion(&cfg).unwrap();
        assert!(
            (r.achieved_kpi - target).abs() <= 0.3,
            "achieved {} target {target}",
            r.achieved_kpi
        );
        assert!(r.converged);
    }

    #[test]
    fn unreachable_target_reports_non_convergence() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Target(1e9));
        cfg.optimizer = OptimizerChoice::RandomSearch { n_evals: 30 };
        let r = m.goal_inversion(&cfg).unwrap();
        assert!(!r.converged);
    }

    #[test]
    fn bayesian_beats_or_matches_random_at_same_budget() {
        let m = model();
        let mut best_bayes = 0.0;
        let mut best_random = 0.0;
        for seed in 0..3 {
            let mut cfg = GoalConfig::for_goal(Goal::Maximize);
            cfg.optimizer = OptimizerChoice::Bayesian { n_calls: 40 };
            cfg.seed = seed;
            best_bayes += m.goal_inversion(&cfg).unwrap().achieved_kpi;
            cfg.optimizer = OptimizerChoice::RandomSearch { n_evals: 40 };
            best_random += m.goal_inversion(&cfg).unwrap().achieved_kpi;
        }
        assert!(
            best_bayes >= best_random - 0.3,
            "bayes {best_bayes} vs random {best_random}"
        );
    }

    #[test]
    fn result_round_trips_to_perturbations() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Maximize);
        cfg.optimizer = OptimizerChoice::GridSearch { points_per_dim: 5 };
        let r = m.goal_inversion(&cfg).unwrap();
        let set = r.as_perturbations();
        let sens = m.sensitivity(&set).unwrap();
        assert!((sens.perturbed_kpi - r.achieved_kpi).abs() < 1e-9);
    }

    #[test]
    fn nelder_mead_improves_from_zero() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Maximize);
        cfg.optimizer = OptimizerChoice::NelderMead { max_evals: 80 };
        let r = m.goal_inversion(&cfg).unwrap();
        assert!(r.uplift() > 0.0);
        assert!(r.n_evals <= 80);
    }

    #[test]
    fn driver_values_reflect_percentages() {
        let m = model();
        let mut cfg = GoalConfig::for_goal(Goal::Maximize);
        cfg.optimizer = OptimizerChoice::GridSearch { points_per_dim: 5 };
        let r = m.goal_inversion(&cfg).unwrap();
        let (name, value) = &r.driver_values[0];
        assert_eq!(name, "a");
        let pct = r.driver_percentages[0].1;
        assert!((value - 5.5 * (1.0 + pct / 100.0)).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = GoalConfig::for_goal(Goal::Target(0.9))
            .with_constraints(vec![DriverConstraint::new("a", 40.0, 80.0)]);
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(cfg, serde_json::from_str::<GoalConfig>(&json).unwrap());
    }
}
