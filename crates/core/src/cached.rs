//! Cache-aware evaluation: the interactive hot paths, memoized.
//!
//! The paper's loop is interactive — an analyst drags a slider, re-runs
//! sensitivity or goal seeking, and expects sub-second feedback — and
//! real sessions revisit near-identical perturbations constantly. This
//! module routes every hot evaluation path through a shared
//! [`EvalCache`] so identical *(model, question)* pairs are computed
//! once, process-wide:
//!
//! * [`TrainedModel::kpi_for_plan_cached`] — the atom everything else
//!   composes: one KPI per compiled [`PerturbationPlan`], keyed by the
//!   model fingerprint × the plan fingerprint. Sensitivity, comparison
//!   sweeps, goal-seek bisection iterations, and bulk scenario scoring
//!   all share these entries (a goal-seek probe at +40 % warms the
//!   comparison sweep's +40 % grid point and vice versa).
//! * [`TrainedModel::per_data_sensitivity_cached`] — per-row results.
//! * [`TrainedModel::goal_inversion_cached`] — whole-result entries
//!   keyed by the full [`GoalConfig`] (goal, optimizer, constraints,
//!   seed); the optimizer's own probe evaluations are *not* cached, so
//!   a 96-call Bayesian run costs one entry, not 96 dense ones.
//!
//! Every cached method returns `(result, cached)` where `cached` means
//! *fully served from the cache* — composite analyses (comparison
//! sweeps, bulk sets) report `true` only when every constituent lookup
//! hit. Results are **bit-identical** to the uncached paths: cache
//! values are exact `f64`s/structs produced by those same paths, and
//! the equivalence suite (`tests/cache_equivalence.rs`) pins this
//! property across random models and plans.
//!
//! Soundness is by content addressing, not invalidation: keys embed the
//! model's train-time [`fingerprint`](TrainedModel::fingerprint), so
//! retraining, swapping data, or changing hyperparameters changes the
//! key space and stale entries can never be served — they just age out
//! of the LRU budget.

use crate::bulk::{ScenarioOutcome, ScenarioSet};
use crate::error::Result;
use crate::goal::{Goal, GoalConfig, GoalInversionResult, OptimizerChoice};
use crate::model_backend::TrainedModel;
use crate::perturbation::{PerturbationPlan, PerturbationSet};
use crate::seek::DriverSeekResult;
use crate::sensitivity::{ComparisonCurve, PerDataSensitivity, SensitivityResult};
use std::sync::Arc;
use whatif_cache::{CacheKey, CacheStats, CacheWeight, Hasher128, ResultCache};

/// Default process-wide budget: 64 MiB — roughly half a million cached
/// KPI points, far beyond any interactive session, small next to one
/// loaded dataset.
pub const DEFAULT_CACHE_CAPACITY_BYTES: usize = 64 << 20;

/// Domain-separation tags so differently-shaped questions can never
/// collide on a payload fingerprint.
const TAG_PLAN_KPI: u8 = 1;
const TAG_PER_DATA: u8 = 2;
const TAG_GOAL: u8 = 3;

/// A memoized evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedOutcome {
    /// The KPI of the training data under one compiled plan.
    Kpi(f64),
    /// A per-row sensitivity result.
    PerData(PerDataSensitivity),
    /// A whole goal-inversion result.
    Goal(GoalInversionResult),
}

impl CacheWeight for CachedOutcome {
    fn weight_bytes(&self) -> usize {
        // Every stored value occupies the full enum in the map slot —
        // the largest variant's inline size — regardless of which
        // variant it is; heap-owned payloads are charged on top.
        let inline = std::mem::size_of::<CachedOutcome>();
        match self {
            CachedOutcome::Kpi(_) | CachedOutcome::PerData(_) => inline,
            CachedOutcome::Goal(g) => {
                let heap: usize = g
                    .driver_percentages
                    .iter()
                    .chain(&g.driver_values)
                    .map(|(name, _)| name.len() + std::mem::size_of::<(String, f64)>())
                    .sum();
                inline + heap
            }
        }
    }
}

/// A cheaply-cloneable handle to a shared, sharded, memory-budgeted
/// result cache. The server holds one per process; every session's
/// evaluations go through it, so two clients asking the same question
/// of bit-identical models pay for one computation.
#[derive(Clone)]
pub struct EvalCache {
    inner: Arc<ResultCache<CachedOutcome>>,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new(DEFAULT_CACHE_CAPACITY_BYTES)
    }
}

impl EvalCache {
    /// An enabled cache with the given byte budget.
    pub fn new(capacity_bytes: usize) -> EvalCache {
        EvalCache {
            inner: Arc::new(ResultCache::new(capacity_bytes)),
        }
    }

    /// Accounting snapshot (hits, misses, evictions, bytes, ...).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Reconfigure the byte budget and/or enablement. Shrinking evicts
    /// immediately; disabling makes lookups/insertions transparent
    /// no-ops while retaining entries for instant re-warm.
    pub fn configure(&self, capacity_bytes: Option<usize>, enabled: Option<bool>) {
        self.inner.configure(capacity_bytes, enabled);
    }

    /// Whether lookups/insertions are currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }

    /// Drop every entry (lifetime counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }

    fn get(&self, key: &CacheKey) -> Option<CachedOutcome> {
        let _stage = whatif_obs::span::stage(whatif_obs::Stage::CacheProbe);
        // Armed "cache.lookup" degrades to a forced miss: the analysis
        // recomputes and still succeeds, it just loses the cache win.
        if whatif_chaos::fails("cache.lookup") {
            return None;
        }
        self.inner.get(key)
    }

    fn insert(&self, key: CacheKey, value: CachedOutcome) {
        let _stage = whatif_obs::span::stage(whatif_obs::Stage::CacheProbe);
        self.inner.insert(key, value);
    }
}

fn plan_key(model: &TrainedModel, plan: &PerturbationPlan) -> CacheKey {
    let mut h = Hasher128::new();
    h.write_u8(TAG_PLAN_KPI);
    plan.write_fingerprint(&mut h);
    CacheKey::new(model.fingerprint(), h.finish())
}

fn per_data_key(model: &TrainedModel, row: usize, plan: &PerturbationPlan) -> CacheKey {
    let mut h = Hasher128::new();
    h.write_u8(TAG_PER_DATA);
    h.write_usize(row);
    plan.write_fingerprint(&mut h);
    CacheKey::new(model.fingerprint(), h.finish())
}

fn goal_key(model: &TrainedModel, config: &GoalConfig) -> CacheKey {
    let mut h = Hasher128::new();
    h.write_u8(TAG_GOAL);
    match config.goal {
        Goal::Maximize => h.write_u8(0),
        Goal::Minimize => h.write_u8(1),
        Goal::Target(t) => {
            h.write_u8(2);
            h.write_f64(t);
        }
    }
    match config.optimizer {
        OptimizerChoice::Bayesian { n_calls } => {
            h.write_u8(0);
            h.write_usize(n_calls);
        }
        OptimizerChoice::RandomSearch { n_evals } => {
            h.write_u8(1);
            h.write_usize(n_evals);
        }
        OptimizerChoice::GridSearch { points_per_dim } => {
            h.write_u8(2);
            h.write_usize(points_per_dim);
        }
        OptimizerChoice::NelderMead { max_evals } => {
            h.write_u8(3);
            h.write_usize(max_evals);
        }
    }
    h.write_usize(config.constraints.len());
    for c in &config.constraints {
        h.write_str(&c.driver);
        h.write_f64(c.low_pct);
        h.write_f64(c.high_pct);
    }
    h.write_f64(config.default_low_pct);
    h.write_f64(config.default_high_pct);
    h.write_f64(config.target_tolerance);
    h.write_u64(config.seed);
    CacheKey::new(model.fingerprint(), h.finish())
}

impl TrainedModel {
    /// [`TrainedModel::kpi_for_plan`], memoized. Returns the KPI and
    /// whether it was served from the cache.
    ///
    /// # Errors
    /// Exactly those of the uncached path.
    pub fn kpi_for_plan_cached(
        &self,
        plan: &PerturbationPlan,
        cache: &EvalCache,
    ) -> Result<(f64, bool)> {
        let key = plan_key(self, plan);
        if let Some(CachedOutcome::Kpi(kpi)) = cache.get(&key) {
            return Ok((kpi, true));
        }
        let kpi = self.kpi_for_plan(plan)?;
        cache.insert(key, CachedOutcome::Kpi(kpi));
        Ok((kpi, false))
    }

    /// The evaluation atom the shared cached/uncached implementations
    /// (sensitivity, comparison sweeps, goal seek) are parameterized
    /// over: `kpi_for_plan`, through the cache when one is supplied.
    pub(crate) fn kpi_for_plan_maybe(
        &self,
        plan: &PerturbationPlan,
        cache: Option<&EvalCache>,
    ) -> Result<(f64, bool)> {
        match cache {
            Some(cache) => self.kpi_for_plan_cached(plan, cache),
            None => Ok((self.kpi_for_plan(plan)?, false)),
        }
    }

    /// [`TrainedModel::sensitivity`], memoized on the compiled plan.
    ///
    /// # Errors
    /// Exactly those of the uncached path.
    pub fn sensitivity_cached(
        &self,
        set: &PerturbationSet,
        cache: &EvalCache,
    ) -> Result<(SensitivityResult, bool)> {
        self.sensitivity_with(set, Some(cache))
    }

    /// [`TrainedModel::comparison_analysis`], memoized per grid point
    /// (driver × percentage). `cached` is true only when *every* grid
    /// point hit — and single-column goal-seek probes warm the same
    /// entries, so a sweep after a seek is often partially free.
    ///
    /// # Errors
    /// Exactly those of the uncached path.
    pub fn comparison_analysis_cached(
        &self,
        percentages: &[f64],
        cache: &EvalCache,
    ) -> Result<(Vec<ComparisonCurve>, bool)> {
        self.comparison_with(percentages, Some(cache))
    }

    /// [`TrainedModel::per_data_sensitivity`], memoized on
    /// (row, compiled plan).
    ///
    /// # Errors
    /// Exactly those of the uncached path.
    pub fn per_data_sensitivity_cached(
        &self,
        row: usize,
        set: &PerturbationSet,
        cache: &EvalCache,
    ) -> Result<(PerDataSensitivity, bool)> {
        self.check_row(row)?;
        let plan = self.compile_perturbations(set)?;
        let key = per_data_key(self, row, &plan);
        if let Some(CachedOutcome::PerData(result)) = cache.get(&key) {
            return Ok((result, true));
        }
        let result = {
            let _stage = whatif_obs::span::stage(whatif_obs::Stage::Predict);
            self.per_data_for_plan(row, &plan)?
        };
        cache.insert(key, CachedOutcome::PerData(result.clone()));
        Ok((result, false))
    }

    /// [`TrainedModel::goal_inversion`], memoized as a whole result on
    /// the full configuration (all search engines are deterministic
    /// given their seed, so replaying a config replays the result).
    ///
    /// # Errors
    /// Exactly those of the uncached path.
    pub fn goal_inversion_cached(
        &self,
        config: &GoalConfig,
        cache: &EvalCache,
    ) -> Result<(GoalInversionResult, bool)> {
        let key = goal_key(self, config);
        if let Some(CachedOutcome::Goal(result)) = cache.get(&key) {
            return Ok((result, true));
        }
        let result = self.goal_inversion(config)?;
        cache.insert(key, CachedOutcome::Goal(result.clone()));
        Ok((result, false))
    }

    /// [`TrainedModel::goal_seek_driver`], with every bisection
    /// iteration's KPI probe memoized as a single-column plan entry —
    /// shared with comparison sweeps and repeated seeks. `cached` is
    /// true only when every probe hit.
    ///
    /// # Errors
    /// Exactly those of the uncached path.
    pub fn goal_seek_driver_cached(
        &self,
        driver: &str,
        target: f64,
        low_pct: f64,
        high_pct: f64,
        tolerance: f64,
        cache: &EvalCache,
    ) -> Result<(DriverSeekResult, bool)> {
        self.goal_seek_driver_with(driver, target, low_pct, high_pct, tolerance, Some(cache))
    }

    /// [`TrainedModel::evaluate_scenarios`], memoized per scenario on
    /// its compiled plan (names don't enter the key: two scenarios
    /// applying identical perturbations under different labels share
    /// one entry). Misses are scored together through the same
    /// parallel path as the uncached API, so results stay bit-identical
    /// and input-ordered; `cached` is true when every scenario hit.
    ///
    /// # Errors
    /// Exactly those of the uncached path.
    pub fn evaluate_scenarios_cached(
        &self,
        set: &ScenarioSet,
        cache: &EvalCache,
    ) -> Result<(Vec<ScenarioOutcome>, bool)> {
        let plans = self.compile_scenarios(set)?;
        let keys: Vec<CacheKey> = plans.iter().map(|p| plan_key(self, p)).collect();
        let mut kpis: Vec<Option<f64>> = keys
            .iter()
            .map(|k| match cache.get(k) {
                Some(CachedOutcome::Kpi(kpi)) => Some(kpi),
                _ => None,
            })
            .collect();
        let miss: Vec<usize> = (0..plans.len()).filter(|&i| kpis[i].is_none()).collect();
        if !miss.is_empty() {
            let refs: Vec<&PerturbationPlan> = miss.iter().map(|&i| &plans[i]).collect();
            let scored = self.score_plans(&refs, set.n_threads);
            for (&i, result) in miss.iter().zip(scored) {
                let kpi = result?;
                cache.insert(keys[i], CachedOutcome::Kpi(kpi));
                kpis[i] = Some(kpi);
            }
        }
        let outcomes = set
            .scenarios
            .iter()
            .zip(kpis)
            .map(|(s, kpi)| ScenarioOutcome {
                name: s.name.clone(),
                perturbations: s.perturbations.clone(),
                // lint:allow(panic-freedom): the miss loop above filled every None slot; a gap is a bug, not input
                kpi: kpi.expect("every scenario scored or served"),
                baseline_kpi: self.baseline_kpi(),
            })
            .collect();
        Ok((outcomes, !plans.is_empty() && miss.is_empty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::ScenarioSpec;
    use crate::kpi::KpiKind;
    use crate::model_backend::ModelConfig;
    use crate::perturbation::Perturbation;
    use whatif_learn::Matrix;

    /// Exact linear model: y = 2*a - b + 5.
    fn model() -> TrainedModel {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, ((i * 3) % 6) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 5.0).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into(), "b".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    fn set() -> PerturbationSet {
        PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)])
    }

    #[test]
    fn sensitivity_hits_on_second_call_bit_identical() {
        let m = model();
        let cache = EvalCache::default();
        let uncached = m.sensitivity(&set()).unwrap();
        let (first, hit1) = m.sensitivity_cached(&set(), &cache).unwrap();
        let (second, hit2) = m.sensitivity_cached(&set(), &cache).unwrap();
        assert!(!hit1, "cold cache misses");
        assert!(hit2, "warm cache hits");
        assert!(first.perturbed_kpi.to_bits() == uncached.perturbed_kpi.to_bits());
        assert_eq!(first, second);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn comparison_and_goal_seek_share_grid_entries() {
        let m = model();
        let cache = EvalCache::default();
        // A seek probes single-column percentage plans on driver "a"...
        let (seek, hit) = m
            .goal_seek_driver_cached("a", m.baseline_kpi() + 0.9, -50.0, 100.0, 1e-9, &cache)
            .unwrap();
        assert!(!hit);
        let reference = m
            .goal_seek_driver("a", m.baseline_kpi() + 0.9, -50.0, 100.0, 1e-9)
            .unwrap();
        assert_eq!(seek, reference, "cached seek is bit-identical");
        // ... and a repeat is served entirely from the cache.
        let (again, hit) = m
            .goal_seek_driver_cached("a", m.baseline_kpi() + 0.9, -50.0, 100.0, 1e-9, &cache)
            .unwrap();
        assert!(hit, "every bisection probe hit");
        assert_eq!(again, reference);
    }

    #[test]
    fn comparison_fully_cached_on_repeat() {
        let m = model();
        let cache = EvalCache::default();
        let pct = [-20.0, 0.0, 20.0];
        let reference = m.comparison_analysis(&pct).unwrap();
        let (first, hit1) = m.comparison_analysis_cached(&pct, &cache).unwrap();
        let (second, hit2) = m.comparison_analysis_cached(&pct, &cache).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, reference);
        assert_eq!(second, reference);
        // An empty grid never reports cached, even on a warm cache.
        let (_, hit) = m.comparison_analysis_cached(&[], &cache).unwrap();
        assert!(!hit);
    }

    #[test]
    fn per_data_and_goal_inversion_cache_whole_results() {
        let m = model();
        let cache = EvalCache::default();
        let (p1, h1) = m.per_data_sensitivity_cached(3, &set(), &cache).unwrap();
        let (p2, h2) = m.per_data_sensitivity_cached(3, &set(), &cache).unwrap();
        assert!(!h1 && h2);
        assert_eq!(p1, m.per_data_sensitivity(3, &set()).unwrap());
        assert_eq!(p1, p2);
        // Out-of-range rows fail identically to the uncached path.
        assert!(m.per_data_sensitivity_cached(9999, &set(), &cache).is_err());

        let mut cfg = GoalConfig::for_goal(Goal::Maximize);
        cfg.optimizer = OptimizerChoice::GridSearch { points_per_dim: 5 };
        let (g1, h1) = m.goal_inversion_cached(&cfg, &cache).unwrap();
        let (g2, h2) = m.goal_inversion_cached(&cfg, &cache).unwrap();
        assert!(!h1 && h2);
        assert_eq!(g1, m.goal_inversion(&cfg).unwrap());
        assert_eq!(g1, g2);
        // A different seed/config is a different question.
        let reseeded = GoalConfig { seed: 5, ..cfg };
        let (_, h3) = m.goal_inversion_cached(&reseeded, &cache).unwrap();
        assert!(!h3);
    }

    #[test]
    fn scenarios_share_entries_by_plan_not_name() {
        let m = model();
        let cache = EvalCache::default();
        let grid = |names: [&str; 2]| {
            ScenarioSet::new(vec![
                ScenarioSpec::new(names[0], set()),
                ScenarioSpec::new(
                    names[1],
                    PerturbationSet::new(vec![Perturbation::absolute("b", 1.0)]),
                ),
            ])
        };
        let (first, cached) = m
            .evaluate_scenarios_cached(&grid(["s1", "s2"]), &cache)
            .unwrap();
        assert!(!cached);
        assert_eq!(first, m.evaluate_scenarios(&grid(["s1", "s2"])).unwrap());
        // Renamed scenarios with identical perturbations: full hit.
        let (renamed, cached) = m
            .evaluate_scenarios_cached(&grid(["x1", "x2"]), &cache)
            .unwrap();
        assert!(cached, "names are not part of the key");
        assert_eq!(renamed[0].kpi.to_bits(), first[0].kpi.to_bits());
        assert_eq!(renamed[0].name, "x1");
        // The single-scenario sensitivity path shares the same entries.
        let (_, hit) = m.sensitivity_cached(&set(), &cache).unwrap();
        assert!(hit);
        // Empty sets never report cached.
        let (empty, cached) = m
            .evaluate_scenarios_cached(&ScenarioSet::new(Vec::new()), &cache)
            .unwrap();
        assert!(empty.is_empty() && !cached);
        // Bad scenarios fail fast with their name, nothing recorded.
        let bad = ScenarioSet::new(vec![ScenarioSpec::new(
            "broken",
            PerturbationSet::new(vec![Perturbation::percentage("zz", 1.0)]),
        )]);
        let err = m.evaluate_scenarios_cached(&bad, &cache).unwrap_err();
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn disabled_cache_still_computes_correctly() {
        let m = model();
        let cache = EvalCache::new(1 << 20);
        cache.configure(None, Some(false));
        let (r1, h1) = m.sensitivity_cached(&set(), &cache).unwrap();
        let (r2, h2) = m.sensitivity_cached(&set(), &cache).unwrap();
        assert!(!h1 && !h2, "disabled cache never hits");
        assert_eq!(r1, r2);
        assert_eq!(r1, m.sensitivity(&set()).unwrap());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clamp_flag_separates_entries() {
        let m = model();
        let cache = EvalCache::default();
        let clamped = PerturbationSet::new(vec![Perturbation::absolute("a", -100.0)]);
        let unclamped = clamped.clone().without_clamp();
        let (a, _) = m.sensitivity_cached(&clamped, &cache).unwrap();
        let (b, hit) = m.sensitivity_cached(&unclamped, &cache).unwrap();
        assert!(!hit, "clamp flag is part of the key");
        assert_ne!(a.perturbed_kpi.to_bits(), b.perturbed_kpi.to_bits());
    }
}
