//! Unified error type over all substrate errors.

use std::fmt;
use whatif_frame::FrameError;
use whatif_learn::LearnError;
use whatif_optim::OptimError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors surfaced by the what-if analysis core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated dataframe error.
    Frame(FrameError),
    /// Propagated model error.
    Learn(LearnError),
    /// Propagated optimizer error.
    Optim(OptimError),
    /// Invalid session/analysis configuration.
    Config(String),
    /// Specification parsing or execution failure.
    Spec(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Frame(e) => write!(f, "frame error: {e}"),
            CoreError::Learn(e) => write!(f, "model error: {e}"),
            CoreError::Optim(e) => write!(f, "optimizer error: {e}"),
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
            CoreError::Spec(m) => write!(f, "specification error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Frame(e) => Some(e),
            CoreError::Learn(e) => Some(e),
            CoreError::Optim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for CoreError {
    fn from(e: FrameError) -> Self {
        CoreError::Frame(e)
    }
}

impl From<LearnError> for CoreError {
    fn from(e: LearnError) -> Self {
        CoreError::Learn(e)
    }
}

impl From<OptimError> for CoreError {
    fn from(e: OptimError) -> Self {
        CoreError::Optim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = FrameError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("frame error"));
        let e: CoreError = LearnError::NotFitted.into();
        assert!(e.to_string().contains("model error"));
        let e: CoreError = OptimError::Invalid("bad".into()).into();
        assert!(e.to_string().contains("optimizer error"));
        assert!(CoreError::Config("c".into()).to_string().contains("configuration"));
        assert!(CoreError::Spec("s".into()).to_string().contains("specification"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = LearnError::NotFitted.into();
        assert!(e.source().is_some());
        assert!(CoreError::Config("c".into()).source().is_none());
    }
}
