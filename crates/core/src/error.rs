//! Unified error type over all substrate errors, plus the typed
//! [`ErrorCode`] taxonomy the v2 wire protocol exposes.

use serde::{Deserialize, Serialize};
use std::fmt;
use whatif_frame::FrameError;
use whatif_learn::LearnError;
use whatif_optim::OptimError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors surfaced by the what-if analysis core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated dataframe error.
    Frame(FrameError),
    /// Propagated model error.
    Learn(LearnError),
    /// Propagated optimizer error.
    Optim(OptimError),
    /// Invalid session/analysis configuration.
    Config(String),
    /// Specification parsing or execution failure.
    Spec(String),
    /// An analysis was requested before a KPI was selected.
    NoKpi,
}

/// Machine-consumable error categories, stable across protocol versions.
///
/// Every error a server reply carries maps to exactly one code, so
/// clients can branch on failures without parsing message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Malformed or unparseable request (bad JSON, bad envelope, bad
    /// arguments).
    BadRequest,
    /// The request referenced a session id the server does not know.
    UnknownSession,
    /// The session has no KPI selected yet.
    NoKpi,
    /// The session has no trained model yet.
    NotTrained,
    /// Invalid session or analysis configuration.
    Config,
    /// Dataset / dataframe failure (unknown column, bad CSV, ...).
    Data,
    /// Model training or prediction failure.
    Model,
    /// Optimizer failure during goal inversion.
    Optim,
    /// What-if specification parse or execution failure.
    Spec,
    /// Unexpected server-side failure.
    Internal,
    /// The request's deadline expired before (or while) the server
    /// produced a reply; partial stream output may precede this code.
    DeadlineExceeded,
    /// The server is at capacity and shed this request instead of
    /// queueing it; safe to retry after backing off.
    Overloaded,
}

impl ErrorCode {
    /// Stable lowercase identifier (the serialized form stays the enum
    /// variant name; this is for logs and human output).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::NoKpi => "no_kpi",
            ErrorCode::NotTrained => "not_trained",
            ErrorCode::Config => "config",
            ErrorCode::Data => "data",
            ErrorCode::Model => "model",
            ErrorCode::Optim => "optim",
            ErrorCode::Spec => "spec",
            ErrorCode::Internal => "internal",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Overloaded => "overloaded",
        }
    }

    /// Every code, for exhaustive wire-format tests.
    pub fn all() -> [ErrorCode; 12] {
        [
            ErrorCode::BadRequest,
            ErrorCode::UnknownSession,
            ErrorCode::NoKpi,
            ErrorCode::NotTrained,
            ErrorCode::Config,
            ErrorCode::Data,
            ErrorCode::Model,
            ErrorCode::Optim,
            ErrorCode::Spec,
            ErrorCode::Internal,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Overloaded,
        ]
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl CoreError {
    /// The typed code this error surfaces on the wire.
    pub fn code(&self) -> ErrorCode {
        match self {
            CoreError::Frame(_) => ErrorCode::Data,
            CoreError::Learn(LearnError::NotFitted) => ErrorCode::NotTrained,
            CoreError::Learn(_) => ErrorCode::Model,
            CoreError::Optim(_) => ErrorCode::Optim,
            CoreError::Config(_) => ErrorCode::Config,
            CoreError::Spec(_) => ErrorCode::Spec,
            CoreError::NoKpi => ErrorCode::NoKpi,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Frame(e) => write!(f, "frame error: {e}"),
            CoreError::Learn(e) => write!(f, "model error: {e}"),
            CoreError::Optim(e) => write!(f, "optimizer error: {e}"),
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
            CoreError::Spec(m) => write!(f, "specification error: {m}"),
            CoreError::NoKpi => f.write_str("no KPI selected; send SelectKpi first"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Frame(e) => Some(e),
            CoreError::Learn(e) => Some(e),
            CoreError::Optim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for CoreError {
    fn from(e: FrameError) -> Self {
        CoreError::Frame(e)
    }
}

impl From<LearnError> for CoreError {
    fn from(e: LearnError) -> Self {
        CoreError::Learn(e)
    }
}

impl From<OptimError> for CoreError {
    fn from(e: OptimError) -> Self {
        CoreError::Optim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = FrameError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("frame error"));
        let e: CoreError = LearnError::NotFitted.into();
        assert!(e.to_string().contains("model error"));
        let e: CoreError = OptimError::Invalid("bad".into()).into();
        assert!(e.to_string().contains("optimizer error"));
        assert!(CoreError::Config("c".into())
            .to_string()
            .contains("configuration"));
        assert!(CoreError::Spec("s".into())
            .to_string()
            .contains("specification"));
        assert!(CoreError::NoKpi.to_string().contains("KPI"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = LearnError::NotFitted.into();
        assert!(e.source().is_some());
        assert!(CoreError::Config("c".into()).source().is_none());
    }

    #[test]
    fn codes_map_by_category() {
        assert_eq!(
            CoreError::from(FrameError::UnknownColumn("x".into())).code(),
            ErrorCode::Data
        );
        assert_eq!(
            CoreError::from(LearnError::NotFitted).code(),
            ErrorCode::NotTrained
        );
        assert_eq!(
            CoreError::from(LearnError::Numeric("nan".into())).code(),
            ErrorCode::Model
        );
        assert_eq!(
            CoreError::from(OptimError::Invalid("bad".into())).code(),
            ErrorCode::Optim
        );
        assert_eq!(CoreError::Config("c".into()).code(), ErrorCode::Config);
        assert_eq!(CoreError::Spec("s".into()).code(), ErrorCode::Spec);
        assert_eq!(CoreError::NoKpi.code(), ErrorCode::NoKpi);
    }

    #[test]
    fn code_strings_are_stable() {
        for code in ErrorCode::all() {
            assert!(!code.as_str().is_empty());
            assert_eq!(code.to_string(), code.as_str());
        }
    }
}
