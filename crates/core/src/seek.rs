//! Single-driver goal seeking — the "Excel Goal Seek" baseline the
//! paper's Related Work cites: "Excel's SOLVER and GOAL SEEK features
//! allow solving for a desired output of a formula by changing its
//! drivers ... albeit with limited interactivity and expressivity."
//!
//! This is deliberately the *weak* baseline: it changes one driver at a
//! time, which the benchmark harness contrasts with the multi-driver
//! Bayesian goal inversion of [`crate::goal`].

use crate::error::{CoreError, Result};
use crate::model_backend::TrainedModel;
use crate::perturbation::{Perturbation, PerturbationKind, PerturbationPlan, PerturbationSet};
use serde::{Deserialize, Serialize};
use whatif_optim::goal_seek::goal_seek;

/// Outcome of a single-driver goal seek.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverSeekResult {
    /// The driver that was adjusted.
    pub driver: String,
    /// The KPI target sought.
    pub target: f64,
    /// Percentage change found for the driver.
    pub pct: f64,
    /// KPI achieved at that percentage.
    pub achieved_kpi: f64,
    /// KPI on the original data.
    pub baseline_kpi: f64,
    /// Whether |achieved − target| met the tolerance.
    pub converged: bool,
    /// Model evaluations spent.
    pub n_evals: usize,
}

impl DriverSeekResult {
    /// The recommendation as a reusable perturbation set.
    pub fn as_perturbations(&self) -> PerturbationSet {
        PerturbationSet::new(vec![Perturbation::percentage(
            self.driver.clone(),
            self.pct,
        )])
    }
}

impl TrainedModel {
    /// Excel-style goal seek: find the percentage change of **one**
    /// driver that brings the KPI to `target`, scanning
    /// `[low_pct, high_pct]` and bisecting a bracket if one exists.
    ///
    /// When the target is unreachable by this driver alone (the common
    /// case — and the paper's argument for multi-driver goal inversion),
    /// the closest achievable point is returned with
    /// `converged = false`.
    ///
    /// # Errors
    /// [`CoreError::Config`] for unknown drivers or an invalid range.
    pub fn goal_seek_driver(
        &self,
        driver: &str,
        target: f64,
        low_pct: f64,
        high_pct: f64,
        tolerance: f64,
    ) -> Result<DriverSeekResult> {
        self.goal_seek_driver_with(driver, target, low_pct, high_pct, tolerance, None)
            .map(|(result, _)| result)
    }

    /// The one goal-seek implementation behind both the plain and the
    /// cached entry points: every bisection probe goes through
    /// `kpi_for_plan_maybe`, so the two paths build identical
    /// single-column plans by construction. The flag is true only when
    /// every probe was served from the supplied cache.
    pub(crate) fn goal_seek_driver_with(
        &self,
        driver: &str,
        target: f64,
        low_pct: f64,
        high_pct: f64,
        tolerance: f64,
        cache: Option<&crate::cached::EvalCache>,
    ) -> Result<(DriverSeekResult, bool)> {
        let col = self.driver_index(driver)?; // validates the name
        if low_pct >= high_pct || low_pct < -100.0 {
            return Err(CoreError::Config(format!(
                "invalid percentage range [{low_pct}, {high_pct}]"
            )));
        }
        // The driver index is resolved once; every bisection step is a
        // single-column plan scored through a copy-on-write overlay.
        let n_cols = self.driver_names().len();
        let probe = |pct: f64| {
            let plan =
                PerturbationPlan::single(col, PerturbationKind::Percentage(pct), true, n_cols);
            self.kpi_for_plan_maybe(&plan, cache)
        };
        let (r, all_hit) = seek_with_probe(probe, target, low_pct, high_pct, tolerance)?;
        Ok((
            DriverSeekResult {
                driver: driver.to_owned(),
                target,
                pct: r.x,
                achieved_kpi: r.f,
                baseline_kpi: self.baseline_kpi(),
                converged: r.converged,
                n_evals: r.n_evals,
            },
            all_hit,
        ))
    }
}

/// Drive `whatif_optim`'s scan-and-bisect solver over a fallible KPI
/// probe. The optimizer's closure contract is infallible (`NaN` marks
/// an infeasible point), so a probe failure is recorded here and the
/// **first** [`CoreError`] is propagated once the solver returns —
/// never swallowed into a silently-wrong `converged = false` result.
/// The returned flag is true only when every probe was a cache hit.
fn seek_with_probe(
    probe: impl Fn(f64) -> Result<(f64, bool)>,
    target: f64,
    low_pct: f64,
    high_pct: f64,
    tolerance: f64,
) -> Result<(whatif_optim::goal_seek::GoalSeekResult, bool)> {
    let all_hit = std::cell::Cell::new(true);
    let first_error: std::cell::RefCell<Option<CoreError>> = std::cell::RefCell::new(None);
    let kpi_at = |pct: f64| -> f64 {
        match probe(pct) {
            Ok((kpi, hit)) => {
                if !hit {
                    all_hit.set(false);
                }
                kpi
            }
            Err(e) => {
                all_hit.set(false);
                first_error.borrow_mut().get_or_insert(e);
                f64::NAN
            }
        }
    };
    let r = goal_seek(kpi_at, target, low_pct, high_pct, tolerance, 200);
    // A probe failure is the root cause: report it even when the
    // solver also failed (e.g. every probe errored into NaN).
    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok((r?, all_hit.get()))
}

#[cfg(test)]
mod tests {
    use crate::kpi::KpiKind;
    use crate::model_backend::{ModelConfig, TrainedModel};
    use whatif_learn::Matrix;

    /// Exact linear model: y = 3*a - b; mean(a) = 4.5, mean(b) = 2.
    fn model() -> TrainedModel {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - r[1]).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into(), "b".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn seeks_a_reachable_target_exactly() {
        let m = model();
        // baseline KPI = 3*4.5 - 2 = 11.5. Target 12.85 needs
        // a +10% on `a` (adds 3*0.45 = 1.35).
        let target = m.baseline_kpi() + 1.35;
        let r = m.goal_seek_driver("a", target, -50.0, 100.0, 1e-9).unwrap();
        assert!(r.converged);
        assert!((r.pct - 10.0).abs() < 1e-4, "pct {}", r.pct);
        assert!((r.achieved_kpi - target).abs() < 1e-9);
        // And the recommendation replays through the sensitivity view.
        let sens = m.sensitivity(&r.as_perturbations()).unwrap();
        assert!((sens.perturbed_kpi - r.achieved_kpi).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_reports_best_effort() {
        let m = model();
        // One driver capped at +50% cannot triple the KPI.
        let r = m.goal_seek_driver("a", 100.0, -50.0, 50.0, 1e-6).unwrap();
        assert!(!r.converged);
        // Best effort is the cap.
        assert!((r.pct - 50.0).abs() < 1.0, "pct {}", r.pct);
        assert!(r.achieved_kpi < 100.0);
    }

    #[test]
    fn negative_driver_seeks_downward_change() {
        let m = model();
        // Raising b lowers y; to lower the KPI by 0.2, b must rise 10%.
        let target = m.baseline_kpi() - 0.2;
        let r = m
            .goal_seek_driver("b", target, -100.0, 100.0, 1e-9)
            .unwrap();
        assert!(r.converged);
        assert!((r.pct - 10.0).abs() < 1e-4, "pct {}", r.pct);
    }

    #[test]
    fn probe_errors_propagate_instead_of_poisoning_the_result() {
        use crate::error::CoreError;
        // A probe that fails on part of the domain: the first error
        // must surface, not dissolve into a NaN best-effort answer.
        let flaky = |pct: f64| {
            if pct > 0.0 {
                Err(CoreError::Config(format!("probe exploded at {pct}")))
            } else {
                Ok((pct * 2.0, false))
            }
        };
        let err = super::seek_with_probe(flaky, 999.0, -50.0, 50.0, 1e-9).unwrap_err();
        assert!(
            err.to_string().contains("probe exploded"),
            "first probe error is the reported cause: {err}"
        );
        // Every probe failing must also be that error — not the
        // optimizer's all-NaN failure, and certainly not Ok.
        let broken = |_pct: f64| -> crate::error::Result<(f64, bool)> {
            Err(CoreError::Config("model gone".to_owned()))
        };
        let err = super::seek_with_probe(broken, 1.0, -50.0, 50.0, 1e-9).unwrap_err();
        assert!(err.to_string().contains("model gone"), "{err}");
        // Probes that *succeed* with NaN (no CoreError anywhere) hit
        // the optimizer's own all-NaN guard instead of fabricating
        // `x = lo, f = inf` garbage.
        let nan = |_pct: f64| Ok((f64::NAN, false));
        let err = super::seek_with_probe(nan, 1.0, -50.0, 50.0, 1e-9).unwrap_err();
        assert!(matches!(err, CoreError::Optim(_)), "{err:?}");
    }

    #[test]
    fn validates_inputs() {
        let m = model();
        assert!(m.goal_seek_driver("zz", 1.0, -10.0, 10.0, 1e-6).is_err());
        assert!(m.goal_seek_driver("a", 1.0, 10.0, -10.0, 1e-6).is_err());
        assert!(m.goal_seek_driver("a", 1.0, -150.0, 10.0, 1e-6).is_err());
    }
}
