//! A declarative, JSON-serializable specification of what-if analyses.
//!
//! The paper's §5 calls for "an editable specification of the
//! experiments that SystemD supports ... development of a declarative
//! specification language for SystemD is a potential future direction."
//! This module implements that direction: a [`WhatIfSpec`] captures a
//! complete experiment (KPI, drivers, model, analysis) as JSON, can be
//! stored/shared/re-run, and produces a serializable [`SpecOutcome`].
//!
//! ```
//! use whatif_core::spec::WhatIfSpec;
//! use whatif_frame::{Column, Frame};
//!
//! let frame = Frame::from_columns(vec![
//!     Column::from_f64("spend", (0..40).map(|i| (i % 10) as f64).collect()),
//!     Column::from_f64("sales", (0..40).map(|i| 2.0 * (i % 10) as f64).collect()),
//! ]).unwrap();
//!
//! let spec: WhatIfSpec = serde_json::from_str(r#"{
//!     "kpi": "sales",
//!     "analysis": { "DriverImportance": { "verify": false } }
//! }"#).unwrap();
//! let outcome = spec.run(&frame).unwrap();
//! let json = serde_json::to_string(&outcome).unwrap();
//! assert!(json.contains("spend"));
//! ```

use crate::bulk::{ScenarioOutcome, ScenarioSet, ScenarioSpec};
use crate::constraint::DriverConstraint;
use crate::error::{CoreError, Result};
use crate::goal::{Goal, GoalConfig, GoalInversionResult, OptimizerChoice};
use crate::importance::{DriverImportance, VerificationReport};
use crate::model_backend::ModelConfig;
use crate::perturbation::Perturbation;
use crate::perturbation::PerturbationSet;
use crate::sensitivity::{ComparisonCurve, PerDataSensitivity, SensitivityResult};
use crate::session::Session;
use serde::{Deserialize, Serialize};
use whatif_frame::Frame;

/// The analysis to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnalysisSpec {
    /// Driver importance, optionally with the Shapley/Pearson/Spearman
    /// verification pass.
    DriverImportance {
        /// Run the verification measures too.
        #[serde(default)]
        verify: bool,
    },
    /// Dataset-level sensitivity for a set of perturbations.
    Sensitivity {
        /// Perturbations to apply.
        perturbations: Vec<Perturbation>,
        /// Clamp perturbed values at zero (default true).
        #[serde(default = "default_true")]
        clamp_non_negative: bool,
    },
    /// Per-driver comparison sweep over percentage perturbations.
    Comparison {
        /// Percentages to sweep (e.g. `[-40, -20, 0, 20, 40]`).
        percentages: Vec<f64>,
    },
    /// Per-data sensitivity for one row.
    PerData {
        /// Row index.
        row: usize,
        /// Perturbations to apply to that row.
        perturbations: Vec<Perturbation>,
    },
    /// Goal inversion / constrained analysis.
    GoalInversion {
        /// The KPI goal.
        goal: Goal,
        /// Driver constraints (empty = free optimization).
        #[serde(default)]
        constraints: Vec<DriverConstraint>,
        /// Optimizer (defaults to Bayesian with 96 calls).
        #[serde(default)]
        optimizer: OptimizerChoice,
        /// Seed for stochastic optimizers.
        #[serde(default)]
        seed: u64,
    },
    /// Bulk evaluation of N named scenarios in one pass (parallel,
    /// copy-on-write overlays — see [`crate::bulk`]).
    Scenarios {
        /// The scenarios to price.
        scenarios: Vec<ScenarioSpec>,
        /// Worker threads (default 4).
        #[serde(default = "default_threads")]
        n_threads: usize,
    },
}

fn default_threads() -> usize {
    crate::bulk::DEFAULT_SCENARIO_THREADS
}

fn default_true() -> bool {
    true
}

impl AnalysisSpec {
    /// Run this analysis against an already-trained model.
    ///
    /// This is the single dispatch point shared by [`WhatIfSpec::run`]
    /// and the server's `Engine`, so every transport executes analyses
    /// identically.
    ///
    /// # Errors
    /// Any model/optimizer error, wrapped in [`CoreError`].
    pub fn execute(&self, model: &crate::model_backend::TrainedModel) -> Result<SpecOutcome> {
        self.run_on_model(model, None).map(|(outcome, _)| outcome)
    }

    /// Run this analysis through a shared [`EvalCache`]: identical
    /// *(model, analysis)* pairs short-circuit with bit-identical
    /// results. Returns the outcome plus whether it was fully served
    /// from the cache (the v2 protocol's `cached` reply marker).
    ///
    /// Driver importance is the one analysis that stays uncached: it
    /// depends only on the model (no perturbation input), so the model
    /// itself already memoizes everything it needs.
    ///
    /// # Errors
    /// Exactly those of [`AnalysisSpec::execute`].
    pub fn execute_cached(
        &self,
        model: &crate::model_backend::TrainedModel,
        cache: &crate::cached::EvalCache,
    ) -> Result<(SpecOutcome, bool)> {
        self.run_on_model(model, Some(cache))
    }

    /// The one spec-to-evaluation mapping both entry points share: each
    /// arm builds its inputs exactly once, then evaluates through the
    /// cache when one is supplied — so the cached and uncached paths
    /// cannot drift apart by construction.
    fn run_on_model(
        &self,
        model: &crate::model_backend::TrainedModel,
        cache: Option<&crate::cached::EvalCache>,
    ) -> Result<(SpecOutcome, bool)> {
        Ok(match self {
            AnalysisSpec::DriverImportance { verify } => {
                let importance = model.driver_importance()?;
                let verification = if *verify {
                    Some(model.verify_importance(&Default::default())?)
                } else {
                    None
                };
                (
                    SpecOutcome::Importance {
                        importance,
                        verification,
                    },
                    false,
                )
            }
            AnalysisSpec::Sensitivity {
                perturbations,
                clamp_non_negative,
            } => {
                let mut set = PerturbationSet::new(perturbations.clone());
                set.clamp_non_negative = *clamp_non_negative;
                let (result, cached) = match cache {
                    Some(cache) => model.sensitivity_cached(&set, cache)?,
                    None => (model.sensitivity(&set)?, false),
                };
                (SpecOutcome::Sensitivity(result), cached)
            }
            AnalysisSpec::Comparison { percentages } => {
                let (curves, cached) = match cache {
                    Some(cache) => model.comparison_analysis_cached(percentages, cache)?,
                    None => (model.comparison_analysis(percentages)?, false),
                };
                (SpecOutcome::Comparison(curves), cached)
            }
            AnalysisSpec::PerData { row, perturbations } => {
                let set = PerturbationSet::new(perturbations.clone());
                let (result, cached) = match cache {
                    Some(cache) => model.per_data_sensitivity_cached(*row, &set, cache)?,
                    None => (model.per_data_sensitivity(*row, &set)?, false),
                };
                (SpecOutcome::PerData(result), cached)
            }
            AnalysisSpec::GoalInversion {
                goal,
                constraints,
                optimizer,
                seed,
            } => {
                let mut cfg = GoalConfig::for_goal(*goal).with_constraints(constraints.clone());
                cfg.optimizer = *optimizer;
                cfg.seed = *seed;
                let (result, cached) = match cache {
                    Some(cache) => model.goal_inversion_cached(&cfg, cache)?,
                    None => (model.goal_inversion(&cfg)?, false),
                };
                (SpecOutcome::GoalInversion(result), cached)
            }
            AnalysisSpec::Scenarios {
                scenarios,
                n_threads,
            } => {
                let set = ScenarioSet::new(scenarios.clone()).with_threads(*n_threads);
                let (outcomes, cached) = match cache {
                    Some(cache) => model.evaluate_scenarios_cached(&set, cache)?,
                    None => (model.evaluate_scenarios(&set)?, false),
                };
                (SpecOutcome::Scenarios(outcomes), cached)
            }
        })
    }
}

/// A complete, reusable what-if experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfSpec {
    /// KPI column.
    pub kpi: String,
    /// Driver selection; `None` selects all non-textual, non-KPI
    /// columns.
    #[serde(default)]
    pub drivers: Option<Vec<String>>,
    /// Model configuration.
    #[serde(default)]
    pub model: ModelConfig,
    /// The analysis to run.
    pub analysis: AnalysisSpec,
}

/// The serializable outcome of running a [`WhatIfSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecOutcome {
    /// Driver importance (+ optional verification).
    Importance {
        /// The importance scores.
        importance: DriverImportance,
        /// Verification report when requested.
        verification: Option<VerificationReport>,
    },
    /// Sensitivity outcome.
    Sensitivity(SensitivityResult),
    /// Comparison sweep outcome.
    Comparison(Vec<ComparisonCurve>),
    /// Per-data outcome.
    PerData(PerDataSensitivity),
    /// Goal inversion outcome.
    GoalInversion(GoalInversionResult),
    /// Bulk scenario outcomes, in input order.
    Scenarios(Vec<ScenarioOutcome>),
}

impl WhatIfSpec {
    /// Parse a spec from JSON.
    ///
    /// # Errors
    /// [`CoreError::Spec`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<WhatIfSpec> {
        serde_json::from_str(json).map_err(|e| CoreError::Spec(e.to_string()))
    }

    /// Serialize to pretty JSON.
    ///
    /// # Errors
    /// [`CoreError::Spec`] on serialization failure (should not happen).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| CoreError::Spec(e.to_string()))
    }

    /// Execute against a dataset: build the session, train per the
    /// spec's model config, run the analysis.
    ///
    /// # Errors
    /// Any session/model/analysis error, wrapped in [`CoreError`].
    pub fn run(&self, frame: &Frame) -> Result<SpecOutcome> {
        let mut session = Session::new(frame.clone()).with_kpi(&self.kpi)?;
        if let Some(drivers) = &self.drivers {
            let refs: Vec<&str> = drivers.iter().map(String::as_str).collect();
            session = session.with_drivers(&refs)?;
        }
        let model = session.train(&self.model)?;
        self.analysis.execute(&model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whatif_frame::Column;

    fn frame() -> Frame {
        Frame::from_columns(vec![
            Column::from_f64("spend", (0..60).map(|i| (i % 10) as f64 + 1.0).collect()),
            Column::from_f64("waste", (0..60).map(|i| ((i * 7) % 4) as f64).collect()),
            Column::from_f64(
                "sales",
                (0..60)
                    .map(|i| 3.0 * ((i % 10) as f64 + 1.0) + 2.0)
                    .collect(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn importance_spec_runs() {
        let spec = WhatIfSpec {
            kpi: "sales".into(),
            drivers: None,
            model: ModelConfig::default(),
            analysis: AnalysisSpec::DriverImportance { verify: true },
        };
        match spec.run(&frame()).unwrap() {
            SpecOutcome::Importance {
                importance,
                verification,
            } => {
                assert_eq!(importance.ranked_names()[0], "spend");
                assert!(verification.is_some());
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn sensitivity_spec_runs() {
        let spec = WhatIfSpec {
            kpi: "sales".into(),
            drivers: Some(vec!["spend".into()]),
            model: ModelConfig::default(),
            analysis: AnalysisSpec::Sensitivity {
                perturbations: vec![Perturbation::percentage("spend", 10.0)],
                clamp_non_negative: true,
            },
        };
        match spec.run(&frame()).unwrap() {
            SpecOutcome::Sensitivity(s) => assert!(s.uplift() > 0.0),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn goal_spec_runs_with_constraints() {
        let spec = WhatIfSpec {
            kpi: "sales".into(),
            drivers: Some(vec!["spend".into(), "waste".into()]),
            model: ModelConfig::default(),
            analysis: AnalysisSpec::GoalInversion {
                goal: Goal::Maximize,
                constraints: vec![DriverConstraint::new("spend", 0.0, 50.0)],
                optimizer: OptimizerChoice::GridSearch { points_per_dim: 6 },
                seed: 0,
            },
        };
        match spec.run(&frame()).unwrap() {
            SpecOutcome::GoalInversion(r) => {
                let pct = r.driver_percentages[0].1;
                assert!((0.0..=50.0).contains(&pct));
                assert!(r.uplift() > 0.0);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn json_roundtrip_and_rerun() {
        let spec = WhatIfSpec {
            kpi: "sales".into(),
            drivers: None,
            model: ModelConfig::default(),
            analysis: AnalysisSpec::Comparison {
                percentages: vec![-10.0, 0.0, 10.0],
            },
        };
        let json = spec.to_json().unwrap();
        let parsed = WhatIfSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
        let a = spec.run(&frame()).unwrap();
        let b = parsed.run(&frame()).unwrap();
        assert_eq!(a, b, "same spec, same data, same outcome");
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let spec =
            WhatIfSpec::from_json(r#"{"kpi": "sales", "analysis": {"DriverImportance": {}}}"#)
                .unwrap();
        assert!(spec.drivers.is_none());
        assert_eq!(spec.model, ModelConfig::default());
        match spec.analysis {
            AnalysisSpec::DriverImportance { verify } => assert!(!verify),
            _ => panic!(),
        }
    }

    #[test]
    fn bad_json_is_a_spec_error() {
        let err = WhatIfSpec::from_json("not json").unwrap_err();
        assert!(matches!(err, CoreError::Spec(_)));
        let err = WhatIfSpec::from_json(r#"{"analysis": {}}"#).unwrap_err();
        assert!(matches!(err, CoreError::Spec(_)));
    }

    #[test]
    fn per_data_spec_runs() {
        let spec = WhatIfSpec {
            kpi: "sales".into(),
            drivers: Some(vec!["spend".into()]),
            model: ModelConfig::default(),
            analysis: AnalysisSpec::PerData {
                row: 2,
                perturbations: vec![Perturbation::absolute("spend", 1.0)],
            },
        };
        match spec.run(&frame()).unwrap() {
            SpecOutcome::PerData(p) => {
                assert_eq!(p.row, 2);
                assert!((p.uplift() - 3.0).abs() < 1e-6);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn scenarios_spec_runs_and_roundtrips() {
        let spec = WhatIfSpec {
            kpi: "sales".into(),
            drivers: Some(vec!["spend".into(), "waste".into()]),
            model: ModelConfig::default(),
            analysis: AnalysisSpec::Scenarios {
                scenarios: vec![
                    ScenarioSpec::new(
                        "spend +10%",
                        crate::PerturbationSet::new(vec![Perturbation::percentage("spend", 10.0)]),
                    ),
                    ScenarioSpec::new(
                        "spend -10%",
                        crate::PerturbationSet::new(vec![Perturbation::percentage("spend", -10.0)]),
                    ),
                ],
                n_threads: 2,
            },
        };
        let json = spec.to_json().unwrap();
        assert_eq!(spec, WhatIfSpec::from_json(&json).unwrap());
        match spec.run(&frame()).unwrap() {
            SpecOutcome::Scenarios(outcomes) => {
                assert_eq!(outcomes.len(), 2);
                assert!(outcomes[0].uplift() > 0.0);
                assert!(outcomes[1].uplift() < 0.0);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        // n_threads defaults when omitted from JSON.
        let parsed = WhatIfSpec::from_json(
            r#"{"kpi": "sales", "analysis": {"Scenarios": {"scenarios": []}}}"#,
        )
        .unwrap();
        match parsed.analysis {
            AnalysisSpec::Scenarios { n_threads, .. } => assert_eq!(n_threads, 4),
            _ => panic!(),
        }
    }

    #[test]
    fn execute_cached_matches_execute_and_reports_hits() {
        use crate::cached::EvalCache;
        let session = Session::new(frame()).with_kpi("sales").unwrap();
        let model = session.train(&ModelConfig::default()).unwrap();
        let cache = EvalCache::default();
        let analyses = [
            AnalysisSpec::Sensitivity {
                perturbations: vec![Perturbation::percentage("spend", 10.0)],
                clamp_non_negative: true,
            },
            AnalysisSpec::Comparison {
                percentages: vec![-10.0, 0.0, 10.0],
            },
            AnalysisSpec::PerData {
                row: 1,
                perturbations: vec![Perturbation::absolute("spend", 1.0)],
            },
            AnalysisSpec::GoalInversion {
                goal: Goal::Maximize,
                constraints: vec![],
                optimizer: OptimizerChoice::GridSearch { points_per_dim: 4 },
                seed: 0,
            },
        ];
        for analysis in &analyses {
            let reference = analysis.execute(&model).unwrap();
            let (cold, hit_cold) = analysis.execute_cached(&model, &cache).unwrap();
            let (warm, hit_warm) = analysis.execute_cached(&model, &cache).unwrap();
            assert!(!hit_cold, "{analysis:?} cold call misses");
            assert!(hit_warm, "{analysis:?} warm call hits");
            assert_eq!(cold, reference, "{analysis:?} equals uncached");
            assert_eq!(warm, reference);
        }
        // Driver importance never reports cached.
        let importance = AnalysisSpec::DriverImportance { verify: false };
        let (_, hit) = importance.execute_cached(&model, &cache).unwrap();
        let (_, hit2) = importance.execute_cached(&model, &cache).unwrap();
        assert!(!hit && !hit2);
    }

    #[test]
    fn outcome_serializes() {
        let spec = WhatIfSpec {
            kpi: "sales".into(),
            drivers: None,
            model: ModelConfig::default(),
            analysis: AnalysisSpec::DriverImportance { verify: false },
        };
        let outcome = spec.run(&frame()).unwrap();
        let json = serde_json::to_string(&outcome).unwrap();
        let back: SpecOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(outcome, back);
    }
}
