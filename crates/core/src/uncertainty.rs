//! Uncertainty quantification for what-if outcomes — the §5 challenge
//! "how to best calculate and communicate the underlying model
//! assumptions and confidences to users who have no background in
//! statistics", answered with row-bootstrap confidence intervals.
//!
//! The KPI of a dataset is a mean of per-row predictions, so its
//! sampling uncertainty is estimated by bootstrapping rows: predictions
//! are computed once per row and resampled, which keeps the interval
//! essentially free compared to re-running the model.

use crate::error::{CoreError, Result};
use crate::model_backend::TrainedModel;
use crate::perturbation::PerturbationSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use whatif_stats::quantile::quantile;
use whatif_stats::sampling::bootstrap_indices;

/// A percentile bootstrap interval around a point estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point estimate (on the full dataset).
    pub value: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl Interval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval excludes a reference value (e.g. 0 for an
    /// uplift — "is this effect distinguishable from noise?").
    pub fn excludes(&self, reference: f64) -> bool {
        reference < self.lo || reference > self.hi
    }
}

/// A sensitivity outcome with bootstrap confidence intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityInterval {
    /// KPI on the original data.
    pub baseline: Interval,
    /// KPI on the perturbed data.
    pub perturbed: Interval,
    /// Paired uplift (resampled jointly, so row noise cancels).
    pub uplift: Interval,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
    /// Bootstrap resamples drawn.
    pub n_resamples: usize,
}

/// Bootstrap configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapConfig {
    /// Number of resamples.
    pub n_resamples: usize,
    /// Two-sided confidence level in `(0, 1)`.
    pub level: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            n_resamples: 500,
            level: 0.95,
            seed: 0,
        }
    }
}

impl TrainedModel {
    /// Sensitivity analysis with paired bootstrap confidence intervals
    /// over the dataset's rows.
    ///
    /// The *uplift* interval is the decision-relevant one: because the
    /// same resample is used for both KPIs, between-prospect variation
    /// cancels and the interval reflects how stable the perturbation's
    /// effect is across the population.
    ///
    /// # Errors
    /// [`CoreError::Config`] on invalid perturbations or configuration.
    pub fn sensitivity_with_ci(
        &self,
        set: &PerturbationSet,
        config: &BootstrapConfig,
    ) -> Result<SensitivityInterval> {
        if config.n_resamples < 10 {
            return Err(CoreError::Config(
                "bootstrap needs at least 10 resamples".to_owned(),
            ));
        }
        if !(0.0..1.0).contains(&config.level) || config.level == 0.0 {
            return Err(CoreError::Config(format!(
                "confidence level must be in (0, 1), got {}",
                config.level
            )));
        }
        let plan = self.compile_perturbations(set)?;
        let n = self.matrix().n_rows();
        // Per-row predictions, computed once, in batch: the baseline
        // over the training matrix, the perturbed over a copy-on-write
        // overlay that materializes only the perturbed columns.
        let base_preds = self.predictions_for_view(self.matrix().into())?;
        let overlay = plan.overlay(self.matrix())?;
        let pert_preds = self.predictions_for_view((&overlay).into())?;
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let point_base = mean(&base_preds);
        let point_pert = mean(&pert_preds);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut boot_base = Vec::with_capacity(config.n_resamples);
        let mut boot_pert = Vec::with_capacity(config.n_resamples);
        let mut boot_uplift = Vec::with_capacity(config.n_resamples);
        for _ in 0..config.n_resamples {
            let idx = bootstrap_indices(&mut rng, n);
            let mut b = 0.0;
            let mut p = 0.0;
            for &i in &idx {
                b += base_preds[i];
                p += pert_preds[i];
            }
            b /= n as f64;
            p /= n as f64;
            boot_base.push(b);
            boot_pert.push(p);
            boot_uplift.push(p - b);
        }
        let alpha = (1.0 - config.level) / 2.0;
        let interval = |samples: &[f64], value: f64| Interval {
            value,
            lo: quantile(samples, alpha),
            hi: quantile(samples, 1.0 - alpha),
        };
        Ok(SensitivityInterval {
            baseline: interval(&boot_base, point_base),
            perturbed: interval(&boot_pert, point_pert),
            uplift: interval(&boot_uplift, point_pert - point_base),
            level: config.level,
            n_resamples: config.n_resamples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use crate::model_backend::{ModelConfig, TrainedModel};
    use crate::perturbation::Perturbation;
    use whatif_learn::Matrix;

    /// Exact linear model: y = 2*a + 1.
    fn model() -> TrainedModel {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 10) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn intervals_bracket_point_estimates() {
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]);
        let ci = m
            .sensitivity_with_ci(&set, &BootstrapConfig::default())
            .unwrap();
        assert!(ci.baseline.lo <= ci.baseline.value && ci.baseline.value <= ci.baseline.hi);
        assert!(ci.perturbed.lo <= ci.perturbed.value && ci.perturbed.value <= ci.perturbed.hi);
        assert!(ci.uplift.lo <= ci.uplift.value && ci.uplift.value <= ci.uplift.hi);
        // Point estimates agree with the plain sensitivity analysis.
        let plain = m.sensitivity(&set).unwrap();
        assert!((ci.uplift.value - plain.uplift()).abs() < 1e-12);
    }

    #[test]
    fn paired_uplift_interval_is_tight_for_uniform_effects() {
        // A percentage perturbation of a linear model has per-row effect
        // proportional to the row value; the paired interval is much
        // narrower than the baseline's own sampling spread.
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]);
        let ci = m
            .sensitivity_with_ci(&set, &BootstrapConfig::default())
            .unwrap();
        assert!(
            ci.uplift.width() < ci.baseline.width(),
            "uplift width {} vs baseline width {}",
            ci.uplift.width(),
            ci.baseline.width()
        );
        assert!(ci.uplift.excludes(0.0), "clear effect: {:?}", ci.uplift);
    }

    #[test]
    fn absolute_shift_gives_degenerate_uplift_interval() {
        // An absolute +2 on the driver shifts every prediction by
        // exactly +4: the paired uplift has zero variance.
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::absolute("a", 2.0)]).without_clamp();
        let ci = m
            .sensitivity_with_ci(&set, &BootstrapConfig::default())
            .unwrap();
        assert!((ci.uplift.value - 4.0).abs() < 1e-9);
        assert!(ci.uplift.width() < 1e-9, "width {}", ci.uplift.width());
    }

    #[test]
    fn interval_helpers() {
        let i = Interval {
            value: 1.0,
            lo: 0.5,
            hi: 1.5,
        };
        assert_eq!(i.width(), 1.0);
        assert!(i.excludes(0.0));
        assert!(!i.excludes(1.0));
        assert!(i.excludes(2.0));
    }

    #[test]
    fn config_validation() {
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]);
        let cfg = BootstrapConfig {
            n_resamples: 5,
            ..BootstrapConfig::default()
        };
        assert!(m.sensitivity_with_ci(&set, &cfg).is_err());
        let cfg = BootstrapConfig {
            level: 1.5,
            ..BootstrapConfig::default()
        };
        assert!(m.sensitivity_with_ci(&set, &cfg).is_err());
        let bad = PerturbationSet::new(vec![Perturbation::percentage("zz", 1.0)]);
        assert!(m
            .sensitivity_with_ci(&bad, &BootstrapConfig::default())
            .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model();
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]);
        let a = m
            .sensitivity_with_ci(&set, &BootstrapConfig::default())
            .unwrap();
        let b = m
            .sensitivity_with_ci(&set, &BootstrapConfig::default())
            .unwrap();
        assert_eq!(a, b);
    }
}
