//! Driver Importance Analysis (paper §2 E, Figure 2 E).
//!
//! Importances come from the fitted model (standardized coefficients or
//! signed impurity importances) and are *verified* against the paper's
//! "traditional measures" — Shapley, Pearson, and Spearman — "to ensure
//! that the model coefficients are not misleading".

use crate::error::Result;
use crate::model_backend::TrainedModel;
use serde::{Deserialize, Serialize};
use whatif_learn::shapley::{global_shapley_importance, ShapleyConfig};
use whatif_stats::rank::{descending_abs_order, kendall_tau, top_k_overlap};
use whatif_stats::{pearson, spearman};

/// Signed driver importances in `[-1, 1]`, sorted views included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverImportance {
    /// Driver names aligned with [`DriverImportance::scores`].
    pub driver_names: Vec<String>,
    /// Signed importance per driver: extremes mean strong negative /
    /// positive influence on the KPI, near zero means little influence.
    pub scores: Vec<f64>,
}

impl DriverImportance {
    /// Driver names ordered by descending |importance| — the bar-chart
    /// order of the paper's importance view.
    pub fn ranked_names(&self) -> Vec<&str> {
        descending_abs_order(&self.scores)
            .into_iter()
            .map(|i| self.driver_names[i].as_str())
            .collect()
    }

    /// The `k` most important drivers.
    pub fn top_k(&self, k: usize) -> Vec<&str> {
        let mut names = self.ranked_names();
        names.truncate(k);
        names
    }

    /// The `k` least important drivers (least important last).
    pub fn bottom_k(&self, k: usize) -> Vec<&str> {
        let names = self.ranked_names();
        names[names.len().saturating_sub(k)..].to_vec()
    }

    /// Score of a named driver.
    pub fn score_of(&self, driver: &str) -> Option<f64> {
        self.driver_names
            .iter()
            .position(|n| n == driver)
            .map(|i| self.scores[i])
    }
}

/// The cross-check of model importances against traditional measures.
///
/// Agreement is measured on |importance| rankings (Kendall tau) and on
/// top-3 membership — the checks a human performs when eyeballing the
/// paper's verification step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Driver names aligned with all vectors below.
    pub driver_names: Vec<String>,
    /// Model-native importance (the scores being verified).
    pub model_scores: Vec<f64>,
    /// Pearson correlation of each driver with the KPI.
    pub pearson: Vec<f64>,
    /// Spearman rank correlation of each driver with the KPI.
    pub spearman: Vec<f64>,
    /// Signed Monte-Carlo Shapley importance (normalized to max |1|).
    pub shapley: Vec<f64>,
    /// Kendall tau between |model| and |Pearson| rankings.
    pub tau_pearson: f64,
    /// Kendall tau between |model| and |Spearman| rankings.
    pub tau_spearman: f64,
    /// Kendall tau between |model| and |Shapley| rankings.
    pub tau_shapley: f64,
    /// Top-3 overlap fractions against each measure, same order.
    pub top3_overlap: [f64; 3],
}

impl VerificationReport {
    /// A loose "not misleading" criterion: every agreement statistic is
    /// positive and the mean top-3 overlap is at least `min_overlap`.
    pub fn is_consistent(&self, min_overlap: f64) -> bool {
        let taus = [self.tau_pearson, self.tau_spearman, self.tau_shapley];
        let mean_overlap: f64 = self.top3_overlap.iter().sum::<f64>() / 3.0;
        taus.iter().all(|t| !t.is_nan() && *t > 0.0) && mean_overlap >= min_overlap
    }
}

impl TrainedModel {
    /// Model-native driver importances (Figure 2 E).
    ///
    /// # Errors
    /// Propagated learn errors.
    pub fn driver_importance(&self) -> Result<DriverImportance> {
        Ok(DriverImportance {
            driver_names: self.driver_names().to_vec(),
            scores: self.native_importances()?,
        })
    }

    /// Verify model importances against Pearson, Spearman, and sampled
    /// Shapley values.
    ///
    /// # Errors
    /// Propagated learn errors.
    pub fn verify_importance(&self, shapley: &ShapleyConfig) -> Result<VerificationReport> {
        let model_scores = self.native_importances()?;
        let y = self.targets();
        let p = self.driver_names().len();
        let mut pearson_v = Vec::with_capacity(p);
        let mut spearman_v = Vec::with_capacity(p);
        for j in 0..p {
            let col = self.matrix().col(j);
            pearson_v.push(pearson(&col, y));
            spearman_v.push(spearman(&col, y));
        }
        let shap = global_shapley_importance(self.predictor(), self.matrix(), shapley)?;
        let max_abs = shap
            .signed
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let shapley_norm: Vec<f64> = shap.signed.iter().map(|v| v / max_abs).collect();

        let abs = |v: &[f64]| -> Vec<f64> { v.iter().map(|x| x.abs()).collect() };
        let model_abs = abs(&model_scores);
        let tau_pearson = kendall_tau(&model_abs, &abs(&pearson_v));
        let tau_spearman = kendall_tau(&model_abs, &abs(&spearman_v));
        let tau_shapley = kendall_tau(&model_abs, &abs(&shapley_norm));
        let k = 3.min(p);
        let top3_overlap = [
            top_k_overlap(&model_abs, &abs(&pearson_v), k),
            top_k_overlap(&model_abs, &abs(&spearman_v), k),
            top_k_overlap(&model_abs, &abs(&shapley_norm), k),
        ];
        Ok(VerificationReport {
            driver_names: self.driver_names().to_vec(),
            model_scores,
            pearson: pearson_v,
            spearman: spearman_v,
            shapley: shapley_norm,
            tau_pearson,
            tau_spearman,
            tau_shapley,
            top3_overlap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use crate::model_backend::{ModelConfig, TrainedModel};
    use whatif_learn::Matrix;

    fn model() -> TrainedModel {
        // y = 5*a - 3*b + 0*c
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 9) as f64, ((i * 4) % 11) as f64, ((i * 7) % 5) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0] - 3.0 * r[1]).collect();
        TrainedModel::fit(
            "y",
            KpiKind::Continuous,
            vec!["a".into(), "b".into(), "c".into()],
            Matrix::from_rows(&rows).unwrap(),
            y,
            &ModelConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn importance_ranking_and_lookups() {
        let imp = model().driver_importance().unwrap();
        assert_eq!(imp.ranked_names()[0], "a");
        assert_eq!(imp.ranked_names()[2], "c");
        assert_eq!(imp.top_k(2), vec!["a", "b"]);
        assert_eq!(imp.bottom_k(1), vec!["c"]);
        assert!(imp.score_of("a").unwrap() > 0.0);
        assert!(imp.score_of("b").unwrap() < 0.0);
        assert!(imp.score_of("nope").is_none());
        assert!(imp.score_of("c").unwrap().abs() < 0.05);
    }

    #[test]
    fn verification_agrees_on_clean_linear_data() {
        let cfg = ShapleyConfig {
            n_permutations: 16,
            n_rows: 32,
            seed: 1,
        };
        let report = model().verify_importance(&cfg).unwrap();
        assert!(report.tau_pearson > 0.3, "tau_p {}", report.tau_pearson);
        assert!(report.tau_spearman > 0.3);
        assert!(report.tau_shapley > 0.3);
        assert!(report.is_consistent(0.6), "{report:?}");
        // Shapley signs match coefficients.
        assert!(report.shapley[0] > 0.0);
        assert!(report.shapley[1] < 0.0);
        // Normalized to max |1|.
        let max = report
            .shapley
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let imp = model().driver_importance().unwrap();
        let json = serde_json::to_string(&imp).unwrap();
        let back: DriverImportance = serde_json::from_str(&json).unwrap();
        assert_eq!(imp, back);
    }
}
