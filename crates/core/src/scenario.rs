//! Scenario management: "there are often multiple feasible choices with
//! dynamic costs and trade-offs ... Systems should enable rapid
//! discovery as well as management and tracking of these choices
//! (options), making them first-class citizens of data analysis" (§1).
//!
//! A [`ScenarioLedger`] records every what-if outcome a user wants to
//! keep — sensitivity runs, goal inversions — and supports comparing,
//! ranking, and pruning them.

use crate::bulk::ScenarioOutcome;
use crate::goal::GoalInversionResult;
use crate::perturbation::PerturbationSet;
use crate::sensitivity::SensitivityResult;
use serde::{Deserialize, Serialize};

/// What kind of analysis produced a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// A manual sensitivity experiment.
    Sensitivity,
    /// A goal-inversion recommendation.
    GoalInversion,
    /// One scenario of a bulk [`crate::bulk::ScenarioSet`] evaluation.
    Bulk,
}

/// A recorded option: a named perturbation with its KPI outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Ledger-assigned id (stable within a ledger).
    pub id: u64,
    /// User-facing name.
    pub name: String,
    /// Source analysis.
    pub kind: ScenarioKind,
    /// The driver changes this scenario applies.
    pub perturbations: PerturbationSet,
    /// KPI achieved under the scenario.
    pub kpi: f64,
    /// KPI on the original data at record time.
    pub baseline_kpi: f64,
}

impl Scenario {
    /// KPI change versus baseline.
    pub fn uplift(&self) -> f64 {
        self.kpi - self.baseline_kpi
    }
}

/// An ordered ledger of scenarios with monotonically increasing ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScenarioLedger {
    scenarios: Vec<Scenario>,
    next_id: u64,
}

impl ScenarioLedger {
    /// Empty ledger.
    pub fn new() -> ScenarioLedger {
        ScenarioLedger::default()
    }

    /// Record a sensitivity outcome; returns the assigned id.
    pub fn record_sensitivity(
        &mut self,
        name: impl Into<String>,
        result: &SensitivityResult,
    ) -> u64 {
        self.push(Scenario {
            id: 0,
            name: name.into(),
            kind: ScenarioKind::Sensitivity,
            perturbations: result.perturbations.clone(),
            kpi: result.perturbed_kpi,
            baseline_kpi: result.baseline_kpi,
        })
    }

    /// Record a goal-inversion outcome; returns the assigned id.
    pub fn record_goal_inversion(
        &mut self,
        name: impl Into<String>,
        result: &GoalInversionResult,
    ) -> u64 {
        self.push(Scenario {
            id: 0,
            name: name.into(),
            kind: ScenarioKind::GoalInversion,
            perturbations: result.as_perturbations(),
            kpi: result.achieved_kpi,
            baseline_kpi: result.baseline_kpi,
        })
    }

    /// Record every outcome of a bulk evaluation in one call; returns
    /// the assigned ids in input order.
    pub fn record_outcomes(&mut self, outcomes: &[ScenarioOutcome]) -> Vec<u64> {
        outcomes
            .iter()
            .map(|o| {
                self.push(Scenario {
                    id: 0,
                    name: o.name.clone(),
                    kind: ScenarioKind::Bulk,
                    perturbations: o.perturbations.clone(),
                    kpi: o.kpi,
                    baseline_kpi: o.baseline_kpi,
                })
            })
            .collect()
    }

    fn push(&mut self, mut scenario: Scenario) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        scenario.id = id;
        self.scenarios.push(scenario);
        id
    }

    /// All scenarios in recording order.
    pub fn all(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of recorded scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Look up by id.
    pub fn get(&self, id: u64) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.id == id)
    }

    /// Remove by id; returns the removed scenario.
    pub fn remove(&mut self, id: u64) -> Option<Scenario> {
        let pos = self.scenarios.iter().position(|s| s.id == id)?;
        Some(self.scenarios.remove(pos))
    }

    /// The scenario with the highest KPI.
    pub fn best_by_kpi(&self) -> Option<&Scenario> {
        self.scenarios.iter().max_by(|a, b| {
            a.kpi
                .partial_cmp(&b.kpi)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Scenarios sorted by descending uplift (the comparison table the
    /// paper's options view implies).
    pub fn ranked_by_uplift(&self) -> Vec<&Scenario> {
        let mut v: Vec<&Scenario> = self.scenarios.iter().collect();
        v.sort_by(|a, b| {
            b.uplift()
                .partial_cmp(&a.uplift())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturbation::{Perturbation, PerturbationSet};

    fn sens(kpi: f64) -> SensitivityResult {
        SensitivityResult {
            kpi_name: "y".into(),
            baseline_kpi: 0.4,
            perturbed_kpi: kpi,
            perturbations: PerturbationSet::new(vec![Perturbation::percentage("a", 40.0)]),
        }
    }

    #[test]
    fn record_and_lookup() {
        let mut ledger = ScenarioLedger::new();
        assert!(ledger.is_empty());
        let id0 = ledger.record_sensitivity("plus 40", &sens(0.43));
        let id1 = ledger.record_sensitivity("plus 80", &sens(0.47));
        assert_eq!(ledger.len(), 2);
        assert_ne!(id0, id1);
        assert_eq!(ledger.get(id0).unwrap().name, "plus 40");
        assert!(ledger.get(999).is_none());
        assert_eq!(ledger.all()[1].id, id1);
    }

    #[test]
    fn uplift_and_ranking() {
        let mut ledger = ScenarioLedger::new();
        ledger.record_sensitivity("small", &sens(0.43));
        ledger.record_sensitivity("big", &sens(0.60));
        ledger.record_sensitivity("bad", &sens(0.30));
        let best = ledger.best_by_kpi().unwrap();
        assert_eq!(best.name, "big");
        assert!((best.uplift() - 0.2).abs() < 1e-12);
        let ranked = ledger.ranked_by_uplift();
        assert_eq!(
            ranked.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["big", "small", "bad"]
        );
    }

    #[test]
    fn remove_preserves_ids() {
        let mut ledger = ScenarioLedger::new();
        let id0 = ledger.record_sensitivity("a", &sens(0.5));
        let id1 = ledger.record_sensitivity("b", &sens(0.6));
        let removed = ledger.remove(id0).unwrap();
        assert_eq!(removed.name, "a");
        assert!(ledger.remove(id0).is_none());
        // New ids keep counting up; existing ids stay valid.
        let id2 = ledger.record_sensitivity("c", &sens(0.7));
        assert!(id2 > id1);
        assert_eq!(ledger.get(id1).unwrap().name, "b");
    }

    #[test]
    fn goal_inversion_scenarios() {
        use crate::goal::{Goal, GoalInversionResult};
        let r = GoalInversionResult {
            goal: Goal::Maximize,
            achieved_kpi: 0.9,
            baseline_kpi: 0.42,
            confidence: 0.8,
            driver_percentages: vec![("a".into(), 250.0)],
            driver_values: vec![("a".into(), 3.5)],
            n_evals: 50,
            converged: true,
        };
        let mut ledger = ScenarioLedger::new();
        let id = ledger.record_goal_inversion("max out", &r);
        let s = ledger.get(id).unwrap();
        assert_eq!(s.kind, ScenarioKind::GoalInversion);
        assert!((s.uplift() - 0.48).abs() < 1e-12);
        assert_eq!(s.perturbations.perturbations.len(), 1);
    }

    #[test]
    fn bulk_outcomes_record_in_one_call() {
        let mut ledger = ScenarioLedger::new();
        let outcomes = vec![
            ScenarioOutcome {
                name: "s1".into(),
                perturbations: PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]),
                kpi: 0.5,
                baseline_kpi: 0.4,
            },
            ScenarioOutcome {
                name: "s2".into(),
                perturbations: PerturbationSet::new(vec![Perturbation::absolute("a", 2.0)]),
                kpi: 0.6,
                baseline_kpi: 0.4,
            },
        ];
        let ids = ledger.record_outcomes(&outcomes);
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.get(1).unwrap().name, "s2");
        assert_eq!(ledger.get(0).unwrap().kind, ScenarioKind::Bulk);
        assert!((ledger.get(1).unwrap().uplift() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let mut ledger = ScenarioLedger::new();
        ledger.record_sensitivity("x", &sens(0.5));
        let json = serde_json::to_string(&ledger).unwrap();
        let back: ScenarioLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.all()[0].name, "x");
    }
}
