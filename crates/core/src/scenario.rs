//! Scenario management: "there are often multiple feasible choices with
//! dynamic costs and trade-offs ... Systems should enable rapid
//! discovery as well as management and tracking of these choices
//! (options), making them first-class citizens of data analysis" (§1).
//!
//! A [`ScenarioLedger`] records every what-if outcome a user wants to
//! keep — sensitivity runs, goal inversions — and supports comparing,
//! ranking, and pruning them.

use crate::bulk::ScenarioOutcome;
use crate::goal::GoalInversionResult;
use crate::perturbation::PerturbationSet;
use crate::sensitivity::SensitivityResult;
use serde::{Deserialize, Serialize};

/// What kind of analysis produced a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// A manual sensitivity experiment.
    Sensitivity,
    /// A goal-inversion recommendation.
    GoalInversion,
    /// One scenario of a bulk [`crate::bulk::ScenarioSet`] evaluation.
    Bulk,
}

/// A recorded option: a named perturbation with its KPI outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Ledger-assigned id (stable within a ledger).
    pub id: u64,
    /// User-facing name.
    pub name: String,
    /// Source analysis.
    pub kind: ScenarioKind,
    /// The driver changes this scenario applies.
    pub perturbations: PerturbationSet,
    /// KPI achieved under the scenario.
    pub kpi: f64,
    /// KPI on the original data at record time.
    pub baseline_kpi: f64,
}

impl Scenario {
    /// KPI change versus baseline.
    pub fn uplift(&self) -> f64 {
        self.kpi - self.baseline_kpi
    }
}

/// An ordered ledger of scenarios with monotonically increasing ids.
///
/// Long-lived sessions can bound memory with
/// [`ScenarioLedger::with_capacity`]: when full, recording evicts the
/// *oldest* entries first (ids are never reused, so references to
/// evicted scenarios simply resolve to `None`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScenarioLedger {
    scenarios: Vec<Scenario>,
    next_id: u64,
    /// Maximum retained scenarios; `None` = unbounded.
    #[serde(default)]
    capacity: Option<usize>,
}

impl ScenarioLedger {
    /// Empty ledger, unbounded.
    pub fn new() -> ScenarioLedger {
        ScenarioLedger::default()
    }

    /// Empty ledger retaining at most `capacity` scenarios
    /// (oldest-first eviction once full).
    pub fn with_capacity(capacity: usize) -> ScenarioLedger {
        ScenarioLedger {
            capacity: Some(capacity),
            ..ScenarioLedger::default()
        }
    }

    /// The retention bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Change the retention bound; shrinking evicts oldest-first
    /// immediately, `None` lifts the bound.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        self.evict_to_capacity();
    }

    /// Drop every recorded scenario. Ids keep counting up — a cleared
    /// ledger never hands out an id it has used before.
    pub fn clear(&mut self) {
        self.scenarios.clear();
    }

    fn evict_to_capacity(&mut self) {
        if let Some(capacity) = self.capacity {
            if self.scenarios.len() > capacity {
                let excess = self.scenarios.len() - capacity;
                self.scenarios.drain(..excess);
            }
        }
    }

    /// Record a sensitivity outcome; returns the assigned id.
    pub fn record_sensitivity(
        &mut self,
        name: impl Into<String>,
        result: &SensitivityResult,
    ) -> u64 {
        self.push(Scenario {
            id: 0,
            name: name.into(),
            kind: ScenarioKind::Sensitivity,
            perturbations: result.perturbations.clone(),
            kpi: result.perturbed_kpi,
            baseline_kpi: result.baseline_kpi,
        })
    }

    /// Record a goal-inversion outcome; returns the assigned id.
    pub fn record_goal_inversion(
        &mut self,
        name: impl Into<String>,
        result: &GoalInversionResult,
    ) -> u64 {
        self.push(Scenario {
            id: 0,
            name: name.into(),
            kind: ScenarioKind::GoalInversion,
            perturbations: result.as_perturbations(),
            kpi: result.achieved_kpi,
            baseline_kpi: result.baseline_kpi,
        })
    }

    /// Record every outcome of a bulk evaluation in one call; returns
    /// the assigned ids in input order.
    pub fn record_outcomes(&mut self, outcomes: &[ScenarioOutcome]) -> Vec<u64> {
        outcomes
            .iter()
            .map(|o| {
                self.push(Scenario {
                    id: 0,
                    name: o.name.clone(),
                    kind: ScenarioKind::Bulk,
                    perturbations: o.perturbations.clone(),
                    kpi: o.kpi,
                    baseline_kpi: o.baseline_kpi,
                })
            })
            .collect()
    }

    fn push(&mut self, mut scenario: Scenario) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        scenario.id = id;
        self.scenarios.push(scenario);
        self.evict_to_capacity();
        id
    }

    /// All scenarios in recording order.
    pub fn all(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of recorded scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Look up by id.
    pub fn get(&self, id: u64) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.id == id)
    }

    /// Remove by id; returns the removed scenario.
    pub fn remove(&mut self, id: u64) -> Option<Scenario> {
        let pos = self.scenarios.iter().position(|s| s.id == id)?;
        Some(self.scenarios.remove(pos))
    }

    /// The scenario with the highest KPI, under a *total* order:
    /// `f64::total_cmp` (so a NaN KPI from a degenerate model cannot
    /// make the answer depend on iteration order — NaN sorts above
    /// +∞), with exact KPI ties broken toward the earliest-recorded
    /// (lowest) id.
    pub fn best_by_kpi(&self) -> Option<&Scenario> {
        self.scenarios
            .iter()
            .max_by(|a, b| a.kpi.total_cmp(&b.kpi).then_with(|| b.id.cmp(&a.id)))
    }

    /// Scenarios sorted by descending uplift (the comparison table the
    /// paper's options view implies). Totally ordered and
    /// deterministic: `f64::total_cmp` on uplift (NaNs sort first,
    /// above +∞), ties broken by ascending id.
    pub fn ranked_by_uplift(&self) -> Vec<&Scenario> {
        let mut v: Vec<&Scenario> = self.scenarios.iter().collect();
        v.sort_by(|a, b| {
            b.uplift()
                .total_cmp(&a.uplift())
                .then_with(|| a.id.cmp(&b.id))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturbation::{Perturbation, PerturbationSet};

    fn sens(kpi: f64) -> SensitivityResult {
        SensitivityResult {
            kpi_name: "y".into(),
            baseline_kpi: 0.4,
            perturbed_kpi: kpi,
            perturbations: PerturbationSet::new(vec![Perturbation::percentage("a", 40.0)]),
        }
    }

    #[test]
    fn record_and_lookup() {
        let mut ledger = ScenarioLedger::new();
        assert!(ledger.is_empty());
        let id0 = ledger.record_sensitivity("plus 40", &sens(0.43));
        let id1 = ledger.record_sensitivity("plus 80", &sens(0.47));
        assert_eq!(ledger.len(), 2);
        assert_ne!(id0, id1);
        assert_eq!(ledger.get(id0).unwrap().name, "plus 40");
        assert!(ledger.get(999).is_none());
        assert_eq!(ledger.all()[1].id, id1);
    }

    #[test]
    fn uplift_and_ranking() {
        let mut ledger = ScenarioLedger::new();
        ledger.record_sensitivity("small", &sens(0.43));
        ledger.record_sensitivity("big", &sens(0.60));
        ledger.record_sensitivity("bad", &sens(0.30));
        let best = ledger.best_by_kpi().unwrap();
        assert_eq!(best.name, "big");
        assert!((best.uplift() - 0.2).abs() < 1e-12);
        let ranked = ledger.ranked_by_uplift();
        assert_eq!(
            ranked.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["big", "small", "bad"]
        );
    }

    #[test]
    fn remove_preserves_ids() {
        let mut ledger = ScenarioLedger::new();
        let id0 = ledger.record_sensitivity("a", &sens(0.5));
        let id1 = ledger.record_sensitivity("b", &sens(0.6));
        let removed = ledger.remove(id0).unwrap();
        assert_eq!(removed.name, "a");
        assert!(ledger.remove(id0).is_none());
        // New ids keep counting up; existing ids stay valid.
        let id2 = ledger.record_sensitivity("c", &sens(0.7));
        assert!(id2 > id1);
        assert_eq!(ledger.get(id1).unwrap().name, "b");
    }

    #[test]
    fn goal_inversion_scenarios() {
        use crate::goal::{Goal, GoalInversionResult};
        let r = GoalInversionResult {
            goal: Goal::Maximize,
            achieved_kpi: 0.9,
            baseline_kpi: 0.42,
            confidence: 0.8,
            driver_percentages: vec![("a".into(), 250.0)],
            driver_values: vec![("a".into(), 3.5)],
            n_evals: 50,
            converged: true,
        };
        let mut ledger = ScenarioLedger::new();
        let id = ledger.record_goal_inversion("max out", &r);
        let s = ledger.get(id).unwrap();
        assert_eq!(s.kind, ScenarioKind::GoalInversion);
        assert!((s.uplift() - 0.48).abs() < 1e-12);
        assert_eq!(s.perturbations.perturbations.len(), 1);
    }

    #[test]
    fn bulk_outcomes_record_in_one_call() {
        let mut ledger = ScenarioLedger::new();
        let outcomes = vec![
            ScenarioOutcome {
                name: "s1".into(),
                perturbations: PerturbationSet::new(vec![Perturbation::percentage("a", 10.0)]),
                kpi: 0.5,
                baseline_kpi: 0.4,
            },
            ScenarioOutcome {
                name: "s2".into(),
                perturbations: PerturbationSet::new(vec![Perturbation::absolute("a", 2.0)]),
                kpi: 0.6,
                baseline_kpi: 0.4,
            },
        ];
        let ids = ledger.record_outcomes(&outcomes);
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.get(1).unwrap().name, "s2");
        assert_eq!(ledger.get(0).unwrap().kind, ScenarioKind::Bulk);
        assert!((ledger.get(1).unwrap().uplift() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let mut ledger = ScenarioLedger::new();
        ledger.record_sensitivity("x", &sens(0.5));
        let json = serde_json::to_string(&ledger).unwrap();
        let back: ScenarioLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.all()[0].name, "x");
        assert_eq!(back.capacity(), None, "legacy JSON defaults unbounded");

        let bounded = ScenarioLedger::with_capacity(3);
        let json = serde_json::to_string(&bounded).unwrap();
        let back: ScenarioLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.capacity(), Some(3));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut ledger = ScenarioLedger::with_capacity(2);
        let id0 = ledger.record_sensitivity("a", &sens(0.5));
        let id1 = ledger.record_sensitivity("b", &sens(0.6));
        assert_eq!(ledger.len(), 2);
        let id2 = ledger.record_sensitivity("c", &sens(0.7));
        assert_eq!(ledger.len(), 2, "bounded");
        assert!(ledger.get(id0).is_none(), "oldest evicted");
        assert!(ledger.get(id1).is_some() && ledger.get(id2).is_some());
        // Ids stay monotonic across evictions.
        let id3 = ledger.record_sensitivity("d", &sens(0.8));
        assert_eq!(id3, 3);
        assert_eq!(
            ledger.all().iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![id2, id3],
            "recording order preserved"
        );
    }

    #[test]
    fn capacity_zero_retains_nothing_and_shrink_evicts() {
        let mut ledger = ScenarioLedger::with_capacity(0);
        let id = ledger.record_sensitivity("ghost", &sens(0.5));
        assert_eq!(id, 0, "id still allocated");
        assert!(ledger.is_empty());

        let mut ledger = ScenarioLedger::new();
        for i in 0..5 {
            ledger.record_sensitivity(format!("s{i}"), &sens(0.5));
        }
        ledger.set_capacity(Some(2));
        assert_eq!(ledger.len(), 2, "shrink evicts immediately");
        assert_eq!(ledger.all()[0].id, 3, "oldest went first");
        ledger.set_capacity(None);
        for i in 0..5 {
            ledger.record_sensitivity(format!("t{i}"), &sens(0.5));
        }
        assert_eq!(ledger.len(), 7, "unbounded again");
    }

    #[test]
    fn clear_empties_but_never_reuses_ids() {
        let mut ledger = ScenarioLedger::new();
        ledger.record_sensitivity("a", &sens(0.5));
        let id1 = ledger.record_sensitivity("b", &sens(0.6));
        ledger.clear();
        assert!(ledger.is_empty());
        let id2 = ledger.record_sensitivity("c", &sens(0.7));
        assert!(id2 > id1, "ids keep counting up after clear");
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn ranking_is_total_and_deterministic_under_nan_and_ties() {
        let mut ledger = ScenarioLedger::new();
        let tied_lo = ledger.record_sensitivity("tied first", &sens(0.6));
        let nan = ledger.record_sensitivity("nan", &sens(f64::NAN));
        let tied_hi = ledger.record_sensitivity("tied second", &sens(0.6));
        let best = ledger.record_sensitivity("best finite", &sens(0.9));
        let worst = ledger.record_sensitivity("worst", &sens(0.1));

        // NaN sorts above every finite KPI under total_cmp, ties break
        // toward the earlier id, and repeated calls agree exactly.
        let ranked: Vec<u64> = ledger.ranked_by_uplift().iter().map(|s| s.id).collect();
        assert_eq!(ranked, vec![nan, best, tied_lo, tied_hi, worst]);
        let again: Vec<u64> = ledger.ranked_by_uplift().iter().map(|s| s.id).collect();
        assert_eq!(ranked, again, "deterministic");
        assert_eq!(ledger.best_by_kpi().unwrap().id, nan);

        // Without the NaN entry, the finite maximum wins and exact ties
        // prefer the earliest recording.
        ledger.remove(nan);
        assert_eq!(ledger.best_by_kpi().unwrap().id, best);
        ledger.remove(best);
        ledger.remove(worst);
        assert_eq!(
            ledger.best_by_kpi().unwrap().id,
            tied_lo,
            "tie broken toward earliest id"
        );
    }
}
