//! Perturbations: the "what" of what-if (paper §2 F/G).
//!
//! The system supports the paper's two perturbation options — absolute
//! deltas and percentage changes — applied to every data point ("a 40%
//! increase on Open Marketing Email means increasing the marketing
//! emails opened for every prospect by 40%") or to a single data point
//! (per-data analysis).

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use whatif_learn::Matrix;

/// How a driver is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerturbationKind {
    /// Add a fixed delta to every value.
    Absolute(f64),
    /// Scale every value by `1 + pct/100`.
    Percentage(f64),
}

/// One driver perturbation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    /// Driver column to perturb.
    pub driver: String,
    /// Kind and magnitude.
    pub kind: PerturbationKind,
}

impl Perturbation {
    /// Absolute delta perturbation.
    pub fn absolute(driver: impl Into<String>, delta: f64) -> Perturbation {
        Perturbation {
            driver: driver.into(),
            kind: PerturbationKind::Absolute(delta),
        }
    }

    /// Percentage perturbation (`40.0` = +40 %).
    pub fn percentage(driver: impl Into<String>, pct: f64) -> Perturbation {
        Perturbation {
            driver: driver.into(),
            kind: PerturbationKind::Percentage(pct),
        }
    }

    /// Apply to a single value.
    pub fn apply_value(&self, v: f64) -> f64 {
        match self.kind {
            PerturbationKind::Absolute(delta) => v + delta,
            PerturbationKind::Percentage(pct) => v * (1.0 + pct / 100.0),
        }
    }
}

/// A set of simultaneous perturbations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerturbationSet {
    /// The perturbations, applied independently per driver.
    pub perturbations: Vec<Perturbation>,
    /// Clamp perturbed values at zero (business activity counts and
    /// spends cannot go negative). Defaults to `true`.
    pub clamp_non_negative: bool,
}

impl PerturbationSet {
    /// A set with non-negative clamping on (the business-data default).
    pub fn new(perturbations: Vec<Perturbation>) -> PerturbationSet {
        PerturbationSet {
            perturbations,
            clamp_non_negative: true,
        }
    }

    /// Disable the non-negative clamp (for data with legitimate negative
    /// values).
    pub fn without_clamp(mut self) -> PerturbationSet {
        self.clamp_non_negative = false;
        self
    }

    /// True when no perturbations are present.
    pub fn is_empty(&self) -> bool {
        self.perturbations.is_empty()
    }

    /// Validate that every perturbation's driver appears in
    /// `driver_names` and no driver is perturbed twice.
    ///
    /// # Errors
    /// [`CoreError::Config`] on unknown or duplicated drivers.
    pub fn validate(&self, driver_names: &[String]) -> Result<()> {
        let mut seen: Vec<&str> = Vec::with_capacity(self.perturbations.len());
        for p in &self.perturbations {
            if !driver_names.iter().any(|n| n == &p.driver) {
                return Err(CoreError::Config(format!(
                    "perturbation references unknown driver {:?}",
                    p.driver
                )));
            }
            if seen.contains(&p.driver.as_str()) {
                return Err(CoreError::Config(format!(
                    "driver {:?} perturbed more than once",
                    p.driver
                )));
            }
            seen.push(&p.driver);
        }
        Ok(())
    }

    /// Apply to an entire matrix whose columns are `driver_names`.
    ///
    /// # Errors
    /// [`CoreError::Config`] per [`PerturbationSet::validate`].
    pub fn apply_to_matrix(&self, x: &Matrix, driver_names: &[String]) -> Result<Matrix> {
        self.validate(driver_names)?;
        let mut out = x.clone();
        for p in &self.perturbations {
            let j = driver_names
                .iter()
                .position(|n| n == &p.driver)
                .expect("validated above");
            for i in 0..out.n_rows() {
                let mut v = p.apply_value(out.get(i, j));
                if self.clamp_non_negative {
                    v = v.max(0.0);
                }
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Apply to a single feature row.
    ///
    /// # Errors
    /// [`CoreError::Config`] per [`PerturbationSet::validate`] or on a
    /// row/driver length mismatch.
    pub fn apply_to_row(&self, row: &[f64], driver_names: &[String]) -> Result<Vec<f64>> {
        self.validate(driver_names)?;
        if row.len() != driver_names.len() {
            return Err(CoreError::Config(format!(
                "row has {} values for {} drivers",
                row.len(),
                driver_names.len()
            )));
        }
        let mut out = row.to_vec();
        for p in &self.perturbations {
            let j = driver_names
                .iter()
                .position(|n| n == &p.driver)
                .expect("validated above");
            out[j] = p.apply_value(out[j]);
            if self.clamp_non_negative {
                out[j] = out[j].max(0.0);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    fn matrix() -> Matrix {
        Matrix::from_rows(&[vec![10.0, 1.0], vec![20.0, 2.0]]).unwrap()
    }

    #[test]
    fn percentage_scales_all_rows() {
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 40.0)]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(0), vec![14.0, 28.0]);
        assert_eq!(out.col(1), vec![1.0, 2.0], "untouched driver");
    }

    #[test]
    fn absolute_adds_delta() {
        let set = PerturbationSet::new(vec![Perturbation::absolute("b", 5.0)]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(1), vec![6.0, 7.0]);
    }

    #[test]
    fn multiple_drivers_at_once() {
        let set = PerturbationSet::new(vec![
            Perturbation::percentage("a", -50.0),
            Perturbation::absolute("b", 1.0),
        ]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(0), vec![5.0, 10.0]);
        assert_eq!(out.col(1), vec![2.0, 3.0]);
    }

    #[test]
    fn clamp_prevents_negative_counts() {
        let set = PerturbationSet::new(vec![Perturbation::absolute("a", -15.0)]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(0), vec![0.0, 5.0]);
        let unclamped = PerturbationSet::new(vec![Perturbation::absolute("a", -15.0)])
            .without_clamp()
            .apply_to_matrix(&matrix(), &names())
            .unwrap();
        assert_eq!(unclamped.col(0), vec![-5.0, 5.0]);
    }

    #[test]
    fn row_application() {
        let set = PerturbationSet::new(vec![Perturbation::percentage("b", 100.0)]);
        let out = set.apply_to_row(&[3.0, 4.0], &names()).unwrap();
        assert_eq!(out, vec![3.0, 8.0]);
        assert!(set.apply_to_row(&[1.0], &names()).is_err());
    }

    #[test]
    fn validation_errors() {
        let set = PerturbationSet::new(vec![Perturbation::percentage("zz", 1.0)]);
        assert!(set.apply_to_matrix(&matrix(), &names()).is_err());
        let dup = PerturbationSet::new(vec![
            Perturbation::percentage("a", 1.0),
            Perturbation::absolute("a", 1.0),
        ]);
        assert!(dup.validate(&names()).is_err());
        let empty = PerturbationSet::new(vec![]);
        assert!(empty.is_empty());
        assert!(empty.validate(&names()).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let set = PerturbationSet::new(vec![
            Perturbation::percentage("a", 40.0),
            Perturbation::absolute("b", -2.0),
        ]);
        let json = serde_json::to_string(&set).unwrap();
        let back: PerturbationSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}
