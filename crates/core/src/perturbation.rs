//! Perturbations: the "what" of what-if (paper §2 F/G).
//!
//! The system supports the paper's two perturbation options — absolute
//! deltas and percentage changes — applied to every data point ("a 40%
//! increase on Open Marketing Email means increasing the marketing
//! emails opened for every prospect by 40%") or to a single data point
//! (per-data analysis).

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use whatif_learn::{ColumnOverlay, Matrix};

/// How a driver is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerturbationKind {
    /// Add a fixed delta to every value.
    Absolute(f64),
    /// Scale every value by `1 + pct/100`.
    Percentage(f64),
}

impl PerturbationKind {
    /// Apply to a single value.
    #[inline]
    pub fn apply(self, v: f64) -> f64 {
        match self {
            PerturbationKind::Absolute(delta) => v + delta,
            PerturbationKind::Percentage(pct) => v * (1.0 + pct / 100.0),
        }
    }
}

/// One driver perturbation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    /// Driver column to perturb.
    pub driver: String,
    /// Kind and magnitude.
    pub kind: PerturbationKind,
}

impl Perturbation {
    /// Absolute delta perturbation.
    pub fn absolute(driver: impl Into<String>, delta: f64) -> Perturbation {
        Perturbation {
            driver: driver.into(),
            kind: PerturbationKind::Absolute(delta),
        }
    }

    /// Percentage perturbation (`40.0` = +40 %).
    pub fn percentage(driver: impl Into<String>, pct: f64) -> Perturbation {
        Perturbation {
            driver: driver.into(),
            kind: PerturbationKind::Percentage(pct),
        }
    }

    /// Apply to a single value.
    pub fn apply_value(&self, v: f64) -> f64 {
        self.kind.apply(v)
    }
}

/// A set of simultaneous perturbations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerturbationSet {
    /// The perturbations, applied independently per driver.
    pub perturbations: Vec<Perturbation>,
    /// Clamp perturbed values at zero (business activity counts and
    /// spends cannot go negative). Defaults to `true`.
    pub clamp_non_negative: bool,
}

impl PerturbationSet {
    /// A set with non-negative clamping on (the business-data default).
    pub fn new(perturbations: Vec<Perturbation>) -> PerturbationSet {
        PerturbationSet {
            perturbations,
            clamp_non_negative: true,
        }
    }

    /// Disable the non-negative clamp (for data with legitimate negative
    /// values).
    pub fn without_clamp(mut self) -> PerturbationSet {
        self.clamp_non_negative = false;
        self
    }

    /// True when no perturbations are present.
    pub fn is_empty(&self) -> bool {
        self.perturbations.is_empty()
    }

    /// Validate that every perturbation's driver appears in
    /// `driver_names` and no driver is perturbed twice. Runs in
    /// O(drivers + perturbations) via hash sets.
    ///
    /// # Errors
    /// [`CoreError::Config`] on unknown or duplicated drivers.
    pub fn validate(&self, driver_names: &[String]) -> Result<()> {
        self.compile(driver_names).map(|_| ())
    }

    /// Compile into a [`PerturbationPlan`]: validated once, driver
    /// indices resolved once. All repeated evaluation (goal seeking,
    /// comparison sweeps, bulk scenarios) should go through the plan.
    ///
    /// # Errors
    /// [`CoreError::Config`] on unknown or duplicated drivers.
    pub fn compile(&self, driver_names: &[String]) -> Result<PerturbationPlan> {
        let index: std::collections::HashMap<&str, usize> = driver_names
            .iter()
            .enumerate()
            .map(|(j, n)| (n.as_str(), j))
            .collect();
        let mut seen: HashSet<&str> = HashSet::with_capacity(self.perturbations.len());
        let mut steps = Vec::with_capacity(self.perturbations.len());
        for p in &self.perturbations {
            let Some(&j) = index.get(p.driver.as_str()) else {
                return Err(CoreError::Config(format!(
                    "perturbation references unknown driver {:?}",
                    p.driver
                )));
            };
            if !seen.insert(p.driver.as_str()) {
                return Err(CoreError::Config(format!(
                    "driver {:?} perturbed more than once",
                    p.driver
                )));
            }
            steps.push((j, p.kind));
        }
        Ok(PerturbationPlan {
            steps,
            clamp_non_negative: self.clamp_non_negative,
            n_cols: driver_names.len(),
        })
    }

    /// Apply to an entire matrix whose columns are `driver_names`.
    ///
    /// This clones the full matrix; interactive paths use
    /// [`PerturbationPlan::overlay`] instead, which materializes only
    /// the perturbed columns. Kept as the simple owned-output API (and
    /// as the reference implementation the equivalence tests and
    /// benches compare the overlay path against).
    ///
    /// # Errors
    /// [`CoreError::Config`] per [`PerturbationSet::validate`].
    pub fn apply_to_matrix(&self, x: &Matrix, driver_names: &[String]) -> Result<Matrix> {
        Ok(self.compile(driver_names)?.apply_to_matrix(x))
    }

    /// Apply to a single feature row.
    ///
    /// # Errors
    /// [`CoreError::Config`] per [`PerturbationSet::validate`] or on a
    /// row/driver length mismatch.
    pub fn apply_to_row(&self, row: &[f64], driver_names: &[String]) -> Result<Vec<f64>> {
        let plan = self.compile(driver_names)?;
        if row.len() != driver_names.len() {
            return Err(CoreError::Config(format!(
                "row has {} values for {} drivers",
                row.len(),
                driver_names.len()
            )));
        }
        let mut out = row.to_vec();
        plan.apply_to_row(&mut out);
        Ok(out)
    }
}

/// A compiled perturbation set: names resolved to column indices,
/// duplicates rejected, ready for repeated zero-validation application.
///
/// Plans decouple the *what* (a user-facing [`PerturbationSet`]) from
/// the *how* (index-addressed column transforms). Hot paths — goal
/// inversion objectives, comparison sweeps, bulk scenario evaluation —
/// compile once and then apply the plan per candidate via
/// [`PerturbationPlan::overlay`], which materializes only the perturbed
/// columns over a shared base matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbationPlan {
    /// `(column index, kind)` pairs, at most one per column.
    steps: Vec<(usize, PerturbationKind)>,
    clamp_non_negative: bool,
    /// Width of the matrices this plan applies to.
    n_cols: usize,
}

impl PerturbationPlan {
    /// A plan perturbing a single column — the comparison-sweep and
    /// goal-seek fast path (no allocation of named sets, no validation).
    pub fn single(col: usize, kind: PerturbationKind, clamp: bool, n_cols: usize) -> Self {
        debug_assert!(col < n_cols);
        PerturbationPlan {
            steps: vec![(col, kind)],
            clamp_non_negative: clamp,
            n_cols,
        }
    }

    /// A plan applying one percentage change per column, in column
    /// order — the goal-inversion objective fast path.
    pub fn percentages(pcts: &[f64], clamp: bool) -> Self {
        PerturbationPlan {
            steps: pcts
                .iter()
                .enumerate()
                .map(|(j, &p)| (j, PerturbationKind::Percentage(p)))
                .collect(),
            clamp_non_negative: clamp,
            n_cols: pcts.len(),
        }
    }

    /// True when the plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of perturbed columns.
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }

    /// Matrix width this plan expects.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether perturbed values are clamped at zero.
    pub fn clamps(&self) -> bool {
        self.clamp_non_negative
    }

    #[inline]
    fn transform(&self, kind: PerturbationKind, v: f64) -> f64 {
        let v = kind.apply(v);
        if self.clamp_non_negative {
            v.max(0.0)
        } else {
            v
        }
    }

    /// Build a copy-on-write view of `base` with only the perturbed
    /// columns materialized — zero full-matrix clones.
    ///
    /// # Errors
    /// [`CoreError::Config`] when `base` does not have the width the
    /// plan was compiled for.
    pub fn overlay<'a>(&self, base: &'a Matrix) -> Result<ColumnOverlay<'a>> {
        if base.n_cols() != self.n_cols {
            return Err(CoreError::Config(format!(
                "plan compiled for {} columns, matrix has {}",
                self.n_cols,
                base.n_cols()
            )));
        }
        let mut overlay = ColumnOverlay::new(base);
        for &(j, kind) in &self.steps {
            overlay
                .map_col(j, |v| self.transform(kind, v))
                .map_err(|e| CoreError::Config(e.to_string()))?;
        }
        Ok(overlay)
    }

    /// Apply to a full matrix, returning an owned copy (legacy path).
    pub fn apply_to_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for &(j, kind) in &self.steps {
            for i in 0..out.n_rows() {
                out.set(i, j, self.transform(kind, out.get(i, j)));
            }
        }
        out
    }

    /// Apply in place to a single feature row of plan width.
    pub fn apply_to_row(&self, row: &mut [f64]) {
        debug_assert_eq!(row.len(), self.n_cols);
        for &(j, kind) in &self.steps {
            row[j] = self.transform(kind, row[j]);
        }
    }

    /// Fold the plan's exact evaluation semantics — width, clamp flag,
    /// and every `(column, kind, magnitude)` step in order — into a
    /// fingerprint hasher. Two plans with equal fingerprint input
    /// produce bit-identical overlays, which is what makes plan
    /// fingerprints sound cache keys.
    pub fn write_fingerprint(&self, h: &mut whatif_cache::Hasher128) {
        h.write_usize(self.n_cols);
        h.write_bool(self.clamp_non_negative);
        h.write_usize(self.steps.len());
        for &(j, kind) in &self.steps {
            h.write_usize(j);
            match kind {
                PerturbationKind::Absolute(delta) => {
                    h.write_u8(0);
                    h.write_f64(delta);
                }
                PerturbationKind::Percentage(pct) => {
                    h.write_u8(1);
                    h.write_f64(pct);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    fn matrix() -> Matrix {
        Matrix::from_rows(&[vec![10.0, 1.0], vec![20.0, 2.0]]).unwrap()
    }

    #[test]
    fn percentage_scales_all_rows() {
        let set = PerturbationSet::new(vec![Perturbation::percentage("a", 40.0)]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(0), vec![14.0, 28.0]);
        assert_eq!(out.col(1), vec![1.0, 2.0], "untouched driver");
    }

    #[test]
    fn absolute_adds_delta() {
        let set = PerturbationSet::new(vec![Perturbation::absolute("b", 5.0)]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(1), vec![6.0, 7.0]);
    }

    #[test]
    fn multiple_drivers_at_once() {
        let set = PerturbationSet::new(vec![
            Perturbation::percentage("a", -50.0),
            Perturbation::absolute("b", 1.0),
        ]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(0), vec![5.0, 10.0]);
        assert_eq!(out.col(1), vec![2.0, 3.0]);
    }

    #[test]
    fn clamp_prevents_negative_counts() {
        let set = PerturbationSet::new(vec![Perturbation::absolute("a", -15.0)]);
        let out = set.apply_to_matrix(&matrix(), &names()).unwrap();
        assert_eq!(out.col(0), vec![0.0, 5.0]);
        let unclamped = PerturbationSet::new(vec![Perturbation::absolute("a", -15.0)])
            .without_clamp()
            .apply_to_matrix(&matrix(), &names())
            .unwrap();
        assert_eq!(unclamped.col(0), vec![-5.0, 5.0]);
    }

    #[test]
    fn row_application() {
        let set = PerturbationSet::new(vec![Perturbation::percentage("b", 100.0)]);
        let out = set.apply_to_row(&[3.0, 4.0], &names()).unwrap();
        assert_eq!(out, vec![3.0, 8.0]);
        assert!(set.apply_to_row(&[1.0], &names()).is_err());
    }

    #[test]
    fn validation_errors() {
        let set = PerturbationSet::new(vec![Perturbation::percentage("zz", 1.0)]);
        assert!(set.apply_to_matrix(&matrix(), &names()).is_err());
        let dup = PerturbationSet::new(vec![
            Perturbation::percentage("a", 1.0),
            Perturbation::absolute("a", 1.0),
        ]);
        assert!(dup.validate(&names()).is_err());
        let empty = PerturbationSet::new(vec![]);
        assert!(empty.is_empty());
        assert!(empty.validate(&names()).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let set = PerturbationSet::new(vec![
            Perturbation::percentage("a", 40.0),
            Perturbation::absolute("b", -2.0),
        ]);
        let json = serde_json::to_string(&set).unwrap();
        let back: PerturbationSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn compiled_plan_resolves_indices_once() {
        let set = PerturbationSet::new(vec![
            Perturbation::percentage("b", 100.0),
            Perturbation::absolute("a", -15.0),
        ]);
        let plan = set.compile(&names()).unwrap();
        assert_eq!(plan.n_steps(), 2);
        assert_eq!(plan.n_cols(), 2);
        assert!(plan.clamps());
        assert!(!plan.is_empty());
        // Unknown/duplicate drivers fail at compile time.
        assert!(
            PerturbationSet::new(vec![Perturbation::percentage("zz", 1.0)])
                .compile(&names())
                .is_err()
        );
        assert!(PerturbationSet::new(vec![
            Perturbation::percentage("a", 1.0),
            Perturbation::absolute("a", 2.0),
        ])
        .compile(&names())
        .is_err());
    }

    #[test]
    fn overlay_matches_full_clone_bit_for_bit() {
        let set = PerturbationSet::new(vec![
            Perturbation::percentage("a", 37.5),
            Perturbation::absolute("b", -1.5),
        ]);
        let m = matrix();
        let plan = set.compile(&names()).unwrap();
        let cloned = set.apply_to_matrix(&m, &names()).unwrap();
        let overlay = plan.overlay(&m).unwrap();
        assert_eq!(overlay.n_overridden(), 2);
        assert_eq!(overlay.to_matrix(), cloned);
        // Untouched columns are not materialized.
        let single = PerturbationPlan::single(0, PerturbationKind::Percentage(10.0), true, 2);
        let o = single.overlay(&m).unwrap();
        assert_eq!(o.n_overridden(), 1);
        assert!(o.col_override(1).is_none());
        // Width mismatch is a config error.
        assert!(single.overlay(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn trusted_plan_constructors_match_named_sets() {
        let m = matrix();
        let named = PerturbationSet::new(vec![
            Perturbation::percentage("a", -30.0),
            Perturbation::percentage("b", 80.0),
        ]);
        let via_set = named.apply_to_matrix(&m, &names()).unwrap();
        let via_pcts = PerturbationPlan::percentages(&[-30.0, 80.0], true).apply_to_matrix(&m);
        assert_eq!(via_set, via_pcts);

        let mut row = [10.0, 1.0];
        PerturbationPlan::percentages(&[-30.0, 80.0], true).apply_to_row(&mut row);
        assert_eq!(row.to_vec(), via_pcts.row(0).to_vec());
    }

    #[test]
    fn plan_clamp_behaviour_matches_set() {
        let m = matrix();
        let set = PerturbationSet::new(vec![Perturbation::absolute("a", -15.0)]).without_clamp();
        let plan = set.compile(&names()).unwrap();
        assert!(!plan.clamps());
        assert_eq!(
            plan.overlay(&m).unwrap().col_override(0).unwrap(),
            &[-5.0, 5.0]
        );
    }
}
