//! The process-wide trained-model store: train once, share everywhere.
//!
//! The paper's deployment picture — and the practitioner studies it
//! draws on — is fleets of analysts asking overlapping what-if
//! questions over the *same* business datasets. Before this module the
//! engine re-trained an identical model per session: N sessions loading
//! the same CSV with the same [`ModelConfig`] paid N trainings and held
//! N copies of the training matrix. [`ModelStore`] deduplicates both
//! costs by content: sessions are keyed by their
//! [`Session::train_fingerprint`] (dataset digest + behavior-relevant
//! configuration), the first session trains while same-key sessions
//! wait on exactly that key, and everyone then shares one
//! [`SharedModel`] (`Arc<TrainedModel>`).
//!
//! Soundness is the same content-addressing argument as the result
//! cache ([`crate::cached`]): training is deterministic in the
//! fingerprinted inputs (thread counts excluded — tree seeds are
//! pre-drawn), so equal keys imply bit-identical models, and the
//! equivalence suite (`tests/model_store.rs`) pins that a shared model
//! answers every analysis bit-identically to a per-session one.
//! Invalidation is by construction: retraining on changed data or
//! configuration produces a new fingerprint; the old entry lingers
//! until unreferenced and over budget, then ages out.

use crate::error::{CoreError, Result};
use crate::model_backend::{ModelConfig, SharedModel, TrainedModel};
use crate::session::Session;
use std::sync::Arc;
use whatif_cache::{SharedStore, StoreStats};

/// Default byte budget for *unreferenced* model residency: 256 MiB.
/// Referenced models are never evicted (sessions hold real `Arc`s), so
/// this bounds warm-model memory after sessions close, not live use.
pub const DEFAULT_MODEL_STORE_CAPACITY_BYTES: usize = 256 << 20;

/// A cheaply-cloneable handle to the shared train-once model store.
/// The server holds one per process; every `Train` request goes
/// through it.
#[derive(Clone)]
pub struct ModelStore {
    inner: Arc<SharedStore<TrainedModel>>,
}

impl Default for ModelStore {
    fn default() -> Self {
        ModelStore::new(DEFAULT_MODEL_STORE_CAPACITY_BYTES)
    }
}

impl ModelStore {
    /// A store with the given byte budget for unreferenced models.
    pub fn new(capacity_bytes: usize) -> ModelStore {
        ModelStore {
            inner: Arc::new(SharedStore::new(capacity_bytes)),
        }
    }

    /// Train the session's model through the store: if a model for this
    /// exact training request (same data digest, KPI, drivers, and
    /// behavior-relevant config) already exists, share it without
    /// training; otherwise train exactly once — concurrent same-key
    /// callers block on that key alone and then share the result.
    /// Returns the model and whether it was shared (`true` = no
    /// training happened on this call).
    ///
    /// # Errors
    /// Exactly those of [`Session::train`].
    pub fn train_or_share(
        &self,
        session: &Session,
        config: &ModelConfig,
    ) -> Result<(SharedModel, bool)> {
        let _stage = whatif_obs::span::stage(whatif_obs::Stage::TrainOrShare);
        if whatif_chaos::fails("store.train") {
            return Err(CoreError::Config(
                "chaos: injected fault at store.train".to_string(),
            ));
        }
        // Extract the training inputs once: the fingerprint hashes the
        // same matrix/targets the builder consumes on a miss, instead
        // of re-extracting them (which would double transient memory on
        // exactly the first-train path for large datasets).
        let (kpi, kind, x, y) = session.training_inputs()?;
        let key = crate::model_backend::training_fingerprint(
            &kpi,
            kind,
            session.drivers(),
            &x,
            &y,
            config,
        )?;
        self.inner.get_or_build(key, move || {
            TrainedModel::fit(&kpi, kind, session.drivers().to_vec(), x, y, config)
        })
    }

    /// Accounting snapshot (hits, trainings, entries, referenced,
    /// bytes, evictions).
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Drop every model no session references, regardless of budget.
    /// Returns how many were dropped.
    pub fn evict_unreferenced(&self) -> u64 {
        self.inner.evict_unreferenced()
    }

    /// Change the byte budget; shrinking evicts unreferenced models
    /// down to the new budget immediately.
    pub fn set_capacity_bytes(&self, capacity_bytes: usize) {
        self.inner.set_capacity_bytes(capacity_bytes);
    }

    /// Configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.inner.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_backend::ModelKind;
    use whatif_frame::{Column, Frame};

    fn session() -> Session {
        let frame = Frame::from_columns(vec![
            Column::from_f64("x1", (0..40).map(|i| (i % 8) as f64).collect()),
            Column::from_f64("x2", (0..40).map(|i| (i % 5) as f64).collect()),
            Column::from_f64(
                "sales",
                (0..40).map(|i| 2.0 * (i % 8) as f64 + 3.0).collect(),
            ),
        ])
        .unwrap();
        Session::new(frame).with_kpi("sales").unwrap()
    }

    #[test]
    fn identical_requests_train_once() {
        let store = ModelStore::default();
        let cfg = ModelConfig::default();
        let (a, shared_a) = store.train_or_share(&session(), &cfg).unwrap();
        let (b, shared_b) = store.train_or_share(&session(), &cfg).unwrap();
        assert!(!shared_a, "first request trains");
        assert!(shared_b, "second request shares");
        assert!(Arc::ptr_eq(&a, &b), "one model, two handles");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.referenced, 1);
    }

    #[test]
    fn different_config_trains_separately() {
        let store = ModelStore::default();
        let (a, _) = store
            .train_or_share(&session(), &ModelConfig::default())
            .unwrap();
        let (b, shared) = store
            .train_or_share(
                &session(),
                &ModelConfig {
                    kind: ModelKind::RandomForest,
                    n_trees: 8,
                    ..ModelConfig::default()
                },
            )
            .unwrap();
        assert!(!shared);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().entries, 2);
    }

    #[test]
    fn trainer_tier_never_shares_across_tiers() {
        use crate::model_backend::TrainerTier;
        // Same data, same config except the trainer tier: the store
        // must miss, never serving a binned (approximate) model to an
        // exact-tier request or vice versa.
        let store = ModelStore::default();
        let cfg = |trainer| ModelConfig {
            kind: ModelKind::RandomForest,
            n_trees: 8,
            trainer,
            ..ModelConfig::default()
        };
        let (a, _) = store
            .train_or_share(&session(), &cfg(TrainerTier::Exact))
            .unwrap();
        let (b, shared) = store
            .train_or_share(&session(), &cfg(TrainerTier::Binned))
            .unwrap();
        assert!(!shared, "tier change is a store miss");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().entries, 2);
        // A bin-count change under the binned tier is also a miss.
        let (c, shared) = store
            .train_or_share(
                &session(),
                &ModelConfig {
                    n_bins: 32,
                    ..cfg(TrainerTier::Binned)
                },
            )
            .unwrap();
        assert!(!shared, "bin-count change is a store miss");
        assert!(!Arc::ptr_eq(&b, &c));
        // But a repeat binned request shares.
        let (_, shared) = store
            .train_or_share(&session(), &cfg(TrainerTier::Binned))
            .unwrap();
        assert!(shared, "identical binned request shares");
    }

    #[test]
    fn train_errors_pass_through_untouched() {
        let store = ModelStore::default();
        let bare =
            Session::new(Frame::from_columns(vec![Column::from_f64("x", vec![1.0, 2.0])]).unwrap());
        // No KPI: same error as Session::train, nothing stored.
        assert!(store
            .train_or_share(&bare, &ModelConfig::default())
            .is_err());
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn unreferenced_models_are_evictable() {
        let store = ModelStore::default();
        {
            let (_model, _) = store
                .train_or_share(&session(), &ModelConfig::default())
                .unwrap();
            assert_eq!(store.evict_unreferenced(), 0, "referenced: kept");
        }
        assert_eq!(store.evict_unreferenced(), 1, "dropped once unheld");
        assert_eq!(store.stats().entries, 0);
    }
}
