//! Deterministic fault injection behind named fault points.
//!
//! Production code tags its failure-prone sites with a stable name —
//! `chaos::inject_io("tcp.read")`, `chaos::fails("engine.dispatch")`,
//! `chaos::chunk("tcp.write", len)` — and tests *arm* those names with
//! seeded, reproducible [`Policy`]s: inject `io::Error`s, clamp I/O
//! transfers into short reads/partial writes, insert delays, force
//! `Err` returns, or panic (to exercise `catch_unwind` isolation).
//! Every registered point is enumerable, so a test matrix can prove
//! that arming *each* site yields a typed error and a surviving
//! connection instead of hoping the hand-crafted hostile inputs
//! covered everything.
//!
//! # Zero cost in release
//!
//! Same discipline as `whatif_obs::lockcheck`: the registry, policies,
//! and counters exist only under `#[cfg(debug_assertions)]`. Release
//! builds compile every site to an inlined constant (`None`, `false`,
//! `len`) — no branch on shared state, no registry, no way to inject.
//! `tests/release_passthrough.rs` pins this: under `--release`, arming
//! a point is a no-op and nothing ever fires.
//!
//! # Determinism
//!
//! A policy fires on a schedule derived from its seed via xorshift64,
//! never from wall-clock time or thread scheduling: the same seed and
//! the same sequence of consults produce the same injections. Points
//! are process-global — arm them only in tests that own the process
//! (or serialize access), and [`disarm_all`] between scenarios.

use std::time::Duration;

/// What an armed fault point injects at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The site fails: I/O sites return an injected `io::Error`
    /// (`ErrorKind::Other`, message `"chaos: injected fault at
    /// <name>"`), non-I/O sites observe `fails() == true` and map it to
    /// their own error type.
    Error,
    /// The site sleeps this long, then proceeds normally.
    Delay(Duration),
    /// I/O sites clamp each transfer to at most this many bytes,
    /// turning every read/write into a short read / partial write.
    ChunkBytes(usize),
    /// The site panics, exercising `catch_unwind` isolation above it.
    Panic,
}

/// A seeded, deterministic arming policy for one fault point.
// In release builds the consulting machinery is compiled out, so the
// fields are written by the builders but never read.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
#[derive(Debug, Clone, Copy)]
pub struct Policy {
    kind: FaultKind,
    /// Fire on roughly one in `one_in` matching consults (1 = every
    /// consult), decided by a seeded xorshift64 draw.
    one_in: u64,
    seed: u64,
    /// Total fires allowed; 0 = unlimited.
    limit: u64,
}

impl Policy {
    fn new(kind: FaultKind) -> Policy {
        Policy {
            kind,
            one_in: 1,
            seed: 0x9E37_79B9_7F4A_7C15,
            limit: 0,
        }
    }

    /// Fail the site (injected `io::Error` / forced `Err`).
    #[must_use]
    pub fn error() -> Policy {
        Policy::new(FaultKind::Error)
    }

    /// Sleep `ms` milliseconds at the site, then proceed.
    #[must_use]
    pub fn delay_ms(ms: u64) -> Policy {
        Policy::new(FaultKind::Delay(Duration::from_millis(ms)))
    }

    /// Clamp each I/O transfer at the site to `n` bytes (`n >= 1`).
    #[must_use]
    pub fn chunk_bytes(n: usize) -> Policy {
        Policy::new(FaultKind::ChunkBytes(n.max(1)))
    }

    /// Panic at the site.
    #[must_use]
    pub fn panic() -> Policy {
        Policy::new(FaultKind::Panic)
    }

    /// Fire on roughly one in `n` matching consults instead of every
    /// one (seeded draw; `n <= 1` restores always-fire).
    #[must_use]
    pub fn one_in(mut self, n: u64) -> Policy {
        self.one_in = n.max(1);
        self
    }

    /// Reseed the fire-schedule PRNG.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Policy {
        self.seed = seed;
        self
    }

    /// Cap the total number of fires (0 = unlimited).
    #[must_use]
    pub fn limit(mut self, n: u64) -> Policy {
        self.limit = n;
        self
    }
}

/// Run `f` at a tagged fault point: when the point is armed to fail,
/// return the injected `io::Error` without calling `f`; when armed to
/// delay, sleep first; otherwise (and always in release builds) just
/// run `f`.
///
/// # Errors
/// The injected error when armed, else whatever `f` returns.
pub fn point<T>(name: &'static str, f: impl FnOnce() -> std::io::Result<T>) -> std::io::Result<T> {
    if let Some(e) = inject_io(name) {
        return Err(e);
    }
    f()
}

#[cfg(debug_assertions)]
mod imp {
    use super::{FaultKind, Policy};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};

    /// Process-wide injections fired, across every point.
    static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);

    /// One registered fault point: its arming (if any) and counters.
    #[derive(Debug, Default)]
    struct Point {
        armed: Option<Armed>,
        /// Consults that observed an injection.
        fires: u64,
    }

    #[derive(Debug)]
    struct Armed {
        policy: Policy,
        /// xorshift64 state for the fire schedule.
        rng: u64,
        fired: u64,
    }

    fn registry() -> &'static Mutex<BTreeMap<&'static str, Point>> {
        static REGISTRY: Mutex<BTreeMap<&'static str, Point>> = Mutex::new(BTreeMap::new());
        &REGISTRY
    }

    /// splitmix64 finalizer: spreads adjacent seeds into unrelated
    /// xorshift start states (`seed | 1` would alias 42 and 43).
    fn mix(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z | 1 // xorshift must not start at 0
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Register `name` and, when it is armed with a kind `wants`
    /// accepts, advance the fire schedule; `Some(kind)` means the site
    /// must inject now. Kinds the site cannot express (e.g. a chunk
    /// policy consulted through `fails`) neither fire nor advance the
    /// schedule.
    fn consult(name: &'static str, wants: impl Fn(FaultKind) -> bool) -> Option<FaultKind> {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let point = reg.entry(name).or_default();
        let armed = point.armed.as_mut()?;
        if !wants(armed.policy.kind) {
            return None;
        }
        if armed.policy.limit > 0 && armed.fired >= armed.policy.limit {
            return None;
        }
        let fires = armed.policy.one_in <= 1
            || xorshift(&mut armed.rng).is_multiple_of(armed.policy.one_in);
        if !fires {
            return None;
        }
        armed.fired += 1;
        let kind = armed.policy.kind;
        point.fires += 1;
        INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }

    /// Arm `name` with `policy`. Replaces any previous arming and
    /// resets its schedule. No-op in release builds.
    pub fn arm(name: &'static str, policy: Policy) {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.entry(name).or_default().armed = Some(Armed {
            policy,
            rng: mix(policy.seed),
            fired: 0,
        });
    }

    /// Disarm `name` (the point stays registered).
    pub fn disarm(name: &'static str) {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(point) = reg.get_mut(name) {
            point.armed = None;
        }
    }

    /// Disarm every point (registrations and counters are kept).
    pub fn disarm_all() {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        for point in reg.values_mut() {
            point.armed = None;
        }
    }

    /// Every fault-point name consulted or armed so far, sorted.
    /// Always empty in release builds.
    pub fn registered() -> Vec<String> {
        let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.keys().map(|k| (*k).to_string()).collect()
    }

    /// Injections fired at `name` over the process lifetime.
    pub fn fires(name: &str) -> u64 {
        let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.get(name).map_or(0, |p| p.fires)
    }

    /// Injections fired across every point over the process lifetime.
    /// Always 0 in release builds.
    pub fn injected_total() -> u64 {
        INJECTED_TOTAL.load(Ordering::Relaxed)
    }

    fn execute_simple(name: &'static str, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Error => true,
            FaultKind::Delay(d) => {
                std::thread::sleep(d);
                false
            }
            FaultKind::Panic => panic!("chaos: injected panic at {name}"),
            FaultKind::ChunkBytes(_) => false, // filtered out by `wants`
        }
    }

    /// Consult an I/O site: `Some(io::Error)` when armed to fail;
    /// sleeps first when armed to delay; panics when armed to panic.
    pub fn inject_io(name: &'static str) -> Option<std::io::Error> {
        let kind = consult(name, |k| !matches!(k, FaultKind::ChunkBytes(_)))?;
        execute_simple(name, kind)
            .then(|| std::io::Error::other(format!("chaos: injected fault at {name}")))
    }

    /// Consult a non-I/O site: `true` when the site must return its own
    /// `Err`; sleeps first when armed to delay; panics when armed to
    /// panic.
    pub fn fails(name: &'static str) -> bool {
        match consult(name, |k| !matches!(k, FaultKind::ChunkBytes(_))) {
            Some(kind) => execute_simple(name, kind),
            None => false,
        }
    }

    /// Consult an I/O site about transfer size: the clamped length when
    /// armed with [`Policy::chunk_bytes`], else `len` unchanged. Never
    /// clamps to 0 (a zero-length read means EOF to `std::io`).
    pub fn chunk(name: &'static str, len: usize) -> usize {
        match consult(name, |k| matches!(k, FaultKind::ChunkBytes(_))) {
            Some(FaultKind::ChunkBytes(n)) => len.min(n.max(1)),
            _ => len,
        }
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use super::Policy;

    /// No-op in release builds: there is no registry to arm.
    #[inline(always)]
    pub fn arm(_name: &'static str, _policy: Policy) {}

    /// No-op in release builds.
    #[inline(always)]
    pub fn disarm(_name: &'static str) {}

    /// No-op in release builds.
    #[inline(always)]
    pub fn disarm_all() {}

    /// Always empty in release builds: points compile to passthrough
    /// and never register.
    #[inline(always)]
    pub fn registered() -> Vec<String> {
        Vec::new()
    }

    /// Always 0 in release builds.
    #[inline(always)]
    pub fn fires(_name: &str) -> u64 {
        0
    }

    /// Always 0 in release builds.
    #[inline(always)]
    pub fn injected_total() -> u64 {
        0
    }

    /// Always `None` in release builds.
    #[inline(always)]
    pub fn inject_io(_name: &'static str) -> Option<std::io::Error> {
        None
    }

    /// Always `false` in release builds.
    #[inline(always)]
    pub fn fails(_name: &'static str) -> bool {
        false
    }

    /// Always `len` in release builds.
    #[inline(always)]
    pub fn chunk(_name: &'static str, len: usize) -> usize {
        len
    }
}

pub use imp::{
    arm, chunk, disarm, disarm_all, fails, fires, inject_io, injected_total, registered,
};

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Points are process-global; tests in this binary serialize their
    /// armed sections through this lock.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_points_pass_through_and_register() {
        let _guard = serial();
        assert!(inject_io("test.unarmed").is_none());
        assert!(!fails("test.unarmed"));
        assert_eq!(chunk("test.unarmed", 77), 77);
        assert!(registered().contains(&"test.unarmed".to_string()));
        assert_eq!(fires("test.unarmed"), 0);
    }

    #[test]
    fn error_policies_fire_and_count() {
        let _guard = serial();
        let before = injected_total();
        arm("test.err", Policy::error());
        let e = inject_io("test.err").expect("armed point must fire");
        assert!(e.to_string().contains("test.err"));
        assert!(fails("test.err"));
        assert_eq!(fires("test.err"), 2);
        assert!(injected_total() >= before + 2);
        disarm("test.err");
        assert!(inject_io("test.err").is_none());
    }

    #[test]
    fn limits_bound_total_fires() {
        let _guard = serial();
        arm("test.limited", Policy::error().limit(2));
        assert!(fails("test.limited"));
        assert!(fails("test.limited"));
        assert!(!fails("test.limited"), "limit reached");
        disarm("test.limited");
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let _guard = serial();
        let run = |seed: u64| -> Vec<bool> {
            arm("test.seeded", Policy::error().one_in(3).seed(seed));
            let fired = (0..32).map(|_| fails("test.seeded")).collect();
            disarm("test.seeded");
            fired
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|&f| f), "one-in-3 fires sometimes");
        assert!(a.iter().any(|&f| !f), "...but not always");
    }

    #[test]
    fn chunk_policies_clamp_io_but_never_to_zero() {
        let _guard = serial();
        arm("test.chunky", Policy::chunk_bytes(1));
        assert_eq!(chunk("test.chunky", 4096), 1);
        assert_eq!(chunk("test.chunky", 1), 1);
        // A chunk arming never turns error/fail sites on.
        assert!(inject_io("test.chunky").is_none());
        assert!(!fails("test.chunky"));
        disarm("test.chunky");
        assert_eq!(chunk("test.chunky", 4096), 4096);
    }

    #[test]
    fn panic_policies_panic_at_the_site() {
        let _guard = serial();
        arm("test.boom", Policy::panic().limit(1));
        let caught = std::panic::catch_unwind(|| fails("test.boom"));
        disarm("test.boom");
        let payload = caught.expect_err("armed panic point must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("test.boom"), "{message}");
    }

    #[test]
    fn point_wraps_a_closure_site() {
        let _guard = serial();
        assert_eq!(point("test.point", || Ok(7)).unwrap(), 7);
        arm("test.point", Policy::error());
        assert!(point("test.point", || Ok(7)).is_err());
        disarm("test.point");
    }

    #[test]
    fn delay_policies_sleep_then_proceed() {
        let _guard = serial();
        arm("test.slow", Policy::delay_ms(1).limit(1));
        assert!(!fails("test.slow"), "delay proceeds after sleeping");
        assert_eq!(fires("test.slow"), 1);
        disarm("test.slow");
    }
}
