//! Pins the release contract: fault points compile to passthrough and
//! cannot inject, no matter what tests arm. Run with
//! `cargo test --release -p whatif-chaos` (CI does).

#[cfg(not(debug_assertions))]
mod release {
    use whatif_chaos as chaos;

    #[test]
    fn arming_is_inert_in_release_builds() {
        chaos::arm("release.err", chaos::Policy::error());
        chaos::arm("release.chunk", chaos::Policy::chunk_bytes(1));
        chaos::arm("release.boom", chaos::Policy::panic());

        assert!(chaos::inject_io("release.err").is_none());
        assert!(!chaos::fails("release.err"));
        assert!(!chaos::fails("release.boom"), "no panic, no fire");
        assert_eq!(chaos::chunk("release.chunk", 4096), 4096);
        assert_eq!(chaos::point("release.err", || Ok(1)).unwrap(), 1);

        assert_eq!(chaos::injected_total(), 0);
        assert_eq!(chaos::fires("release.err"), 0);
        assert!(
            chaos::registered().is_empty(),
            "release builds keep no registry at all"
        );
    }
}

#[cfg(debug_assertions)]
mod debug {
    use whatif_chaos as chaos;

    /// The debug half of the contract, so this file always asserts
    /// something: the same arming that is inert in release does inject
    /// here.
    #[test]
    fn arming_injects_in_debug_builds() {
        chaos::arm("debug.err", chaos::Policy::error());
        assert!(chaos::inject_io("debug.err").is_some());
        assert!(chaos::injected_total() > 0);
        chaos::disarm("debug.err");
    }
}
