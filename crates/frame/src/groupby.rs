//! Group-by aggregation — the "slicing and dicing" of the paper's intro
//! (e.g. *customer retention across quarters*, *sales per media channel*).

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::Frame;
use crate::value::Value;
use std::collections::HashMap;

/// Aggregation functions available in [`Frame::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Number of non-null values.
    Count,
    /// Sum of values (numeric).
    Sum,
    /// Arithmetic mean (numeric).
    Mean,
    /// Minimum (numeric).
    Min,
    /// Maximum (numeric).
    Max,
    /// Sample standard deviation, `n-1` denominator (numeric).
    Std,
    /// First non-null value in input order.
    First,
}

impl Aggregation {
    /// Default output-column suffix, e.g. `sales_sum`.
    pub fn suffix(self) -> &'static str {
        match self {
            Aggregation::Count => "count",
            Aggregation::Sum => "sum",
            Aggregation::Mean => "mean",
            Aggregation::Min => "min",
            Aggregation::Max => "max",
            Aggregation::Std => "std",
            Aggregation::First => "first",
        }
    }
}

/// One requested aggregation: which column, which function, and the output
/// name (defaults to `"{column}_{suffix}"`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Input column to aggregate.
    pub column: String,
    /// Aggregation function.
    pub agg: Aggregation,
    /// Output column name; `None` selects the default.
    pub alias: Option<String>,
}

impl AggSpec {
    /// Aggregate `column` with `agg`, default output name.
    pub fn new(column: impl Into<String>, agg: Aggregation) -> Self {
        AggSpec {
            column: column.into(),
            agg,
            alias: None,
        }
    }

    /// Set an explicit output name.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = Some(alias.into());
        self
    }

    fn output_name(&self) -> String {
        self.alias
            .clone()
            .unwrap_or_else(|| format!("{}_{}", self.column, self.agg.suffix()))
    }
}

/// Hashable group-key atom. Floats group by bit pattern (so `-0.0` and
/// `0.0` are distinct groups, and identical NaN payloads group together).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyAtom {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(String),
}

impl KeyAtom {
    fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Null => KeyAtom::Null,
            Value::Bool(b) => KeyAtom::Bool(*b),
            Value::Int(x) => KeyAtom::Int(*x),
            Value::Float(x) => KeyAtom::Float(x.to_bits()),
            Value::Str(s) => KeyAtom::Str(s.clone()),
        }
    }
}

impl Frame {
    /// Group rows by `keys` and compute `aggs` per group.
    ///
    /// The output has one row per distinct key combination, ordered by
    /// first appearance, with the key columns first and one column per
    /// aggregation after.
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`] for unknown columns;
    /// [`FrameError::TypeMismatch`] for numeric aggregations over strings.
    pub fn group_by(&self, keys: &[&str], aggs: &[AggSpec]) -> Result<Frame> {
        for &k in keys {
            if !self.has_column(k) {
                return Err(FrameError::UnknownColumn(k.to_owned()));
            }
        }
        if keys.is_empty() {
            return Err(FrameError::InvalidOperation(
                "group_by requires at least one key column".to_owned(),
            ));
        }
        for spec in aggs {
            if !self.has_column(&spec.column) {
                return Err(FrameError::UnknownColumn(spec.column.clone()));
            }
        }

        // Assign each row a group id, keyed by the tuple of key atoms.
        let key_cols: Vec<&Column> = keys
            .iter()
            .map(|&k| self.column(k).expect("validated above"))
            .collect();
        let mut group_of: HashMap<Vec<KeyAtom>, usize> = HashMap::new();
        let mut row_groups: Vec<usize> = Vec::with_capacity(self.n_rows());
        let mut representatives: Vec<usize> = Vec::new();
        for i in 0..self.n_rows() {
            let key: Vec<KeyAtom> = key_cols
                .iter()
                .map(|c| KeyAtom::from_value(&c.get(i).expect("row in range")))
                .collect();
            let next_id = representatives.len();
            let gid = *group_of.entry(key).or_insert_with(|| {
                representatives.push(i);
                next_id
            });
            row_groups.push(gid);
        }
        let n_groups = representatives.len();

        let mut out = Frame::new();
        for (&k, col) in keys.iter().zip(&key_cols) {
            let _ = k;
            out.push_column(col.take(&representatives)?)?;
        }

        for spec in aggs {
            let col = self.column(&spec.column)?;
            let agg_col = aggregate_column(col, &row_groups, n_groups, spec)?;
            out.push_column(agg_col)?;
        }
        Ok(out)
    }
}

fn aggregate_column(
    col: &Column,
    row_groups: &[usize],
    n_groups: usize,
    spec: &AggSpec,
) -> Result<Column> {
    let name = spec.output_name();
    match spec.agg {
        Aggregation::Count => {
            let mut counts = vec![0i64; n_groups];
            for (i, &g) in row_groups.iter().enumerate() {
                if col.is_valid(i) {
                    counts[g] += 1;
                }
            }
            Ok(Column::from_i64(name, counts))
        }
        Aggregation::First => {
            let mut firsts: Vec<Value> = vec![Value::Null; n_groups];
            for (i, &g) in row_groups.iter().enumerate() {
                if firsts[g].is_null() && col.is_valid(i) {
                    firsts[g] = col.get(i)?;
                }
            }
            Column::from_values(name, &firsts)
        }
        Aggregation::Sum
        | Aggregation::Mean
        | Aggregation::Min
        | Aggregation::Max
        | Aggregation::Std => {
            let vals = col.to_f64_lossy().map_err(|_| FrameError::TypeMismatch {
                column: col.name().to_owned(),
                expected: "numeric",
                actual: col.dtype().name(),
            })?;
            let mut acc: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
            for (i, &g) in row_groups.iter().enumerate() {
                if col.is_valid(i) {
                    acc[g].push(vals[i]);
                }
            }
            let out: Vec<Option<f64>> = acc
                .iter()
                .map(|xs| {
                    if xs.is_empty() {
                        return None;
                    }
                    Some(match spec.agg {
                        Aggregation::Sum => xs.iter().sum(),
                        Aggregation::Mean => xs.iter().sum::<f64>() / xs.len() as f64,
                        Aggregation::Min => xs.iter().copied().fold(f64::INFINITY, f64::min),
                        Aggregation::Max => xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        Aggregation::Std => {
                            if xs.len() < 2 {
                                0.0
                            } else {
                                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                                let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
                                (ss / (xs.len() - 1) as f64).sqrt()
                            }
                        }
                        _ => unreachable!("numeric aggregations only"),
                    })
                })
                .collect();
            Ok(Column::from_f64_opt(name, out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::from_columns(vec![
            Column::from_str_values("channel", vec!["tv", "radio", "tv", "radio", "tv"]),
            Column::from_f64("sales", vec![10.0, 5.0, 20.0, 7.0, 30.0]),
            Column::from_i64_opt("leads", vec![Some(1), Some(2), None, Some(4), Some(5)]),
        ])
        .unwrap()
    }

    #[test]
    fn groups_ordered_by_first_appearance() {
        let g = frame()
            .group_by(&["channel"], &[AggSpec::new("sales", Aggregation::Sum)])
            .unwrap();
        assert_eq!(
            g.column("channel").unwrap().str_values().unwrap(),
            &["tv".to_owned(), "radio".to_owned()]
        );
        assert_eq!(
            g.column("sales_sum").unwrap().f64_values().unwrap(),
            &[60.0, 12.0]
        );
    }

    #[test]
    fn mean_min_max_std() {
        let g = frame()
            .group_by(
                &["channel"],
                &[
                    AggSpec::new("sales", Aggregation::Mean),
                    AggSpec::new("sales", Aggregation::Min),
                    AggSpec::new("sales", Aggregation::Max),
                    AggSpec::new("sales", Aggregation::Std),
                ],
            )
            .unwrap();
        assert_eq!(
            g.column("sales_mean").unwrap().f64_values().unwrap(),
            &[20.0, 6.0]
        );
        assert_eq!(
            g.column("sales_min").unwrap().f64_values().unwrap(),
            &[10.0, 5.0]
        );
        assert_eq!(
            g.column("sales_max").unwrap().f64_values().unwrap(),
            &[30.0, 7.0]
        );
        let std_tv = g.column("sales_std").unwrap().f64_values().unwrap()[0];
        assert!((std_tv - 10.0).abs() < 1e-12);
    }

    #[test]
    fn count_skips_nulls() {
        let g = frame()
            .group_by(&["channel"], &[AggSpec::new("leads", Aggregation::Count)])
            .unwrap();
        assert_eq!(
            g.column("leads_count").unwrap().i64_values().unwrap(),
            &[2, 2]
        );
    }

    #[test]
    fn first_takes_first_non_null() {
        let g = frame()
            .group_by(&["channel"], &[AggSpec::new("leads", Aggregation::First)])
            .unwrap();
        assert_eq!(
            g.column("leads_first").unwrap().i64_values().unwrap(),
            &[1, 2]
        );
    }

    #[test]
    fn alias_controls_output_name() {
        let g = frame()
            .group_by(
                &["channel"],
                &[AggSpec::new("sales", Aggregation::Sum).with_alias("total")],
            )
            .unwrap();
        assert!(g.has_column("total"));
    }

    #[test]
    fn multi_key_grouping() {
        let f = Frame::from_columns(vec![
            Column::from_str_values("a", vec!["x", "x", "y", "x"]),
            Column::from_i64("b", vec![1, 1, 1, 2]),
            Column::from_f64("v", vec![1.0, 2.0, 3.0, 4.0]),
        ])
        .unwrap();
        let g = f
            .group_by(&["a", "b"], &[AggSpec::new("v", Aggregation::Sum)])
            .unwrap();
        assert_eq!(g.n_rows(), 3);
        assert_eq!(
            g.column("v_sum").unwrap().f64_values().unwrap(),
            &[3.0, 3.0, 4.0]
        );
    }

    #[test]
    fn null_keys_form_their_own_group() {
        let f = Frame::from_columns(vec![
            Column::from_i64_opt("k", vec![Some(1), None, None]),
            Column::from_f64("v", vec![1.0, 2.0, 3.0]),
        ])
        .unwrap();
        let g = f
            .group_by(&["k"], &[AggSpec::new("v", Aggregation::Sum)])
            .unwrap();
        assert_eq!(g.n_rows(), 2);
        assert_eq!(
            g.column("v_sum").unwrap().f64_values().unwrap(),
            &[1.0, 5.0]
        );
    }

    #[test]
    fn numeric_agg_on_string_errors() {
        let err = frame().group_by(&["channel"], &[AggSpec::new("channel", Aggregation::Sum)]);
        assert!(matches!(err, Err(FrameError::TypeMismatch { .. })));
    }

    #[test]
    fn unknown_columns_error() {
        assert!(frame().group_by(&["ghost"], &[]).is_err());
        assert!(frame()
            .group_by(&["channel"], &[AggSpec::new("ghost", Aggregation::Sum)])
            .is_err());
        assert!(frame().group_by(&[], &[]).is_err());
    }

    #[test]
    fn empty_group_aggregate_is_null() {
        // A group whose aggregated column is entirely null yields null.
        let f = Frame::from_columns(vec![
            Column::from_str_values("k", vec!["a", "b"]),
            Column::from_f64_opt("v", vec![Some(1.0), None]),
        ])
        .unwrap();
        let g = f
            .group_by(&["k"], &[AggSpec::new("v", Aggregation::Mean)])
            .unwrap();
        assert!(g.column("v_mean").unwrap().is_valid(0));
        assert!(!g.column("v_mean").unwrap().is_valid(1));
    }

    #[test]
    fn std_of_single_element_group_is_zero() {
        let f = Frame::from_columns(vec![
            Column::from_str_values("k", vec!["a"]),
            Column::from_f64("v", vec![5.0]),
        ])
        .unwrap();
        let g = f
            .group_by(&["k"], &[AggSpec::new("v", Aggregation::Std)])
            .unwrap();
        assert_eq!(g.column("v_std").unwrap().f64_values().unwrap(), &[0.0]);
    }
}
