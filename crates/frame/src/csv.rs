//! CSV reading and writing with type inference.
//!
//! Supports the RFC-4180 essentials the paper's business datasets need:
//! quoted fields, embedded commas/newlines/quotes, `\r\n` line endings,
//! and a header row. Column types are inferred in priority order
//! `i64 → f64 → bool → str`; empty cells become nulls.

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::Frame;
use crate::value::Value;
use std::path::Path;

/// Parse CSV text (with a header row) into a [`Frame`].
///
/// # Errors
/// [`FrameError::Csv`] on malformed input (ragged rows, unclosed quotes).
pub fn parse_csv(text: &str) -> Result<Frame> {
    let records = tokenize(text)?;
    let mut iter = records.into_iter();
    let header = iter
        .next()
        .ok_or(FrameError::Csv {
            line: 1,
            message: "empty input: missing header row".to_owned(),
        })?
        .0;
    let n_cols = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    for (record, line) in iter {
        if record.len() != n_cols {
            return Err(FrameError::Csv {
                line,
                message: format!("expected {n_cols} fields, found {}", record.len()),
            });
        }
        for (col, field) in cells.iter_mut().zip(record) {
            col.push(field);
        }
    }
    let mut frame = Frame::new();
    for (name, raw) in header.into_iter().zip(cells) {
        frame.push_column(infer_column(&name, &raw)?)?;
    }
    Ok(frame)
}

/// Read and parse a CSV file.
///
/// # Errors
/// [`FrameError::Csv`] on I/O or parse failure.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Frame> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| FrameError::Csv {
        line: 0,
        message: format!("cannot read {}: {e}", path.as_ref().display()),
    })?;
    parse_csv(&text)
}

/// Serialize a frame to CSV text (header + rows, `\n` line endings).
pub fn write_csv(frame: &Frame) -> String {
    let mut out = String::new();
    let names = frame.column_names();
    out.push_str(
        &names
            .iter()
            .map(|n| escape_field(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for i in 0..frame.n_rows() {
        let row: Vec<String> = frame
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(i).expect("row in range");
                match v {
                    Value::Null => String::new(),
                    Value::Str(s) => escape_field(&s),
                    other => other.to_string(),
                }
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Write a frame to a CSV file.
///
/// # Errors
/// [`FrameError::Csv`] on I/O failure.
pub fn write_csv_file(frame: &Frame, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path.as_ref(), write_csv(frame)).map_err(|e| FrameError::Csv {
        line: 0,
        message: format!("cannot write {}: {e}", path.as_ref().display()),
    })
}

fn escape_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Tokenize into records, tracking the 1-based starting line of each record.
fn tokenize(text: &str) -> Result<Vec<(Vec<String>, usize)>> {
    let mut records: Vec<(Vec<String>, usize)> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut record_line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any_char = false;

    while let Some(c) = chars.next() {
        any_char = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    return Err(FrameError::Csv {
                        line,
                        message: "quote inside unquoted field".to_owned(),
                    });
                }
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                record.push(std::mem::take(&mut field));
                records.push((std::mem::take(&mut record), record_line));
                line += 1;
                record_line = line;
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push((std::mem::take(&mut record), record_line));
                line += 1;
                record_line = line;
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(FrameError::Csv {
            line,
            message: "unclosed quoted field".to_owned(),
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push((record, record_line));
    }
    if !any_char {
        return Err(FrameError::Csv {
            line: 1,
            message: "empty input".to_owned(),
        });
    }
    // Drop trailing fully-empty records produced by blank lines at EOF.
    while let Some((last, _)) = records.last() {
        if last.len() == 1 && last[0].is_empty() && records.len() > 1 {
            records.pop();
        } else {
            break;
        }
    }
    Ok(records)
}

fn infer_column(name: &str, raw: &[String]) -> Result<Column> {
    let non_empty = || raw.iter().filter(|s| !s.is_empty());
    let all_int = non_empty().count() > 0 && non_empty().all(|s| s.trim().parse::<i64>().is_ok());
    if all_int {
        let values: Vec<Value> = raw
            .iter()
            .map(|s| {
                if s.is_empty() {
                    Value::Null
                } else {
                    Value::Int(s.trim().parse::<i64>().expect("checked above"))
                }
            })
            .collect();
        return Column::from_values(name, &values);
    }
    let all_float = non_empty().count() > 0 && non_empty().all(|s| s.trim().parse::<f64>().is_ok());
    if all_float {
        let values: Vec<Value> = raw
            .iter()
            .map(|s| {
                if s.is_empty() {
                    Value::Null
                } else {
                    Value::Float(s.trim().parse::<f64>().expect("checked above"))
                }
            })
            .collect();
        return Column::from_values(name, &values);
    }
    let parse_bool = |s: &str| match s.trim().to_ascii_lowercase().as_str() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    };
    let all_bool = non_empty().count() > 0 && non_empty().all(|s| parse_bool(s).is_some());
    if all_bool {
        let values: Vec<Value> = raw
            .iter()
            .map(|s| {
                if s.is_empty() {
                    Value::Null
                } else {
                    Value::Bool(parse_bool(s).expect("checked above"))
                }
            })
            .collect();
        return Column::from_values(name, &values);
    }
    let values: Vec<Value> = raw
        .iter()
        .map(|s| {
            if s.is_empty() {
                Value::Null
            } else {
                Value::Str(s.clone())
            }
        })
        .collect();
    Column::from_values(name, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DType;

    #[test]
    fn parses_simple_csv_with_inference() {
        let f = parse_csv("a,b,c,d\n1,1.5,true,hello\n2,2.5,false,world\n").unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(
            f.dtypes(),
            vec![DType::Int, DType::Float, DType::Bool, DType::Str]
        );
        assert_eq!(f.column("a").unwrap().i64_values().unwrap(), &[1, 2]);
        assert_eq!(f.column("b").unwrap().f64_values().unwrap(), &[1.5, 2.5]);
    }

    #[test]
    fn int_column_with_floats_promotes() {
        let f = parse_csv("x\n1\n2.5\n").unwrap();
        assert_eq!(f.column("x").unwrap().dtype(), DType::Float);
    }

    #[test]
    fn empty_cells_become_nulls() {
        let f = parse_csv("x,y\n1,\n,b\n").unwrap();
        assert_eq!(f.column("x").unwrap().null_count(), 1);
        assert_eq!(f.column("y").unwrap().null_count(), 1);
        assert_eq!(f.column("y").unwrap().dtype(), DType::Str);
    }

    #[test]
    fn quoted_fields_with_commas_newlines_quotes() {
        let f = parse_csv(
            "name,note\nalice,\"hi, there\"\nbob,\"line1\nline2\"\ncarl,\"say \"\"hi\"\"\"\n",
        )
        .unwrap();
        assert_eq!(f.n_rows(), 3);
        let notes = f.column("note").unwrap().str_values().unwrap().to_vec();
        assert_eq!(notes[0], "hi, there");
        assert_eq!(notes[1], "line1\nline2");
        assert_eq!(notes[2], "say \"hi\"");
    }

    #[test]
    fn crlf_line_endings() {
        let f = parse_csv("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.column("b").unwrap().i64_values().unwrap(), &[2, 4]);
    }

    #[test]
    fn missing_final_newline_ok() {
        let f = parse_csv("a\n1\n2").unwrap();
        assert_eq!(f.n_rows(), 2);
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let err = parse_csv("a,b\n1,2\n3\n").unwrap_err();
        match err {
            FrameError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unclosed_quote_errors() {
        assert!(matches!(
            parse_csv("a\n\"oops\n"),
            Err(FrameError::Csv { .. })
        ));
    }

    #[test]
    fn stray_quote_errors() {
        assert!(matches!(
            parse_csv("a\nfo\"o\n"),
            Err(FrameError::Csv { .. })
        ));
    }

    #[test]
    fn empty_input_errors() {
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn header_only_gives_empty_frame() {
        let f = parse_csv("a,b\n").unwrap();
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.n_cols(), 2);
    }

    #[test]
    fn roundtrip_preserves_data() {
        let text = "i,f,b,s\n1,0.5,true,plain\n2,1.5,false,\"with, comma\"\n";
        let f = parse_csv(text).unwrap();
        let out = write_csv(&f);
        let f2 = parse_csv(&out).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn roundtrip_with_nulls() {
        let text = "x,s\n1,\n,b\n";
        let f = parse_csv(text).unwrap();
        let f2 = parse_csv(&write_csv(&f)).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("whatif_frame_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let f = parse_csv("a,b\n1,x\n2,y\n").unwrap();
        write_csv_file(&f, &path).unwrap();
        let f2 = read_csv(&path).unwrap();
        assert_eq!(f, f2);
        assert!(read_csv(dir.join("missing.csv")).is_err());
    }

    #[test]
    fn all_empty_column_is_float_nulls() {
        let f = parse_csv("x,y\n,1\n,2\n").unwrap();
        assert_eq!(f.column("x").unwrap().dtype(), DType::Float);
        assert_eq!(f.column("x").unwrap().null_count(), 2);
    }

    #[test]
    fn bool_case_insensitive() {
        let f = parse_csv("b\nTRUE\nFalse\n").unwrap();
        assert_eq!(f.column("b").unwrap().dtype(), DType::Bool);
    }
}
