//! The [`Frame`] table type.

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::expr::Expr;
use crate::value::{DType, Value};

/// An in-memory table: an ordered collection of equal-length named columns.
///
/// `Frame` is the unit of data every SystemD view operates on — the table
/// view (Figure 2 B), the perturbation engine, and model training all
/// consume frames.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    columns: Vec<Column>,
    n_rows: usize,
}

impl Frame {
    /// An empty frame with no columns and no rows.
    pub fn new() -> Self {
        Frame::default()
    }

    /// Build a frame from columns, validating equal lengths and unique names.
    ///
    /// # Errors
    /// [`FrameError::DuplicateColumn`] or [`FrameError::LengthMismatch`].
    pub fn from_columns(columns: Vec<Column>) -> Result<Self> {
        let mut frame = Frame::new();
        for c in columns {
            frame.push_column(c)?;
        }
        Ok(frame)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True when the frame has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// Dtypes in declaration order.
    pub fn dtypes(&self) -> Vec<DType> {
        self.columns.iter().map(Column::dtype).collect()
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Whether a column exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.column_index(name).is_some()
    }

    /// Borrow a column by name.
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`].
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.column_index(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| FrameError::UnknownColumn(name.to_owned()))
    }

    /// Mutably borrow a column by name.
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`].
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        let i = self
            .column_index(name)
            .ok_or_else(|| FrameError::UnknownColumn(name.to_owned()))?;
        Ok(&mut self.columns[i])
    }

    /// Append a column.
    ///
    /// The first column fixes the frame's row count; later columns must
    /// match it.
    ///
    /// # Errors
    /// [`FrameError::DuplicateColumn`] or [`FrameError::LengthMismatch`].
    pub fn push_column(&mut self, column: Column) -> Result<()> {
        if self.has_column(column.name()) {
            return Err(FrameError::DuplicateColumn(column.name().to_owned()));
        }
        if self.columns.is_empty() {
            self.n_rows = column.len();
        } else if column.len() != self.n_rows {
            return Err(FrameError::LengthMismatch {
                column: column.name().to_owned(),
                expected: self.n_rows,
                actual: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Replace an existing column (same name) or append a new one.
    ///
    /// # Errors
    /// [`FrameError::LengthMismatch`] if the length disagrees.
    pub fn set_column(&mut self, column: Column) -> Result<()> {
        match self.column_index(column.name()) {
            Some(i) => {
                if !self.columns.is_empty() && column.len() != self.n_rows {
                    return Err(FrameError::LengthMismatch {
                        column: column.name().to_owned(),
                        expected: self.n_rows,
                        actual: column.len(),
                    });
                }
                self.columns[i] = column;
                Ok(())
            }
            None => self.push_column(column),
        }
    }

    /// Remove and return a column.
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`].
    pub fn remove_column(&mut self, name: &str) -> Result<Column> {
        let i = self
            .column_index(name)
            .ok_or_else(|| FrameError::UnknownColumn(name.to_owned()))?;
        let col = self.columns.remove(i);
        if self.columns.is_empty() {
            self.n_rows = 0;
        }
        Ok(col)
    }

    /// Rename a column.
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`] / [`FrameError::DuplicateColumn`].
    pub fn rename_column(&mut self, old: &str, new: &str) -> Result<()> {
        if old != new && self.has_column(new) {
            return Err(FrameError::DuplicateColumn(new.to_owned()));
        }
        self.column_mut(old)?.set_name(new);
        Ok(())
    }

    /// New frame containing only the named columns, in the given order.
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`].
    pub fn select(&self, names: &[&str]) -> Result<Frame> {
        let mut out = Frame::new();
        for &n in names {
            out.push_column(self.column(n)?.clone())?;
        }
        // A projection of zero columns still describes the same rows.
        if names.is_empty() {
            out.n_rows = self.n_rows;
        }
        Ok(out)
    }

    /// New frame without the named columns (unknown names are errors).
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`].
    pub fn drop_columns(&self, names: &[&str]) -> Result<Frame> {
        for &n in names {
            if !self.has_column(n) {
                return Err(FrameError::UnknownColumn(n.to_owned()));
            }
        }
        let keep: Vec<&str> = self
            .columns
            .iter()
            .map(Column::name)
            .filter(|n| !names.contains(n))
            .collect();
        self.select(&keep)
    }

    /// Fetch a row as `(name, value)` pairs.
    ///
    /// # Errors
    /// [`FrameError::RowOutOfBounds`].
    pub fn row(&self, i: usize) -> Result<Vec<(String, Value)>> {
        if i >= self.n_rows {
            return Err(FrameError::RowOutOfBounds {
                row: i,
                n_rows: self.n_rows,
            });
        }
        self.columns
            .iter()
            .map(|c| Ok((c.name().to_owned(), c.get(i)?)))
            .collect()
    }

    /// Select rows by index across all columns (repeats/reorders allowed).
    ///
    /// # Errors
    /// [`FrameError::RowOutOfBounds`].
    pub fn take(&self, indices: &[usize]) -> Result<Frame> {
        let mut out = Frame::new();
        for c in &self.columns {
            out.push_column(c.take(indices)?)?;
        }
        if self.columns.is_empty() {
            out.n_rows = 0;
        }
        Ok(out)
    }

    /// Keep rows where the mask is true.
    ///
    /// # Errors
    /// [`FrameError::LengthMismatch`] on mask length.
    pub fn filter(&self, mask: &[bool]) -> Result<Frame> {
        if mask.len() != self.n_rows {
            return Err(FrameError::LengthMismatch {
                column: "<mask>".to_owned(),
                expected: self.n_rows,
                actual: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take(&indices)
    }

    /// Keep rows where the boolean expression evaluates to true
    /// (nulls are treated as false).
    ///
    /// # Errors
    /// [`FrameError::Expr`] if the expression is not boolean-typed.
    pub fn filter_expr(&self, predicate: &Expr) -> Result<Frame> {
        let mask = predicate.eval_bool_mask(self)?;
        self.filter(&mask)
    }

    /// Contiguous row slice `[start, end)`, clamped.
    pub fn slice(&self, start: usize, end: usize) -> Frame {
        let mut out = Frame::new();
        for c in &self.columns {
            out.push_column(c.slice(start, end))
                .expect("slice preserves lengths");
        }
        out
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Frame {
        self.slice(0, n)
    }

    /// Evaluate an expression and attach (or replace) the result as a column.
    ///
    /// This is the "hypothesis formula" mechanism from the paper's retention
    /// use case (derived drivers such as *"3+ formulas in two weeks"*).
    ///
    /// # Errors
    /// [`FrameError::Expr`] on evaluation failure.
    pub fn derive(&mut self, name: &str, expr: &Expr) -> Result<()> {
        let mut col = expr.eval(self)?;
        col.set_name(name);
        self.set_column(col)
    }

    /// Append the rows of `other`. Schemas (names and dtypes, in order)
    /// must match exactly.
    ///
    /// # Errors
    /// [`FrameError::InvalidOperation`] on schema mismatch.
    pub fn vstack(&self, other: &Frame) -> Result<Frame> {
        if self.column_names() != other.column_names() || self.dtypes() != other.dtypes() {
            return Err(FrameError::InvalidOperation(
                "vstack requires identical schemas".to_owned(),
            ));
        }
        let mut out = Frame::new();
        for (a, b) in self.columns.iter().zip(other.columns.iter()) {
            let values: Vec<Value> = a.iter().chain(b.iter()).collect();
            out.push_column(Column::from_values(a.name(), &values)?)?;
        }
        Ok(out)
    }

    /// Extract the named numeric columns as a row-major matrix
    /// (`n_rows × names.len()`), coercing ints/bools to floats.
    ///
    /// This is the hand-off point to the `whatif-learn` model layer.
    ///
    /// # Errors
    /// [`FrameError::TypeMismatch`] for non-numeric columns or any null.
    pub fn numeric_matrix(&self, names: &[&str]) -> Result<Vec<f64>> {
        let mut cols: Vec<Vec<f64>> = Vec::with_capacity(names.len());
        for &n in names {
            let col = self.column(n)?;
            if col.null_count() > 0 {
                return Err(FrameError::TypeMismatch {
                    column: n.to_owned(),
                    expected: "numeric without nulls",
                    actual: "nullable",
                });
            }
            cols.push(col.to_f64_lossy()?);
        }
        let mut out = Vec::with_capacity(self.n_rows * names.len());
        for i in 0..self.n_rows {
            for c in &cols {
                out.push(c[i]);
            }
        }
        Ok(out)
    }

    /// Render the frame as aligned text (for examples and the repro CLI).
    /// At most `max_rows` rows are shown.
    pub fn to_display_string(&self, max_rows: usize) -> String {
        use std::fmt::Write as _;
        let shown = self.n_rows.min(max_rows);
        let mut widths: Vec<usize> = self
            .columns
            .iter()
            .map(|c| c.name().chars().count())
            .collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.get(i).map(|v| v.to_string()).unwrap_or_default())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.chars().count());
            }
            cells.push(row);
        }
        let mut s = String::new();
        for (j, c) in self.columns.iter().enumerate() {
            let _ = write!(s, "{:>width$}  ", c.name(), width = widths[j]);
        }
        s.push('\n');
        for row in &cells {
            for (j, cell) in row.iter().enumerate() {
                let _ = write!(s, "{:>width$}  ", cell, width = widths[j]);
            }
            s.push('\n');
        }
        if shown < self.n_rows {
            let _ = writeln!(s, "... ({} more rows)", self.n_rows - shown);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns(vec![
            Column::from_f64("x", vec![1.0, 2.0, 3.0, 4.0]),
            Column::from_i64("k", vec![10, 20, 30, 40]),
            Column::from_str_values("s", vec!["a", "b", "c", "d"]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_enforces_invariants() {
        let mut f = Frame::new();
        assert!(f.is_empty());
        f.push_column(Column::from_f64("x", vec![1.0])).unwrap();
        assert_eq!(f.n_rows(), 1);
        let err = f.push_column(Column::from_f64("x", vec![2.0]));
        assert!(matches!(err, Err(FrameError::DuplicateColumn(_))));
        let err = f.push_column(Column::from_f64("y", vec![1.0, 2.0]));
        assert!(matches!(err, Err(FrameError::LengthMismatch { .. })));
    }

    #[test]
    fn select_and_drop() {
        let f = sample();
        let sel = f.select(&["s", "x"]).unwrap();
        assert_eq!(sel.column_names(), vec!["s", "x"]);
        assert_eq!(sel.n_rows(), 4);
        assert!(f.select(&["nope"]).is_err());

        let d = f.drop_columns(&["k"]).unwrap();
        assert_eq!(d.column_names(), vec!["x", "s"]);
        assert!(f.drop_columns(&["nope"]).is_err());

        let empty_sel = f.select(&[]).unwrap();
        assert_eq!(empty_sel.n_cols(), 0);
        assert_eq!(empty_sel.n_rows(), 4, "projection keeps row count");
    }

    #[test]
    fn row_access() {
        let f = sample();
        let row = f.row(1).unwrap();
        assert_eq!(row[0], ("x".to_owned(), Value::Float(2.0)));
        assert_eq!(row[2], ("s".to_owned(), Value::Str("b".into())));
        assert!(f.row(4).is_err());
    }

    #[test]
    fn take_filter_slice_head() {
        let f = sample();
        let t = f.take(&[3, 0]).unwrap();
        assert_eq!(t.column("k").unwrap().i64_values().unwrap(), &[40, 10]);

        let fl = f.filter(&[false, true, false, true]).unwrap();
        assert_eq!(fl.n_rows(), 2);
        assert!(f.filter(&[true]).is_err());

        assert_eq!(f.slice(1, 3).n_rows(), 2);
        assert_eq!(f.head(2).n_rows(), 2);
        assert_eq!(f.head(99).n_rows(), 4);
    }

    #[test]
    fn set_remove_rename() {
        let mut f = sample();
        f.set_column(Column::from_f64("x", vec![9.0, 8.0, 7.0, 6.0]))
            .unwrap();
        assert_eq!(f.column("x").unwrap().f64_values().unwrap()[0], 9.0);
        assert!(f.set_column(Column::from_f64("x", vec![1.0])).is_err());

        f.rename_column("x", "xx").unwrap();
        assert!(f.has_column("xx"));
        assert!(f.rename_column("xx", "k").is_err());
        assert!(f.rename_column("ghost", "g").is_err());

        let c = f.remove_column("xx").unwrap();
        assert_eq!(c.name(), "xx");
        assert_eq!(f.n_cols(), 2);
        assert!(f.remove_column("xx").is_err());
    }

    #[test]
    fn removing_last_column_resets_rows() {
        let mut f = Frame::from_columns(vec![Column::from_f64("x", vec![1.0, 2.0])]).unwrap();
        f.remove_column("x").unwrap();
        assert_eq!(f.n_rows(), 0);
        // New column of different length is now acceptable.
        f.push_column(Column::from_f64("y", vec![1.0, 2.0, 3.0]))
            .unwrap();
        assert_eq!(f.n_rows(), 3);
    }

    #[test]
    fn vstack_appends_rows() {
        let a = sample();
        let b = sample();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.n_rows(), 8);
        assert_eq!(
            v.column("s").unwrap().get(4).unwrap(),
            Value::Str("a".into())
        );

        let mismatched = Frame::from_columns(vec![Column::from_f64("x", vec![1.0])]).unwrap();
        assert!(a.vstack(&mismatched).is_err());
    }

    #[test]
    fn numeric_matrix_is_row_major() {
        let f = sample();
        let m = f.numeric_matrix(&["x", "k"]).unwrap();
        assert_eq!(m, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        assert!(f.numeric_matrix(&["s"]).is_err());
        let nullable = Frame::from_columns(vec![Column::from_f64_opt(
            "n",
            vec![Some(1.0), None, Some(3.0), Some(4.0)],
        )])
        .unwrap();
        assert!(nullable.numeric_matrix(&["n"]).is_err());
    }

    #[test]
    fn display_string_truncates() {
        let f = sample();
        let s = f.to_display_string(2);
        assert!(s.contains("more rows"));
        assert!(s.contains('x'));
        let full = f.to_display_string(10);
        assert!(!full.contains("more rows"));
    }
}
