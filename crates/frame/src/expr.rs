//! A small expression AST for derived columns and filter predicates.
//!
//! Expressions power two SystemD features:
//!
//! * **Hypothesis formulas** (paper §3 U2): business users derive new
//!   candidate drivers, e.g. `used 3+ formulas AND attended 2+ demos`.
//! * **Filter predicates** for slicing/dicing before analysis.
//!
//! Semantics:
//!
//! * Arithmetic operates on `f64` (ints/bools coerce); the result is a
//!   `Float` column.
//! * Comparisons yield `Bool` columns. String equality is supported when
//!   *both* sides are strings.
//! * Nulls propagate through every operator; a null predicate cell filters
//!   the row out.

use crate::column::{Column, ColumnData};
use crate::error::{FrameError, Result};
use crate::frame::Frame;
use crate::value::DType;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Absolute value.
    Abs,
    /// Square root (negative inputs become null).
    Sqrt,
    /// Natural log (non-positive inputs become null).
    Ln,
    /// Exponential.
    Exp,
    /// Round down.
    Floor,
    /// Round up.
    Ceil,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `lhs + rhs`
    Add,
    /// `lhs - rhs`
    Sub,
    /// `lhs * rhs`
    Mul,
    /// `lhs / rhs` (division by zero yields null)
    Div,
    /// `lhs ^ rhs`
    Pow,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// `lhs > rhs`
    Gt,
    /// `lhs >= rhs`
    Ge,
    /// `lhs < rhs`
    Lt,
    /// `lhs <= rhs`
    Le,
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
    /// Boolean and.
    And,
    /// Boolean or.
    Or,
}

/// An expression tree over frame columns and literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Col(String),
    /// Float literal.
    LitF(f64),
    /// Integer literal.
    LitI(i64),
    /// Boolean literal.
    LitB(bool),
    /// String literal.
    LitS(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Intermediate evaluation result: data plus validity.
enum Evaluated {
    Num(Vec<f64>, Vec<bool>),
    Bool(Vec<bool>, Vec<bool>),
    Str(Vec<String>, Vec<bool>),
}

impl Evaluated {
    fn len(&self) -> usize {
        match self {
            Evaluated::Num(v, _) => v.len(),
            Evaluated::Bool(v, _) => v.len(),
            Evaluated::Str(v, _) => v.len(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Evaluated::Num(..) => "numeric",
            Evaluated::Bool(..) => "bool",
            Evaluated::Str(..) => "str",
        }
    }

    fn into_num(self) -> Result<(Vec<f64>, Vec<bool>)> {
        match self {
            Evaluated::Num(v, m) => Ok((v, m)),
            Evaluated::Bool(v, m) => Ok((
                v.into_iter().map(|b| if b { 1.0 } else { 0.0 }).collect(),
                m,
            )),
            Evaluated::Str(..) => Err(FrameError::Expr(
                "expected a numeric operand, found string".to_owned(),
            )),
        }
    }

    fn into_bool(self) -> Result<(Vec<bool>, Vec<bool>)> {
        match self {
            Evaluated::Bool(v, m) => Ok((v, m)),
            other => Err(FrameError::Expr(format!(
                "expected a boolean operand, found {}",
                other.kind()
            ))),
        }
    }
}

// The builder methods intentionally mirror operator names (`add`, `not`,
// ...) without implementing the std operator traits: expressions are
// consumed by value into an AST, and `a.add(b)` reads as the DSL it is.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Float literal.
    pub fn lit_f64(x: f64) -> Expr {
        Expr::LitF(x)
    }

    /// Integer literal.
    pub fn lit_i64(x: i64) -> Expr {
        Expr::LitI(x)
    }

    /// Boolean literal.
    pub fn lit_bool(b: bool) -> Expr {
        Expr::LitB(b)
    }

    /// String literal.
    pub fn lit_str(s: impl Into<String>) -> Expr {
        Expr::LitS(s.into())
    }

    fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    fn unary(self, op: UnaryOp) -> Expr {
        Expr::Unary(op, Box::new(self))
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Add, rhs)
    }

    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Sub, rhs)
    }

    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mul, rhs)
    }

    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Div, rhs)
    }

    /// `self ^ rhs`
    pub fn pow(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Pow, rhs)
    }

    /// Elementwise minimum.
    pub fn min(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Min, rhs)
    }

    /// Elementwise maximum.
    pub fn max(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Max, rhs)
    }

    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ge, rhs)
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }

    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Le, rhs)
    }

    /// `self == rhs`
    pub fn eq_(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }

    /// `self != rhs`
    pub fn ne_(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ne, rhs)
    }

    /// Boolean conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }

    /// Boolean disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }

    /// Boolean negation.
    pub fn not(self) -> Expr {
        self.unary(UnaryOp::Not)
    }

    /// Arithmetic negation.
    pub fn neg(self) -> Expr {
        self.unary(UnaryOp::Neg)
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        self.unary(UnaryOp::Abs)
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        self.unary(UnaryOp::Sqrt)
    }

    /// Natural logarithm.
    pub fn ln(self) -> Expr {
        self.unary(UnaryOp::Ln)
    }

    /// Exponential.
    pub fn exp(self) -> Expr {
        self.unary(UnaryOp::Exp)
    }

    /// Round down.
    pub fn floor(self) -> Expr {
        self.unary(UnaryOp::Floor)
    }

    /// Round up.
    pub fn ceil(self) -> Expr {
        self.unary(UnaryOp::Ceil)
    }

    /// Clamp into `[lo, hi]`.
    pub fn clip(self, lo: f64, hi: f64) -> Expr {
        self.max(Expr::lit_f64(lo)).min(Expr::lit_f64(hi))
    }

    /// Names of all columns referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => out.push(name),
            Expr::Unary(_, e) => e.collect_columns(out),
            Expr::Binary(_, l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            _ => {}
        }
    }

    /// Evaluate against a frame, producing an unnamed column.
    ///
    /// # Errors
    /// [`FrameError::Expr`] on type errors, [`FrameError::UnknownColumn`]
    /// for missing references.
    pub fn eval(&self, frame: &Frame) -> Result<Column> {
        let n = frame.n_rows();
        let evaluated = self.eval_inner(frame, n)?;
        Ok(match evaluated {
            Evaluated::Num(v, m) => Column::with_validity("", ColumnData::Float(v), m)?,
            Evaluated::Bool(v, m) => Column::with_validity("", ColumnData::Bool(v), m)?,
            Evaluated::Str(v, m) => Column::with_validity("", ColumnData::Str(v), m)?,
        })
    }

    /// Evaluate as a filter mask: boolean result with nulls mapped to
    /// `false`.
    ///
    /// # Errors
    /// [`FrameError::Expr`] if the expression is not boolean.
    pub fn eval_bool_mask(&self, frame: &Frame) -> Result<Vec<bool>> {
        let (vals, mask) = self.eval_inner(frame, frame.n_rows())?.into_bool()?;
        Ok(vals.into_iter().zip(mask).map(|(v, ok)| v && ok).collect())
    }

    fn eval_inner(&self, frame: &Frame, n: usize) -> Result<Evaluated> {
        match self {
            Expr::Col(name) => {
                let col = frame.column(name)?;
                let validity: Vec<bool> = (0..col.len()).map(|i| col.is_valid(i)).collect();
                Ok(match col.dtype() {
                    DType::Float | DType::Int => {
                        let mut vals = col.to_f64_lossy()?;
                        // Null sentinel NaNs are masked; keep data finite.
                        for (v, ok) in vals.iter_mut().zip(&validity) {
                            if !ok {
                                *v = 0.0;
                            }
                        }
                        Evaluated::Num(vals, validity)
                    }
                    DType::Bool => {
                        let vals: Vec<bool> = (0..col.len())
                            .map(|i| col.get(i).ok().and_then(|v| v.as_bool()).unwrap_or(false))
                            .collect();
                        Evaluated::Bool(vals, validity)
                    }
                    DType::Str => {
                        let vals: Vec<String> = (0..col.len())
                            .map(|i| {
                                col.get(i)
                                    .ok()
                                    .and_then(|v| v.as_str().map(str::to_owned))
                                    .unwrap_or_default()
                            })
                            .collect();
                        Evaluated::Str(vals, validity)
                    }
                })
            }
            Expr::LitF(x) => Ok(Evaluated::Num(vec![*x; n], vec![true; n])),
            Expr::LitI(x) => Ok(Evaluated::Num(vec![*x as f64; n], vec![true; n])),
            Expr::LitB(b) => Ok(Evaluated::Bool(vec![*b; n], vec![true; n])),
            Expr::LitS(s) => Ok(Evaluated::Str(vec![s.clone(); n], vec![true; n])),
            Expr::Unary(op, e) => {
                let inner = e.eval_inner(frame, n)?;
                eval_unary(*op, inner)
            }
            Expr::Binary(op, l, r) => {
                let lhs = l.eval_inner(frame, n)?;
                let rhs = r.eval_inner(frame, n)?;
                if lhs.len() != rhs.len() {
                    return Err(FrameError::Expr(format!(
                        "operand lengths differ: {} vs {}",
                        lhs.len(),
                        rhs.len()
                    )));
                }
                eval_binary(*op, lhs, rhs)
            }
        }
    }
}

fn eval_unary(op: UnaryOp, inner: Evaluated) -> Result<Evaluated> {
    match op {
        UnaryOp::Not => {
            let (vals, mask) = inner.into_bool()?;
            Ok(Evaluated::Bool(
                vals.into_iter().map(|b| !b).collect(),
                mask,
            ))
        }
        UnaryOp::Neg | UnaryOp::Abs | UnaryOp::Exp | UnaryOp::Floor | UnaryOp::Ceil => {
            let (vals, mask) = inner.into_num()?;
            let f = match op {
                UnaryOp::Neg => |x: f64| -x,
                UnaryOp::Abs => f64::abs,
                UnaryOp::Exp => f64::exp,
                UnaryOp::Floor => f64::floor,
                _ => f64::ceil,
            };
            Ok(Evaluated::Num(vals.into_iter().map(f).collect(), mask))
        }
        UnaryOp::Sqrt | UnaryOp::Ln => {
            let (vals, mut mask) = inner.into_num()?;
            let out: Vec<f64> = vals
                .into_iter()
                .enumerate()
                .map(|(i, x)| {
                    let y = if op == UnaryOp::Sqrt {
                        x.sqrt()
                    } else {
                        x.ln()
                    };
                    if y.is_finite() {
                        y
                    } else {
                        // Domain errors (sqrt of negatives, ln of ≤ 0) null out.
                        mask[i] = false;
                        0.0
                    }
                })
                .collect();
            Ok(Evaluated::Num(out, mask))
        }
    }
}

fn eval_binary(op: BinOp, lhs: Evaluated, rhs: Evaluated) -> Result<Evaluated> {
    use BinOp::*;
    match op {
        And | Or => {
            let (lv, lm) = lhs.into_bool()?;
            let (rv, rm) = rhs.into_bool()?;
            let mask: Vec<bool> = lm.iter().zip(&rm).map(|(&a, &b)| a && b).collect();
            let vals: Vec<bool> = lv
                .into_iter()
                .zip(rv)
                .map(|(a, b)| if op == And { a && b } else { a || b })
                .collect();
            Ok(Evaluated::Bool(vals, mask))
        }
        Eq | Ne if matches!(lhs, Evaluated::Str(..)) || matches!(rhs, Evaluated::Str(..)) => {
            let (lv, lm) = match lhs {
                Evaluated::Str(v, m) => (v, m),
                other => {
                    return Err(FrameError::Expr(format!(
                        "cannot compare string with {}",
                        other.kind()
                    )))
                }
            };
            let (rv, rm) = match rhs {
                Evaluated::Str(v, m) => (v, m),
                other => {
                    return Err(FrameError::Expr(format!(
                        "cannot compare string with {}",
                        other.kind()
                    )))
                }
            };
            let mask: Vec<bool> = lm.iter().zip(&rm).map(|(&a, &b)| a && b).collect();
            let vals: Vec<bool> = lv
                .iter()
                .zip(&rv)
                .map(|(a, b)| if op == Eq { a == b } else { a != b })
                .collect();
            Ok(Evaluated::Bool(vals, mask))
        }
        Gt | Ge | Lt | Le | Eq | Ne => {
            let (lv, lm) = lhs.into_num()?;
            let (rv, rm) = rhs.into_num()?;
            let mask: Vec<bool> = lm.iter().zip(&rm).map(|(&a, &b)| a && b).collect();
            let vals: Vec<bool> = lv
                .into_iter()
                .zip(rv)
                .map(|(a, b)| match op {
                    Gt => a > b,
                    Ge => a >= b,
                    Lt => a < b,
                    Le => a <= b,
                    Eq => a == b,
                    _ => a != b,
                })
                .collect();
            Ok(Evaluated::Bool(vals, mask))
        }
        Add | Sub | Mul | Div | Pow | Min | Max => {
            let (lv, lm) = lhs.into_num()?;
            let (rv, rm) = rhs.into_num()?;
            let mut mask: Vec<bool> = lm.iter().zip(&rm).map(|(&a, &b)| a && b).collect();
            let vals: Vec<f64> = lv
                .into_iter()
                .zip(rv)
                .enumerate()
                .map(|(i, (a, b))| {
                    let y = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => a / b,
                        Pow => a.powf(b),
                        Min => a.min(b),
                        _ => a.max(b),
                    };
                    if y.is_finite() {
                        y
                    } else {
                        // Division by zero, 0^-1, overflow, ... null out.
                        mask[i] = false;
                        0.0
                    }
                })
                .collect();
            Ok(Evaluated::Num(vals, mask))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Value;

    fn frame() -> Frame {
        Frame::from_columns(vec![
            Column::from_f64("x", vec![1.0, 2.0, 3.0]),
            Column::from_i64("k", vec![10, 20, 30]),
            Column::from_bool("b", vec![true, false, true]),
            Column::from_str_values("s", vec!["a", "b", "a"]),
            Column::from_f64_opt("n", vec![Some(1.0), None, Some(3.0)]),
        ])
        .unwrap()
    }

    #[test]
    fn arithmetic_and_coercion() {
        let f = frame();
        let e = Expr::col("x").add(Expr::col("k")).mul(Expr::lit_f64(2.0));
        let c = e.eval(&f).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[22.0, 44.0, 66.0]);
    }

    #[test]
    fn bool_coerces_to_numeric() {
        let f = frame();
        let c = Expr::col("b").add(Expr::lit_f64(1.0)).eval(&f).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[2.0, 1.0, 2.0]);
    }

    #[test]
    fn comparisons_produce_bool() {
        let f = frame();
        let mask = Expr::col("x")
            .ge(Expr::lit_f64(2.0))
            .eval_bool_mask(&f)
            .unwrap();
        assert_eq!(mask, vec![false, true, true]);
        let ne = Expr::col("x")
            .ne_(Expr::lit_f64(2.0))
            .eval_bool_mask(&f)
            .unwrap();
        assert_eq!(ne, vec![true, false, true]);
    }

    #[test]
    fn string_equality() {
        let f = frame();
        let mask = Expr::col("s")
            .eq_(Expr::lit_str("a"))
            .eval_bool_mask(&f)
            .unwrap();
        assert_eq!(mask, vec![true, false, true]);
        let err = Expr::col("s").eq_(Expr::lit_f64(1.0)).eval(&f);
        assert!(err.is_err());
    }

    #[test]
    fn logic_ops_and_not() {
        let f = frame();
        let e = Expr::col("b")
            .or(Expr::col("x").gt(Expr::lit_f64(2.5)))
            .not();
        let mask = e.eval_bool_mask(&f).unwrap();
        assert_eq!(mask, vec![false, true, false]);
    }

    #[test]
    fn nulls_propagate() {
        let f = frame();
        let c = Expr::col("n").add(Expr::lit_f64(1.0)).eval(&f).unwrap();
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0).unwrap(), Value::Float(2.0));
        assert_eq!(c.get(1).unwrap(), Value::Null);
        // Null comparison never matches in a filter.
        let mask = Expr::col("n")
            .gt(Expr::lit_f64(-1e9))
            .eval_bool_mask(&f)
            .unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn division_by_zero_nulls_out() {
        let f = frame();
        let c = Expr::col("x")
            .div(Expr::col("x").sub(Expr::lit_f64(2.0)))
            .eval(&f)
            .unwrap();
        assert_eq!(c.null_count(), 1);
        assert!(!c.is_valid(1));
    }

    #[test]
    fn domain_errors_null_out() {
        let f = frame();
        let c = Expr::col("x")
            .sub(Expr::lit_f64(2.0))
            .ln()
            .eval(&f)
            .unwrap();
        // ln(-1), ln(0), ln(1) -> null, null, 0
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.get(2).unwrap(), Value::Float(0.0));
        let c = Expr::col("x")
            .sub(Expr::lit_f64(2.0))
            .sqrt()
            .eval(&f)
            .unwrap();
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn unary_numeric_ops() {
        let f = frame();
        let c = Expr::col("x").neg().abs().eval(&f).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[1.0, 2.0, 3.0]);
        let c = Expr::lit_f64(1.5).floor().eval(&f).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[1.0, 1.0, 1.0]);
        let c = Expr::lit_f64(1.5).ceil().eval(&f).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[2.0, 2.0, 2.0]);
        let c = Expr::lit_f64(1.0).exp().eval(&f).unwrap();
        assert!((c.f64_values().unwrap()[0] - std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn min_max_pow_clip() {
        let f = frame();
        let c = Expr::col("x").pow(Expr::lit_f64(2.0)).eval(&f).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[1.0, 4.0, 9.0]);
        let c = Expr::col("x").clip(1.5, 2.5).eval(&f).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("x")
            .add(Expr::col("y"))
            .mul(Expr::col("x"))
            .gt(Expr::lit_f64(0.0));
        assert_eq!(e.referenced_columns(), vec!["x", "y"]);
    }

    #[test]
    fn derive_into_frame() {
        let mut f = frame();
        f.derive("x2", &Expr::col("x").mul(Expr::lit_f64(2.0)))
            .unwrap();
        assert_eq!(
            f.column("x2").unwrap().f64_values().unwrap(),
            &[2.0, 4.0, 6.0]
        );
        // Hypothesis formula example from the paper: "k >= 20 AND b".
        f.derive(
            "hypothesis",
            &Expr::col("k").ge(Expr::lit_i64(20)).and(Expr::col("b")),
        )
        .unwrap();
        assert_eq!(
            f.column("hypothesis").unwrap().bool_values().unwrap(),
            &[false, false, true]
        );
    }

    #[test]
    fn filter_expr_on_frame() {
        let f = frame();
        let out = f
            .filter_expr(&Expr::col("x").gt(Expr::lit_f64(1.0)))
            .unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn unknown_column_errors() {
        let f = frame();
        assert!(matches!(
            Expr::col("ghost").eval(&f),
            Err(FrameError::UnknownColumn(_))
        ));
    }

    #[test]
    fn not_requires_bool() {
        let f = frame();
        assert!(Expr::col("x").not().eval(&f).is_err());
        assert!(Expr::col("b").add(Expr::col("b")).eval(&f).is_ok());
        assert!(Expr::col("s").add(Expr::lit_f64(1.0)).eval(&f).is_err());
    }
}
