//! Row sorting for frames.

use crate::error::Result;
use crate::frame::Frame;
use crate::value::Value;
use std::cmp::Ordering;

/// Sort direction for one key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

/// Total order over cell values used for sorting:
/// nulls sort last; numerics compare as `f64` (NaN after numbers);
/// bools as `false < true`; strings lexicographically.
/// Cross-type comparisons fall back to a fixed type precedence.
fn compare_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Bool(_) => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
            Value::Null => 3,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Greater,
        (_, Value::Null) => Ordering::Less,
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or_else(|| {
                // NaNs sort after ordinary numbers, equal to each other.
                match (x.is_nan(), y.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => Ordering::Equal,
                }
            }),
            _ => rank(a).cmp(&rank(b)),
        },
    }
}

impl Frame {
    /// Stable sort by one or more `(column, order)` keys.
    ///
    /// # Errors
    /// [`crate::FrameError::UnknownColumn`] for unknown keys.
    pub fn sort_by(&self, keys: &[(&str, SortOrder)]) -> Result<Frame> {
        // Materialize key columns once; sorting then only permutes indices.
        let mut key_cols = Vec::with_capacity(keys.len());
        for &(name, order) in keys {
            let col = self.column(name)?;
            let vals: Vec<Value> = (0..self.n_rows())
                .map(|i| col.get(i).expect("row in range"))
                .collect();
            key_cols.push((vals, order));
        }
        let mut indices: Vec<usize> = (0..self.n_rows()).collect();
        indices.sort_by(|&i, &j| {
            for (vals, order) in &key_cols {
                let ord = compare_values(&vals[i], &vals[j]);
                let ord = match order {
                    SortOrder::Ascending => ord,
                    SortOrder::Descending => ord.reverse(),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        self.take(&indices)
    }

    /// Indices that would sort the frame by the given keys (argsort).
    ///
    /// # Errors
    /// [`crate::FrameError::UnknownColumn`] for unknown keys.
    pub fn sort_indices(&self, keys: &[(&str, SortOrder)]) -> Result<Vec<usize>> {
        let sorted = self.sort_by(keys)?;
        // Recompute by re-sorting raw indices using the same comparator:
        // cheaper to just redo the permutation computation.
        let _ = sorted;
        let mut key_cols = Vec::with_capacity(keys.len());
        for &(name, order) in keys {
            let col = self.column(name)?;
            let vals: Vec<Value> = (0..self.n_rows())
                .map(|i| col.get(i).expect("row in range"))
                .collect();
            key_cols.push((vals, order));
        }
        let mut indices: Vec<usize> = (0..self.n_rows()).collect();
        indices.sort_by(|&i, &j| {
            for (vals, order) in &key_cols {
                let ord = compare_values(&vals[i], &vals[j]);
                let ord = match order {
                    SortOrder::Ascending => ord,
                    SortOrder::Descending => ord.reverse(),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        Ok(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn frame() -> Frame {
        Frame::from_columns(vec![
            Column::from_f64("score", vec![2.0, 1.0, 2.0, 0.5]),
            Column::from_str_values("name", vec!["b", "a", "a", "c"]),
            Column::from_i64_opt("rank", vec![Some(3), None, Some(1), Some(2)]),
        ])
        .unwrap()
    }

    #[test]
    fn single_key_ascending() {
        let f = frame().sort_by(&[("score", SortOrder::Ascending)]).unwrap();
        assert_eq!(
            f.column("score").unwrap().f64_values().unwrap(),
            &[0.5, 1.0, 2.0, 2.0]
        );
    }

    #[test]
    fn single_key_descending() {
        let f = frame()
            .sort_by(&[("score", SortOrder::Descending)])
            .unwrap();
        assert_eq!(
            f.column("score").unwrap().f64_values().unwrap(),
            &[2.0, 2.0, 1.0, 0.5]
        );
    }

    #[test]
    fn multi_key_breaks_ties() {
        let f = frame()
            .sort_by(&[
                ("score", SortOrder::Descending),
                ("name", SortOrder::Ascending),
            ])
            .unwrap();
        let names = f.column("name").unwrap().str_values().unwrap().to_vec();
        assert_eq!(names, vec!["a", "b", "a", "c"]);
    }

    #[test]
    fn stability_preserves_input_order_on_ties() {
        let f = Frame::from_columns(vec![
            Column::from_i64("k", vec![1, 1, 1]),
            Column::from_i64("orig", vec![0, 1, 2]),
        ])
        .unwrap();
        let sorted = f.sort_by(&[("k", SortOrder::Ascending)]).unwrap();
        assert_eq!(
            sorted.column("orig").unwrap().i64_values().unwrap(),
            &[0, 1, 2]
        );
    }

    #[test]
    fn nulls_sort_last_in_both_directions() {
        let f = frame().sort_by(&[("rank", SortOrder::Ascending)]).unwrap();
        assert!(!f.column("rank").unwrap().is_valid(3));
        let f = frame().sort_by(&[("rank", SortOrder::Descending)]).unwrap();
        // Descending reverses comparisons, so nulls lead there.
        assert!(!f.column("rank").unwrap().is_valid(0));
    }

    #[test]
    fn nan_sorts_after_numbers() {
        let f = Frame::from_columns(vec![Column::from_f64("x", vec![f64::NAN, 1.0, 0.0])]).unwrap();
        let s = f.sort_by(&[("x", SortOrder::Ascending)]).unwrap();
        let v = s.column("x").unwrap().f64_values().unwrap();
        assert_eq!(&v[..2], &[0.0, 1.0]);
        assert!(v[2].is_nan());
    }

    #[test]
    fn sort_indices_matches_sort() {
        let f = frame();
        let idx = f.sort_indices(&[("score", SortOrder::Ascending)]).unwrap();
        let manual = f.take(&idx).unwrap();
        let direct = f.sort_by(&[("score", SortOrder::Ascending)]).unwrap();
        assert_eq!(manual, direct);
    }

    #[test]
    fn unknown_key_errors() {
        assert!(frame().sort_by(&[("ghost", SortOrder::Ascending)]).is_err());
    }

    #[test]
    fn bool_ordering() {
        let f = Frame::from_columns(vec![Column::from_bool("b", vec![true, false, true])]).unwrap();
        let s = f.sort_by(&[("b", SortOrder::Ascending)]).unwrap();
        assert_eq!(
            s.column("b").unwrap().bool_values().unwrap(),
            &[false, true, true]
        );
    }
}
