//! Hash joins between frames (the "drill to other analysis data" path —
//! e.g. attaching customer-cohort attributes to activity tables).

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::Frame;
use crate::value::Value;
use std::collections::HashMap;

/// The join flavors supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only rows whose keys match on both sides.
    Inner,
    /// Keep every left row; unmatched right columns become null.
    Left,
}

/// Hashable join-key atom (same float-bits convention as group-by).
/// Null keys never match anything, per SQL semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyAtom {
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(String),
}

impl KeyAtom {
    fn from_value(v: &Value) -> Option<KeyAtom> {
        match v {
            Value::Null => None,
            Value::Bool(b) => Some(KeyAtom::Bool(*b)),
            Value::Int(x) => Some(KeyAtom::Int(*x)),
            Value::Float(x) => Some(KeyAtom::Float(x.to_bits())),
            Value::Str(s) => Some(KeyAtom::Str(s.clone())),
        }
    }
}

fn row_key(frame: &Frame, cols: &[&Column], i: usize) -> Option<Vec<KeyAtom>> {
    let _ = frame;
    cols.iter()
        .map(|c| KeyAtom::from_value(&c.get(i).expect("row in range")))
        .collect()
}

impl Frame {
    /// Join `self` (left) with `other` (right) on equality of the named key
    /// columns (which must exist on both sides).
    ///
    /// Non-key right columns whose names collide with left columns are
    /// suffixed with `_right`. Matching is hash-based; right-side matches
    /// preserve right input order per key. Null keys never match.
    ///
    /// # Errors
    /// [`FrameError::UnknownColumn`] for missing keys,
    /// [`FrameError::DuplicateColumn`] if suffixing still collides.
    pub fn join(&self, other: &Frame, on: &[&str], kind: JoinKind) -> Result<Frame> {
        if on.is_empty() {
            return Err(FrameError::InvalidOperation(
                "join requires at least one key column".to_owned(),
            ));
        }
        let left_keys: Vec<&Column> = on.iter().map(|&k| self.column(k)).collect::<Result<_>>()?;
        let right_keys: Vec<&Column> =
            on.iter().map(|&k| other.column(k)).collect::<Result<_>>()?;

        // Build hash index over the right side.
        let mut index: HashMap<Vec<KeyAtom>, Vec<usize>> = HashMap::new();
        for j in 0..other.n_rows() {
            if let Some(key) = row_key(other, &right_keys, j) {
                index.entry(key).or_default().push(j);
            }
        }

        // Probe with the left side.
        let mut left_idx: Vec<usize> = Vec::new();
        let mut right_idx: Vec<Option<usize>> = Vec::new();
        for i in 0..self.n_rows() {
            let matches = row_key(self, &left_keys, i).and_then(|key| index.get(&key));
            match matches {
                Some(js) => {
                    for &j in js {
                        left_idx.push(i);
                        right_idx.push(Some(j));
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        left_idx.push(i);
                        right_idx.push(None);
                    }
                }
            }
        }

        let mut out = self.take(&left_idx)?;
        for col in other.columns() {
            if on.contains(&col.name()) {
                continue;
            }
            let name = if out.has_column(col.name()) {
                format!("{}_right", col.name())
            } else {
                col.name().to_owned()
            };
            let values: Vec<Value> = right_idx
                .iter()
                .map(|j| match j {
                    Some(j) => col.get(*j).expect("row in range"),
                    None => Value::Null,
                })
                .collect();
            out.push_column(Column::from_values(name, &values)?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> Frame {
        Frame::from_columns(vec![
            Column::from_i64("id", vec![1, 2, 3, 4]),
            Column::from_str_values("name", vec!["ann", "bob", "cat", "dan"]),
        ])
        .unwrap()
    }

    fn orders() -> Frame {
        Frame::from_columns(vec![
            Column::from_i64("id", vec![2, 2, 3, 9]),
            Column::from_f64("amount", vec![10.0, 20.0, 5.0, 99.0]),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_matches_only() {
        let j = customers()
            .join(&orders(), &["id"], JoinKind::Inner)
            .unwrap();
        assert_eq!(j.n_rows(), 3);
        assert_eq!(j.column("id").unwrap().i64_values().unwrap(), &[2, 2, 3]);
        assert_eq!(
            j.column("amount").unwrap().f64_values().unwrap(),
            &[10.0, 20.0, 5.0]
        );
        assert_eq!(
            j.column("name").unwrap().str_values().unwrap(),
            &["bob".to_owned(), "bob".to_owned(), "cat".to_owned()]
        );
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let j = customers()
            .join(&orders(), &["id"], JoinKind::Left)
            .unwrap();
        assert_eq!(j.n_rows(), 5); // ann(null), bob x2, cat, dan(null)
        let amount = j.column("amount").unwrap();
        assert_eq!(amount.null_count(), 2);
        assert!(!amount.is_valid(0));
        assert!(!amount.is_valid(4));
    }

    #[test]
    fn multi_key_join() {
        let a = Frame::from_columns(vec![
            Column::from_i64("k1", vec![1, 1, 2]),
            Column::from_str_values("k2", vec!["x", "y", "x"]),
            Column::from_f64("va", vec![1.0, 2.0, 3.0]),
        ])
        .unwrap();
        let b = Frame::from_columns(vec![
            Column::from_i64("k1", vec![1, 2]),
            Column::from_str_values("k2", vec!["y", "x"]),
            Column::from_f64("vb", vec![10.0, 20.0]),
        ])
        .unwrap();
        let j = a.join(&b, &["k1", "k2"], JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.column("va").unwrap().f64_values().unwrap(), &[2.0, 3.0]);
        assert_eq!(j.column("vb").unwrap().f64_values().unwrap(), &[10.0, 20.0]);
    }

    #[test]
    fn name_collision_gets_suffix() {
        let a = Frame::from_columns(vec![
            Column::from_i64("id", vec![1]),
            Column::from_f64("v", vec![1.0]),
        ])
        .unwrap();
        let b = Frame::from_columns(vec![
            Column::from_i64("id", vec![1]),
            Column::from_f64("v", vec![2.0]),
        ])
        .unwrap();
        let j = a.join(&b, &["id"], JoinKind::Inner).unwrap();
        assert_eq!(j.column("v").unwrap().f64_values().unwrap(), &[1.0]);
        assert_eq!(j.column("v_right").unwrap().f64_values().unwrap(), &[2.0]);
    }

    #[test]
    fn null_keys_never_match() {
        let a = Frame::from_columns(vec![Column::from_i64_opt("id", vec![Some(1), None])]).unwrap();
        let b = Frame::from_columns(vec![
            Column::from_i64_opt("id", vec![Some(1), None]),
            Column::from_f64("v", vec![1.0, 2.0]),
        ])
        .unwrap();
        let inner = a.join(&b, &["id"], JoinKind::Inner).unwrap();
        assert_eq!(inner.n_rows(), 1);
        let left = a.join(&b, &["id"], JoinKind::Left).unwrap();
        assert_eq!(left.n_rows(), 2);
        assert!(!left.column("v").unwrap().is_valid(1));
    }

    #[test]
    fn missing_key_column_errors() {
        assert!(customers()
            .join(&orders(), &["ghost"], JoinKind::Inner)
            .is_err());
        assert!(customers().join(&orders(), &[], JoinKind::Inner).is_err());
    }

    #[test]
    fn right_match_order_is_preserved() {
        let a = Frame::from_columns(vec![Column::from_i64("id", vec![2])]).unwrap();
        let j = a.join(&orders(), &["id"], JoinKind::Inner).unwrap();
        assert_eq!(
            j.column("amount").unwrap().f64_values().unwrap(),
            &[10.0, 20.0]
        );
    }
}
