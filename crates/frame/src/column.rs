//! Typed, nullable column storage.

use crate::error::{FrameError, Result};
use crate::value::{DType, Value};

/// The physical storage backing a [`Column`], structure-of-arrays style.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit floats.
    Float(Vec<f64>),
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// UTF-8 strings.
    Str(Vec<String>),
}

impl ColumnData {
    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Float(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dtype of this storage.
    pub fn dtype(&self) -> DType {
        match self {
            ColumnData::Float(_) => DType::Float,
            ColumnData::Int(_) => DType::Int,
            ColumnData::Bool(_) => DType::Bool,
            ColumnData::Str(_) => DType::Str,
        }
    }
}

/// A named, typed, optionally-nullable column.
///
/// Nulls are tracked with a validity mask (`true` = present). A column with
/// no mask is fully valid; masks are only allocated when a null appears,
/// which keeps the common all-valid case allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
    /// `None` means every row is valid.
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Build a fully-valid column from raw storage.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
            validity: None,
        }
    }

    /// Build a column with an explicit validity mask.
    ///
    /// # Errors
    /// Returns [`FrameError::LengthMismatch`] if the mask length differs
    /// from the data length.
    pub fn with_validity(
        name: impl Into<String>,
        data: ColumnData,
        validity: Vec<bool>,
    ) -> Result<Self> {
        let name = name.into();
        if validity.len() != data.len() {
            return Err(FrameError::LengthMismatch {
                column: name,
                expected: data.len(),
                actual: validity.len(),
            });
        }
        let validity = if validity.iter().all(|&v| v) {
            None
        } else {
            Some(validity)
        };
        Ok(Column {
            name,
            data,
            validity,
        })
    }

    /// Fully-valid float column.
    pub fn from_f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column::new(name, ColumnData::Float(values))
    }

    /// Fully-valid integer column.
    pub fn from_i64(name: impl Into<String>, values: Vec<i64>) -> Self {
        Column::new(name, ColumnData::Int(values))
    }

    /// Fully-valid boolean column.
    pub fn from_bool(name: impl Into<String>, values: Vec<bool>) -> Self {
        Column::new(name, ColumnData::Bool(values))
    }

    /// Fully-valid string column.
    pub fn from_str_values<S: Into<String>>(name: impl Into<String>, values: Vec<S>) -> Self {
        Column::new(
            name,
            ColumnData::Str(values.into_iter().map(Into::into).collect()),
        )
    }

    /// Nullable float column: `None` entries become nulls (stored as 0.0
    /// behind the mask).
    pub fn from_f64_opt(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        let validity: Vec<bool> = values.iter().map(Option::is_some).collect();
        let data: Vec<f64> = values.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        // with_validity cannot fail here: lengths match by construction.
        Column::with_validity(name, ColumnData::Float(data), validity)
            .expect("lengths match by construction")
    }

    /// Nullable integer column.
    pub fn from_i64_opt(name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        let validity: Vec<bool> = values.iter().map(Option::is_some).collect();
        let data: Vec<i64> = values.into_iter().map(|v| v.unwrap_or(0)).collect();
        Column::with_validity(name, ColumnData::Int(data), validity)
            .expect("lengths match by construction")
    }

    /// Build a column from dynamically-typed values, unifying the dtype.
    ///
    /// Type unification: any float present promotes ints to float; mixed
    /// string/numeric is an error. All-null input produces a float column of
    /// nulls.
    ///
    /// # Errors
    /// Returns [`FrameError::TypeMismatch`] on incompatible value types.
    pub fn from_values(name: impl Into<String>, values: &[Value]) -> Result<Self> {
        let name = name.into();
        let mut dtype: Option<DType> = None;
        for v in values {
            let Some(d) = v.dtype() else { continue };
            dtype = Some(match (dtype, d) {
                (None, d) => d,
                (Some(cur), d) if cur == d => cur,
                (Some(DType::Int), DType::Float) | (Some(DType::Float), DType::Int) => DType::Float,
                (Some(cur), d) => {
                    return Err(FrameError::TypeMismatch {
                        column: name,
                        expected: cur.name(),
                        actual: d.name(),
                    })
                }
            });
        }
        let dtype = dtype.unwrap_or(DType::Float);
        let validity: Vec<bool> = values.iter().map(|v| !v.is_null()).collect();
        let data = match dtype {
            DType::Float => {
                ColumnData::Float(values.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect())
            }
            DType::Int => ColumnData::Int(values.iter().map(|v| v.as_i64().unwrap_or(0)).collect()),
            DType::Bool => ColumnData::Bool(
                values
                    .iter()
                    .map(|v| v.as_bool().unwrap_or(false))
                    .collect(),
            ),
            DType::Str => ColumnData::Str(
                values
                    .iter()
                    .map(|v| v.as_str().unwrap_or("").to_owned())
                    .collect(),
            ),
        };
        Column::with_validity(name, data, validity)
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the column in place.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The column's dtype.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Borrow the raw storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether row `i` holds a non-null value. Out-of-range rows are invalid.
    pub fn is_valid(&self, i: usize) -> bool {
        if i >= self.len() {
            return false;
        }
        self.validity.as_ref().is_none_or(|m| m[i])
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |m| m.iter().filter(|&&v| !v).count())
    }

    /// Fetch row `i` as a dynamic [`Value`] (nulls become [`Value::Null`]).
    ///
    /// # Errors
    /// Returns [`FrameError::RowOutOfBounds`] when `i >= len`.
    pub fn get(&self, i: usize) -> Result<Value> {
        if i >= self.len() {
            return Err(FrameError::RowOutOfBounds {
                row: i,
                n_rows: self.len(),
            });
        }
        if !self.is_valid(i) {
            return Ok(Value::Null);
        }
        Ok(match &self.data {
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        })
    }

    /// Borrow float storage, requiring dtype `Float` and no nulls.
    ///
    /// # Errors
    /// [`FrameError::TypeMismatch`] on wrong dtype or any null present.
    pub fn f64_values(&self) -> Result<&[f64]> {
        if self.null_count() > 0 {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "f64 without nulls",
                actual: "nullable",
            });
        }
        match &self.data {
            ColumnData::Float(v) => Ok(v),
            other => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "f64",
                actual: other.dtype().name(),
            }),
        }
    }

    /// Borrow integer storage (dtype `Int`, no nulls).
    ///
    /// # Errors
    /// [`FrameError::TypeMismatch`] on wrong dtype or any null present.
    pub fn i64_values(&self) -> Result<&[i64]> {
        if self.null_count() > 0 {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "i64 without nulls",
                actual: "nullable",
            });
        }
        match &self.data {
            ColumnData::Int(v) => Ok(v),
            other => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "i64",
                actual: other.dtype().name(),
            }),
        }
    }

    /// Borrow boolean storage (dtype `Bool`, no nulls).
    ///
    /// # Errors
    /// [`FrameError::TypeMismatch`] on wrong dtype or any null present.
    pub fn bool_values(&self) -> Result<&[bool]> {
        if self.null_count() > 0 {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "bool without nulls",
                actual: "nullable",
            });
        }
        match &self.data {
            ColumnData::Bool(v) => Ok(v),
            other => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "bool",
                actual: other.dtype().name(),
            }),
        }
    }

    /// Borrow string storage (dtype `Str`, no nulls).
    ///
    /// # Errors
    /// [`FrameError::TypeMismatch`] on wrong dtype or any null present.
    pub fn str_values(&self) -> Result<&[String]> {
        if self.null_count() > 0 {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "str without nulls",
                actual: "nullable",
            });
        }
        match &self.data {
            ColumnData::Str(v) => Ok(v),
            other => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "str",
                actual: other.dtype().name(),
            }),
        }
    }

    /// Materialize the column as `f64`s, coercing ints and bools.
    /// Nulls become `NaN`.
    ///
    /// # Errors
    /// [`FrameError::TypeMismatch`] for string columns.
    pub fn to_f64_lossy(&self) -> Result<Vec<f64>> {
        let out: Vec<f64> = match &self.data {
            ColumnData::Float(v) => v.clone(),
            ColumnData::Int(v) => v.iter().map(|&x| x as f64).collect(),
            ColumnData::Bool(v) => v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            ColumnData::Str(_) => {
                return Err(FrameError::TypeMismatch {
                    column: self.name.clone(),
                    expected: "numeric",
                    actual: "str",
                })
            }
        };
        Ok(match &self.validity {
            None => out,
            Some(mask) => out
                .into_iter()
                .zip(mask)
                .map(|(x, &ok)| if ok { x } else { f64::NAN })
                .collect(),
        })
    }

    /// Cast the column to `Float` dtype, coercing ints/bools and preserving
    /// the validity mask. Strings parse with `str::parse::<f64>`; failures
    /// become nulls.
    pub fn cast_float(&self) -> Column {
        match &self.data {
            ColumnData::Float(_) => self.clone(),
            ColumnData::Int(v) => Column {
                name: self.name.clone(),
                data: ColumnData::Float(v.iter().map(|&x| x as f64).collect()),
                validity: self.validity.clone(),
            },
            ColumnData::Bool(v) => Column {
                name: self.name.clone(),
                data: ColumnData::Float(v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()),
                validity: self.validity.clone(),
            },
            ColumnData::Str(v) => {
                let mut validity = vec![true; v.len()];
                let data: Vec<f64> = v
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        if !self.is_valid(i) {
                            validity[i] = false;
                            return 0.0;
                        }
                        match s.trim().parse::<f64>() {
                            Ok(x) => x,
                            Err(_) => {
                                validity[i] = false;
                                0.0
                            }
                        }
                    })
                    .collect();
                Column::with_validity(self.name.clone(), ColumnData::Float(data), validity)
                    .expect("lengths match by construction")
            }
        }
    }

    /// Select rows by index, in order (may repeat or reorder rows).
    ///
    /// # Errors
    /// [`FrameError::RowOutOfBounds`] if any index is out of range.
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        let n = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
            return Err(FrameError::RowOutOfBounds {
                row: bad,
                n_rows: n,
            });
        }
        let data = match &self.data {
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
        };
        let validity = self
            .validity
            .as_ref()
            .map(|m| indices.iter().map(|&i| m[i]).collect::<Vec<bool>>());
        Ok(Column {
            name: self.name.clone(),
            data,
            validity: validity.filter(|m| m.iter().any(|&v| !v)),
        })
    }

    /// Keep rows where `mask[i]` is true.
    ///
    /// # Errors
    /// [`FrameError::LengthMismatch`] if the mask length differs.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(FrameError::LengthMismatch {
                column: self.name.clone(),
                expected: self.len(),
                actual: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take(&indices)
    }

    /// Contiguous row slice `[start, end)`, clamped to the column length.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        let n = self.len();
        let start = start.min(n);
        let end = end.clamp(start, n);
        let indices: Vec<usize> = (start..end).collect();
        self.take(&indices).expect("slice indices are in range")
    }

    /// Iterate over values (nulls yield [`Value::Null`]).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }

    /// Replace the value at row `i`.
    ///
    /// # Errors
    /// [`FrameError::RowOutOfBounds`] / [`FrameError::TypeMismatch`] if the
    /// value's dtype is incompatible with the column's.
    pub fn set(&mut self, i: usize, value: Value) -> Result<()> {
        if i >= self.len() {
            return Err(FrameError::RowOutOfBounds {
                row: i,
                n_rows: self.len(),
            });
        }
        if value.is_null() {
            let n = self.len();
            self.validity.get_or_insert_with(|| vec![true; n])[i] = false;
            return Ok(());
        }
        let type_err = |col: &Column, actual: &'static str| FrameError::TypeMismatch {
            column: col.name.clone(),
            expected: col.dtype().name(),
            actual,
        };
        match (&mut self.data, &value) {
            (ColumnData::Float(v), _) => match value.as_f64() {
                Some(x) => v[i] = x,
                None => return Err(type_err(self, "str")),
            },
            (ColumnData::Int(v), Value::Int(x)) => v[i] = *x,
            (ColumnData::Bool(v), Value::Bool(b)) => v[i] = *b,
            (ColumnData::Str(v), Value::Str(s)) => v[i] = s.clone(),
            (_, other) => {
                let actual = other.dtype().map_or("null", DType::name);
                return Err(type_err(self, actual));
            }
        }
        if let Some(mask) = &mut self.validity {
            mask[i] = true;
            if mask.iter().all(|&v| v) {
                self.validity = None;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction_and_access() {
        let c = Column::from_f64("x", vec![1.0, 2.0, 3.0]);
        assert_eq!(c.name(), "x");
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.null_count(), 0);
        assert_eq!(c.get(1).unwrap(), Value::Float(2.0));
        assert!(c.get(3).is_err());
    }

    #[test]
    fn nullable_columns_track_validity() {
        let c = Column::from_f64_opt("x", vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.null_count(), 1);
        assert!(c.is_valid(0));
        assert!(!c.is_valid(1));
        assert_eq!(c.get(1).unwrap(), Value::Null);
        assert!(c.f64_values().is_err(), "nullable columns refuse raw view");
        let lossy = c.to_f64_lossy().unwrap();
        assert!(lossy[1].is_nan());
        assert_eq!(lossy[0], 1.0);
    }

    #[test]
    fn all_valid_mask_is_dropped() {
        let c = Column::with_validity("x", ColumnData::Int(vec![1, 2]), vec![true, true]).unwrap();
        assert_eq!(c.null_count(), 0);
        assert!(c.i64_values().is_ok());
    }

    #[test]
    fn with_validity_rejects_bad_length() {
        let err = Column::with_validity("x", ColumnData::Int(vec![1, 2]), vec![true]);
        assert!(matches!(err, Err(FrameError::LengthMismatch { .. })));
    }

    #[test]
    fn from_values_unifies_int_and_float() {
        let c = Column::from_values("x", &[Value::Int(1), Value::Float(2.5), Value::Null]).unwrap();
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0).unwrap(), Value::Float(1.0));
    }

    #[test]
    fn from_values_rejects_mixed_str_numeric() {
        let err = Column::from_values("x", &[Value::Int(1), Value::Str("a".into())]);
        assert!(matches!(err, Err(FrameError::TypeMismatch { .. })));
    }

    #[test]
    fn from_values_all_null_defaults_to_float() {
        let c = Column::from_values("x", &[Value::Null, Value::Null]).unwrap();
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_i64("x", vec![10, 20, 30]);
        let t = c.take(&[2, 0, 0]).unwrap();
        assert_eq!(t.i64_values().unwrap(), &[30, 10, 10]);
        assert!(c.take(&[5]).is_err());
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_i64_opt("x", vec![Some(1), None, Some(3)]);
        let t = c.take(&[1, 2]).unwrap();
        assert_eq!(t.null_count(), 1);
        assert!(!t.is_valid(0));
        // Taking only valid rows drops the mask entirely.
        let t2 = c.take(&[0, 2]).unwrap();
        assert_eq!(t2.null_count(), 0);
    }

    #[test]
    fn filter_with_mask() {
        let c = Column::from_f64("x", vec![1.0, 2.0, 3.0, 4.0]);
        let f = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.f64_values().unwrap(), &[1.0, 3.0]);
        assert!(c.filter(&[true]).is_err());
    }

    #[test]
    fn slice_clamps_bounds() {
        let c = Column::from_f64("x", vec![1.0, 2.0, 3.0]);
        assert_eq!(c.slice(1, 3).f64_values().unwrap(), &[2.0, 3.0]);
        assert_eq!(c.slice(0, 99).len(), 3);
        assert_eq!(c.slice(5, 9).len(), 0);
        assert_eq!(c.slice(2, 1).len(), 0);
    }

    #[test]
    fn cast_float_from_each_dtype() {
        assert_eq!(
            Column::from_i64("x", vec![1, 2])
                .cast_float()
                .f64_values()
                .unwrap(),
            &[1.0, 2.0]
        );
        assert_eq!(
            Column::from_bool("x", vec![true, false])
                .cast_float()
                .f64_values()
                .unwrap(),
            &[1.0, 0.0]
        );
        let s = Column::from_str_values("x", vec!["1.5", "oops", " 2 "]);
        let c = s.cast_float();
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0).unwrap(), Value::Float(1.5));
        assert_eq!(c.get(2).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn set_updates_values_and_validity() {
        let mut c = Column::from_f64("x", vec![1.0, 2.0]);
        c.set(0, Value::Float(9.0)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Float(9.0));
        c.set(1, Value::Null).unwrap();
        assert_eq!(c.null_count(), 1);
        c.set(1, Value::Int(5)).unwrap();
        assert_eq!(c.null_count(), 0, "mask dropped once fully valid");
        assert_eq!(c.get(1).unwrap(), Value::Float(5.0));
        assert!(c.set(9, Value::Float(0.0)).is_err());
        assert!(c.set(0, Value::Str("no".into())).is_err());
    }

    #[test]
    fn set_type_errors_for_non_float_columns() {
        let mut c = Column::from_i64("x", vec![1]);
        assert!(c.set(0, Value::Float(1.5)).is_err());
        let mut c = Column::from_str_values("s", vec!["a"]);
        assert!(c.set(0, Value::Int(1)).is_err());
        c.set(0, Value::Str("b".into())).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Str("b".into()));
    }

    #[test]
    fn iter_yields_all_values() {
        let c = Column::from_i64_opt("x", vec![Some(1), None]);
        let vals: Vec<Value> = c.iter().collect();
        assert_eq!(vals, vec![Value::Int(1), Value::Null]);
    }

    #[test]
    fn typed_view_errors_name_the_column() {
        let c = Column::from_str_values("label", vec!["a"]);
        match c.f64_values() {
            Err(FrameError::TypeMismatch { column, .. }) => assert_eq!(column, "label"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
