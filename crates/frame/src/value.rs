//! Scalar values and data types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The data type of a [`crate::Column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 64-bit IEEE-754 float.
    Float,
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
}

impl DType {
    /// Short lowercase name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DType::Float => "f64",
            DType::Int => "i64",
            DType::Bool => "bool",
            DType::Str => "str",
        }
    }

    /// Whether the type is numeric (float or int).
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Float | DType::Int)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single dynamically-typed cell value.
///
/// `Value` is the lingua franca between rows, expressions, and the JSON
/// protocol layer. Columns store values natively (structure-of-arrays);
/// `Value` only materializes at API boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    /// Missing value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// The dtype this value would naturally live in, or `None` for null.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DType::Bool),
            Value::Int(_) => Some(DType::Int),
            Value::Float(_) => Some(DType::Float),
            Value::Str(_) => Some(DType::Str),
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and bools coerce to `f64`; strings and nulls do not.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (no float truncation — floats return `None`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names() {
        assert_eq!(DType::Float.name(), "f64");
        assert_eq!(DType::Int.name(), "i64");
        assert_eq!(DType::Bool.name(), "bool");
        assert_eq!(DType::Str.name(), "str");
        assert!(DType::Float.is_numeric());
        assert!(DType::Int.is_numeric());
        assert!(!DType::Bool.is_numeric());
        assert!(!DType::Str.is_numeric());
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);

        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None, "no silent truncation");
        assert_eq!(Value::Bool(true).as_i64(), Some(1));

        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(1).as_bool(), None);

        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn value_dtype_and_null() {
        assert_eq!(Value::Null.dtype(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Float(0.0).dtype(), Some(DType::Float));
        assert_eq!(Value::Str("a".into()).dtype(), Some(DType::Str));
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Str("s".into()).to_string(), "s");
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(1.0), Value::Float(1.0));
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
        assert_eq!(Value::from(String::from("b")), Value::Str("b".into()));
    }
}
