//! # whatif-frame
//!
//! A from-scratch, in-memory **columnar dataframe** substrate for the
//! SystemD what-if analysis reproduction (CIDR 2022).
//!
//! The paper's backend slices, dices, perturbs, and re-evaluates business
//! datasets interactively. This crate provides the tabular layer those
//! operations run on:
//!
//! * [`Frame`] — a named collection of equal-length [`Column`]s.
//! * [`Column`] — typed storage (`f64`, `i64`, `bool`, `String`) with an
//!   optional validity mask for nulls.
//! * [`expr::Expr`] — a small expression AST for derived columns and filter
//!   predicates (the "hypothesis formulas" of the paper's retention use
//!   case, e.g. *"used 3+ formulas in two weeks"*).
//! * [`csv`] — RFC-4180-ish CSV reader/writer with type inference.
//! * [`groupby`] / [`join`] — the slicing/dicing operations the paper's
//!   intro motivates.
//!
//! ## Quick example
//!
//! ```
//! use whatif_frame::{Frame, Column};
//! use whatif_frame::expr::Expr;
//!
//! let mut f = Frame::new();
//! f.push_column(Column::from_f64("spend", vec![10.0, 20.0, 30.0])).unwrap();
//! f.push_column(Column::from_f64("sales", vec![100.0, 180.0, 260.0])).unwrap();
//!
//! // Derived column: ROI = sales / spend
//! let roi = Expr::col("sales").div(Expr::col("spend"));
//! f.derive("roi", &roi).unwrap();
//! assert_eq!(f.column("roi").unwrap().f64_values().unwrap(), &[10.0, 9.0, 26.0 / 3.0]);
//!
//! // Filter: spend > 15
//! let big = f.filter_expr(&Expr::col("spend").gt(Expr::lit_f64(15.0))).unwrap();
//! assert_eq!(big.n_rows(), 2);
//! ```

pub mod column;
pub mod csv;
pub mod error;
pub mod expr;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod sort;
pub mod summary;
pub mod value;

pub use column::{Column, ColumnData};
pub use error::{FrameError, Result};
pub use frame::Frame;
pub use groupby::{AggSpec, Aggregation};
pub use join::JoinKind;
pub use sort::SortOrder;
pub use summary::ColumnSummary;
pub use value::{DType, Value};
