//! Error types for frame operations.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FrameError>;

/// Errors produced by frame construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// A column with this name already exists in the frame.
    DuplicateColumn(String),
    /// No column with this name exists in the frame.
    UnknownColumn(String),
    /// A column's length disagrees with the frame's row count.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Length the frame expected.
        expected: usize,
        /// Length the column actually has.
        actual: usize,
    },
    /// An operation required a different column type.
    TypeMismatch {
        /// Name of the offending column.
        column: String,
        /// Human-readable expectation, e.g. `"f64"`.
        expected: &'static str,
        /// The column's actual dtype.
        actual: &'static str,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The requested row.
        row: usize,
        /// The number of rows available.
        n_rows: usize,
    },
    /// Expression evaluation failed (type error, unknown column, ...).
    Expr(String),
    /// CSV parsing failed.
    Csv {
        /// 1-based line number of the failure, when known.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Join or group-by failed, e.g. keys of unhashable type.
    InvalidOperation(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::DuplicateColumn(name) => {
                write!(f, "duplicate column name: {name:?}")
            }
            FrameError::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            FrameError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column {column:?} has length {actual} but the frame has {expected} rows"
            ),
            FrameError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column {column:?} has dtype {actual} but {expected} was required"
            ),
            FrameError::RowOutOfBounds { row, n_rows } => {
                write!(
                    f,
                    "row index {row} out of bounds for frame with {n_rows} rows"
                )
            }
            FrameError::Expr(msg) => write!(f, "expression error: {msg}"),
            FrameError::Csv { line, message } => {
                write!(f, "csv error at line {line}: {message}")
            }
            FrameError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = FrameError::DuplicateColumn("x".into());
        assert_eq!(e.to_string(), "duplicate column name: \"x\"");
        let e = FrameError::UnknownColumn("y".into());
        assert_eq!(e.to_string(), "unknown column: \"y\"");
        let e = FrameError::LengthMismatch {
            column: "z".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("length 2"));
        assert!(e.to_string().contains("3 rows"));
        let e = FrameError::TypeMismatch {
            column: "w".into(),
            expected: "f64",
            actual: "str",
        };
        assert!(e.to_string().contains("f64"));
        let e = FrameError::RowOutOfBounds { row: 9, n_rows: 3 };
        assert!(e.to_string().contains('9'));
        let e = FrameError::Csv {
            line: 4,
            message: "bad quote".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&FrameError::Expr("boom".into()));
    }
}
