//! Per-column descriptive summaries (the backing data of the paper's
//! Table View, Figure 2 B).

use crate::column::Column;
use crate::error::Result;
use crate::frame::Frame;
use crate::value::DType;
use std::collections::HashSet;

/// Descriptive statistics for a single column.
///
/// Numeric fields are `None` for non-numeric columns or all-null columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Column dtype.
    pub dtype: DType,
    /// Total rows.
    pub len: usize,
    /// Number of nulls.
    pub null_count: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Mean of non-null values.
    pub mean: Option<f64>,
    /// Sample standard deviation (n−1) of non-null values.
    pub std: Option<f64>,
    /// Minimum non-null value.
    pub min: Option<f64>,
    /// Maximum non-null value.
    pub max: Option<f64>,
    /// Median (linear interpolation) of non-null values.
    pub median: Option<f64>,
}

/// Summarize one column.
pub fn summarize_column(col: &Column) -> ColumnSummary {
    let len = col.len();
    let null_count = col.null_count();
    let distinct = count_distinct(col);

    let numeric: Option<Vec<f64>> = match col.dtype() {
        DType::Float | DType::Int | DType::Bool => col.to_f64_lossy().ok().map(|vals| {
            vals.into_iter()
                .enumerate()
                .filter(|&(i, _)| col.is_valid(i))
                .map(|(_, v)| v)
                .collect()
        }),
        DType::Str => None,
    };

    let (mean, std, min, max, median) = match numeric.as_deref() {
        Some(xs) if !xs.is_empty() => {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let std = if xs.len() < 2 {
                0.0
            } else {
                let ss: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
                (ss / (n - 1.0)).sqrt()
            };
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sorted = xs.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in valid data"));
            let median = if sorted.len() % 2 == 1 {
                sorted[sorted.len() / 2]
            } else {
                let hi = sorted.len() / 2;
                (sorted[hi - 1] + sorted[hi]) / 2.0
            };
            (Some(mean), Some(std), Some(min), Some(max), Some(median))
        }
        _ => (None, None, None, None, None),
    };

    ColumnSummary {
        name: col.name().to_owned(),
        dtype: col.dtype(),
        len,
        null_count,
        distinct,
        mean,
        std,
        min,
        max,
        median,
    }
}

fn count_distinct(col: &Column) -> usize {
    let mut seen: HashSet<String> = HashSet::new();
    for i in 0..col.len() {
        if !col.is_valid(i) {
            continue;
        }
        // Canonical text form is a sufficient distinctness key per dtype.
        let v = col.get(i).expect("row in range");
        seen.insert(v.to_string());
    }
    seen.len()
}

impl Frame {
    /// Summaries for all columns, in declaration order.
    ///
    /// # Errors
    /// Currently infallible; `Result` reserved for future schema checks.
    pub fn describe(&self) -> Result<Vec<ColumnSummary>> {
        Ok(self.columns().iter().map(summarize_column).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn numeric_summary() {
        let c = Column::from_f64("x", vec![1.0, 2.0, 3.0, 4.0]);
        let s = summarize_column(&c);
        assert_eq!(s.len, 4);
        assert_eq!(s.null_count, 0);
        assert_eq!(s.distinct, 4);
        assert_eq!(s.mean, Some(2.5));
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(4.0));
        assert_eq!(s.median, Some(2.5));
        let std = s.std.unwrap();
        assert!((std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_length_median() {
        let c = Column::from_i64("x", vec![5, 1, 3]);
        let s = summarize_column(&c);
        assert_eq!(s.median, Some(3.0));
    }

    #[test]
    fn nulls_are_excluded() {
        let c = Column::from_f64_opt("x", vec![Some(1.0), None, Some(3.0)]);
        let s = summarize_column(&c);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.mean, Some(2.0));
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn string_column_has_distinct_but_no_numeric() {
        let c = Column::from_str_values("s", vec!["a", "b", "a"]);
        let s = summarize_column(&c);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.mean, None);
        assert_eq!(s.median, None);
    }

    #[test]
    fn bool_column_is_numeric() {
        let c = Column::from_bool("b", vec![true, false, true, true]);
        let s = summarize_column(&c);
        assert_eq!(s.mean, Some(0.75));
        assert_eq!(s.min, Some(0.0));
        assert_eq!(s.max, Some(1.0));
    }

    #[test]
    fn all_null_column() {
        let c = Column::from_f64_opt("x", vec![None, None]);
        let s = summarize_column(&c);
        assert_eq!(s.null_count, 2);
        assert_eq!(s.mean, None);
        assert_eq!(s.distinct, 0);
    }

    #[test]
    fn single_value_std_is_zero() {
        let c = Column::from_f64("x", vec![7.0]);
        let s = summarize_column(&c);
        assert_eq!(s.std, Some(0.0));
    }

    #[test]
    fn describe_covers_all_columns() {
        let f = Frame::from_columns(vec![
            Column::from_f64("x", vec![1.0]),
            Column::from_str_values("s", vec!["a"]),
        ])
        .unwrap();
        let d = f.describe().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name, "x");
        assert_eq!(d[1].name, "s");
    }
}
